"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.can.overlay import CanOverlay
from repro.can.space import ResourceSpace
from repro.model.ce import CESpec, CPU_SLOT, gpu_slot
from repro.model.job import CERequirement, Job
from repro.model.node import GridNode, NodeSpec
from repro.sim.core import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)


def make_cpu(clock=1.0, memory=8.0, disk=100.0, cores=4) -> CESpec:
    return CESpec(
        slot=CPU_SLOT, clock=clock, memory=memory, disk=disk, cores=cores
    )


def make_gpu(slot_index=0, clock=1.0, memory=2.0, cores=128) -> CESpec:
    return CESpec(
        slot=gpu_slot(slot_index),
        clock=clock,
        memory=memory,
        cores=cores,
        dedicated=True,
    )


def make_node_spec(node_id=0, cpu=None, gpus=()) -> NodeSpec:
    ces = [cpu or make_cpu()]
    ces.extend(gpus)
    return NodeSpec(node_id=node_id, ces=tuple(ces))


def make_grid_node(env, node_id=0, cpu=None, gpus=(), **kwargs) -> GridNode:
    return GridNode(make_node_spec(node_id, cpu, gpus), env, **kwargs)


def cpu_job(cores=1, clock=0.0, memory=0.0, disk=0.0, duration=100.0, **kw) -> Job:
    return Job(
        requirements={
            CPU_SLOT: CERequirement(
                cores=cores, clock=clock, memory=memory, disk=disk
            )
        },
        base_duration=duration,
        **kw,
    )


def gpu_job(
    slot_index=0,
    gpu_cores=64,
    gpu_clock=0.0,
    gpu_memory=0.0,
    duration=100.0,
    **kw,
) -> Job:
    return Job(
        requirements={
            gpu_slot(slot_index): CERequirement(
                cores=gpu_cores, clock=gpu_clock, memory=gpu_memory
            ),
            CPU_SLOT: CERequirement(cores=1),
        },
        base_duration=duration,
        **kw,
    )


def build_overlay(coords, gpu_slots=0) -> CanOverlay:
    """Overlay from explicit coordinates (dims must match the space)."""
    space = ResourceSpace(gpu_slots=gpu_slots)
    overlay = CanOverlay(space)
    for i, coord in enumerate(coords):
        overlay.add_node(i, coord)
    return overlay


@pytest.fixture
def space5() -> ResourceSpace:
    return ResourceSpace(gpu_slots=0)  # 5 dims


@pytest.fixture
def space11() -> ResourceSpace:
    return ResourceSpace(gpu_slots=2)  # 11 dims
