"""Unit tests for the event bus, tracer, and event records."""

import pytest

from repro.obs import EV, EventBus, TraceEvent, Tracer


class TestTraceEvent:
    def test_as_dict_merges_fields_after_header(self):
        ev = TraceEvent(12.5, "msg.sent", {"mtype": "heartbeat", "bytes": 40})
        assert ev.as_dict() == {
            "t": 12.5,
            "type": "msg.sent",
            "mtype": "heartbeat",
            "bytes": 40,
        }

    def test_slots_prevent_ad_hoc_attributes(self):
        ev = TraceEvent(0.0, "run.start", {})
        with pytest.raises(AttributeError):
            ev.extra = 1


class TestEventBus:
    def test_publish_fans_out_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e.etype)))
        bus.subscribe(lambda e: seen.append(("b", e.etype)))
        bus.publish(TraceEvent(1.0, "can.join", {"node": 3}))
        assert seen == [("a", "can.join"), ("b", "can.join")]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        fn = bus.subscribe(seen.append)
        bus.unsubscribe(fn)
        bus.publish(TraceEvent(0.0, "can.join", {}))
        assert seen == []
        assert len(bus) == 0


class TestTracer:
    def test_emit_counts_by_type_and_publishes(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(1.0, EV.CAN_JOIN, node=1)
        tracer.emit(2.0, EV.CAN_JOIN, node=2)
        tracer.emit(3.0, EV.CAN_FAIL, node=1)
        assert tracer.counts == {"can.join": 2, "can.fail": 1}
        assert tracer.total_events() == 3
        assert [e.t for e in seen] == [1.0, 2.0, 3.0]
        assert seen[0].fields == {"node": 1}

    def test_default_bus_is_private(self):
        a, b = Tracer(), Tracer()
        assert a.bus is not b.bus

    def test_taxonomy_names_are_dotted_and_unique(self):
        names = [
            v
            for k, v in vars(EV).items()
            if not k.startswith("_") and isinstance(v, str)
        ]
        assert len(names) == len(set(names))
        assert all("." in n for n in names)
