"""JSONL -> summarize round-trips and consistency with MessageStats."""

import numpy as np
import pytest

from repro.can.heartbeat import (
    HeartbeatProtocol,
    HeartbeatScheme,
    ProtocolConfig,
)
from repro.can.messages import MessageType
from repro.can.overlay import CanOverlay
from repro.can.space import ResourceSpace
from repro.obs import (
    JsonlTraceWriter,
    Tracer,
    read_trace,
    render_summary,
    summarize_events,
    summarize_file,
)
from repro.obs.__main__ import main as obs_main


def traced_protocol(n=12, scheme=HeartbeatScheme.VANILLA, seed=0, sink=None):
    space = ResourceSpace(gpu_slots=0)
    overlay = CanOverlay(space)
    config = ProtocolConfig(scheme=scheme, period=60.0)
    tracer = Tracer()
    if sink is not None:
        tracer.subscribe(sink)
    proto = HeartbeatProtocol(
        overlay, config, rng=np.random.default_rng(seed), tracer=tracer
    )
    rng = np.random.default_rng(seed)
    coords = [tuple(rng.random(space.dims) * 0.998 + 0.001) for _ in range(n)]
    proto.bootstrap(0, coords[0])
    for i in range(1, n):
        proto.join(i, coords[i], now=0.0)
    return proto, tracer


class TestConsistencyWithMessageStats:
    @pytest.mark.parametrize("scheme", list(HeartbeatScheme))
    def test_trace_totals_match_stats(self, scheme):
        """msg.sent events aggregate to exactly the MessageStats ledger."""
        events = [
            {"t": 0.0, "type": "run.start", "label": "t", "scheme": scheme.value}
        ]
        proto, tracer = traced_protocol(
            scheme=scheme, sink=lambda e: events.append(e.as_dict())
        )
        t = 60.0
        for _ in range(4):
            proto.run_round(t)
            t += 60.0
        proto.fail(3, now=t)
        for _ in range(5):
            proto.run_round(t)
            t += 60.0

        summary = summarize_events(events)
        (info,) = summary.runs.values()
        for mtype in MessageType:
            assert info["messages"].get(mtype.value, 0) == proto.stats.count[mtype]
            assert info["bytes"].get(mtype.value, 0) == proto.stats.bytes[mtype]
        total_msgs, total_bytes = proto.stats.totals()
        assert sum(info["messages"].values()) == total_msgs
        assert sum(info["bytes"].values()) == total_bytes
        assert total_msgs > 0


class TestRoundTrip:
    def _write_two_runs(self, path):
        with JsonlTraceWriter(path) as writer:
            tracer = Tracer()
            tracer.subscribe(writer)
            tracer.emit(0.0, "run.start", label="x:vanilla", scheme="vanilla")
            tracer.emit(60.0, "msg.sent", mtype="heartbeat_full", bytes=100, copies=3)
            tracer.emit(60.0, "mm.placed", job=1, node=2, hops=4)
            tracer.emit(0.0, "run.start", label="x:compact", scheme="compact")
            tracer.emit(60.0, "msg.sent", mtype="heartbeat", bytes=40, copies=5)
            tracer.emit(61.0, "msg.sent", mtype="join_reply", bytes=80, copies=1)
            tracer.emit(70.0, "mm.placed", job=2, node=3, hops=4)

    def test_file_round_trip_groups_runs_and_schemes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._write_two_runs(path)
        summary = summarize_file(path)
        assert summary.total_events == 7
        assert summary.event_counts["msg.sent"] == 3
        assert summary.runs["x:vanilla"]["messages"] == {"heartbeat_full": 3}
        assert summary.runs["x:vanilla"]["bytes"] == {"heartbeat_full": 300}
        assert summary.runs["x:compact"]["messages"] == {
            "heartbeat": 5,
            "join_reply": 1,
        }
        assert summary.hop_histogram == {4: 2}
        by_scheme = summary.heartbeat_volume_by_scheme()
        assert by_scheme == {"vanilla": 300, "compact": 200}

    def test_summarize_matches_read_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._write_two_runs(path)
        assert (
            summarize_file(path).event_counts
            == summarize_events(read_trace(path)).event_counts
        )

    def test_unlabelled_messages_get_a_bucket(self):
        summary = summarize_events(
            [{"t": 0.0, "type": "msg.sent", "mtype": "heartbeat", "bytes": 40}]
        )
        assert summary.runs["(unlabelled)"]["messages"] == {"heartbeat": 1}

    def test_render_summary_mentions_schemes_and_hops(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._write_two_runs(path)
        text = render_summary(summarize_file(path), path)
        assert "Events by type" in text
        assert "Heartbeat volume by scheme" in text
        assert "vanilla" in text and "compact" in text
        assert "Push-hop histogram" in text


class TestCli:
    def test_summarize_command(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        TestRoundTrip()._write_two_runs(path)
        assert obs_main(["summarize", path]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "msg.sent" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert obs_main(["summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_corrupt_trace_is_an_error_not_a_traceback(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        assert obs_main(["summarize", str(path)]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_no_command_prints_help(self, capsys):
        assert obs_main([]) == 2
        assert "summarize" in capsys.readouterr().out
