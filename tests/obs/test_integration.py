"""End-to-end: experiments -> trace + manifest -> summarize."""

import json
import os

from repro.experiments import fig5
from repro.obs import RunRecorder, read_trace, summarize_file
from repro.workload import TINY_LOAD


class TestFig5WithRecorder:
    def test_run_writes_consistent_trace_and_manifest(self, tmp_path):
        out = str(tmp_path)
        with RunRecorder(out, "fig5", seed=5) as rec:
            fig5.run(
                preset=TINY_LOAD,
                interarrivals=(75.0,),
                schemes=("can-het",),
                recorder=rec,
            )
            rec.close(
                config={"fast": True}, artifacts=["fig5_wait_time_cdf.csv"]
            )

        trace_path = os.path.join(out, "fig5_trace.jsonl")
        manifest_path = os.path.join(out, "fig5_run.manifest.json")
        assert os.path.exists(trace_path)
        assert os.path.exists(manifest_path)

        manifest = json.load(open(manifest_path))
        assert manifest["name"] == "fig5"
        assert manifest["seed"] == 5
        assert "fig5_trace.jsonl" in manifest["artifacts"]
        assert manifest["event_counts"]["run.start"] == 1
        assert manifest["event_counts"]["run.end"] == 1
        assert manifest["event_counts"].get("mm.placed", 0) > 0
        # the per-sub-run metrics snapshot landed in the manifest
        label = "fig5 arrival=75s can-het"
        assert label in manifest["metrics"]
        assert "grid.jobs" in manifest["metrics"][label]
        assert "can-het" in manifest["config"]

        # the trace round-trips and agrees with the manifest's counts
        summary = summarize_file(trace_path)
        assert summary.event_counts == manifest["event_counts"]
        assert summary.total_events == manifest["total_events"]
        assert summary.runs[label]["scheme"] == "can-het"
        assert sum(summary.hop_histogram.values()) == summary.event_counts[
            "mm.placed"
        ]

    def test_no_trace_mode_writes_nothing(self, tmp_path):
        out = str(tmp_path)
        with RunRecorder(out, "fig5", enabled=False) as rec:
            fig5.run(
                preset=TINY_LOAD,
                interarrivals=(75.0,),
                schemes=("can-het",),
                recorder=rec,
            )
            rec.close()
        assert not os.path.exists(os.path.join(out, "fig5_trace.jsonl"))
        assert not os.path.exists(os.path.join(out, "fig5_run.manifest.json"))

    def test_trace_times_are_simulated(self, tmp_path):
        """Trace events carry simulated clocks only (determinism guard)."""
        out = str(tmp_path)
        with RunRecorder(out, "fig5") as rec:
            fig5.run(
                preset=TINY_LOAD,
                interarrivals=(75.0,),
                schemes=("can-het",),
                recorder=rec,
            )
            rec.close()
        for ev in read_trace(os.path.join(out, "fig5_trace.jsonl")):
            assert ev["t"] < 1e9  # no wall-clock epochs snuck in
