"""Causal span reconstruction: hand-built streams, live sims, CLI."""

import os

import pytest

from repro.gridsim import (
    FaultyGridConfig,
    FaultyGridSimulation,
    MatchmakingConfig,
)
from repro.obs import EventBus, Tracer
from repro.obs.__main__ import main as obs_main
from repro.obs.spans import (
    SpanBuilder,
    build_spans,
    build_spans_from_file,
    critical_path_summary,
    render_critical_path,
    render_spans,
)
from repro.obs.trace import JsonlTraceWriter
from repro.workload import TINY_LOAD

HAPPY_PATH = [
    {"t": 0.0, "type": "grid.job_submit", "job": 1},
    {"t": 0.0, "type": "mm.push", "job": 1, "frm": 0, "to": 2, "dim": 3, "hop": 0},
    {"t": 0.0, "type": "mm.push", "job": 1, "frm": 2, "to": 5, "dim": 1, "hop": 1},
    {"t": 0.0, "type": "mm.placed", "job": 1, "node": 5, "hops": 2},
    {"t": 8.0, "type": "grid.job_start", "job": 1, "node": 5},
    {"t": 30.0, "type": "grid.job_finish", "job": 1, "node": 5},
]

RECOVERY_PATH = [
    {"t": 0.0, "type": "grid.job_submit", "job": 7},
    {"t": 0.0, "type": "mm.placed", "job": 7, "node": 2, "hops": 0},
    {"t": 5.0, "type": "grid.job_start", "job": 7, "node": 2},
    {"t": 40.0, "type": "grid.job_lost", "job": 7, "node": 2},
    {"t": 160.0, "type": "recovery.detected", "node": 2, "latency": 120.0, "jobs": 1},
    {"t": 160.0, "type": "mm.push", "job": 7, "frm": 1, "to": 3, "dim": 0},
    {"t": 160.0, "type": "mm.unplaced", "job": 7, "hops": 1},
    {"t": 161.0, "type": "recovery.fallback", "job": 7, "node": 9, "candidates": 2},
    # real emission order: place() succeeds (mm.placed) before the
    # grid.job_resubmit bookkeeping event fires
    {"t": 161.0, "type": "mm.placed", "job": 7, "node": 9, "hops": 0},
    {"t": 161.0, "type": "grid.job_resubmit", "job": 7, "attempt": 1},
    {"t": 170.0, "type": "grid.job_start", "job": 7, "node": 9},
    {"t": 200.0, "type": "grid.job_finish", "job": 7, "node": 9},
]


class TestHandBuiltStreams:
    def test_happy_path_tree(self):
        b = build_spans(HAPPY_PATH)
        assert b.validate() == []
        root = b.root(1)
        assert root.status == "completed"
        assert root.start == 0.0 and root.end == 30.0
        kinds = [s.kind for s in b.critical_path(1)]
        assert kinds == ["matchmake", "queue", "run"]
        mm = b.critical_path(1)[0]
        pushes = b.children(mm)
        assert [p.kind for p in pushes] == ["push", "push"]
        assert pushes[0].attrs["hop"] == 0 and pushes[1].attrs["hop"] == 1
        assert mm.attrs["node"] == 5 and mm.status == "placed"

    def test_recovery_branch_tree(self):
        b = build_spans(RECOVERY_PATH)
        assert b.validate() == []
        kinds = [s.kind for s in b.critical_path(7)]
        assert kinds == [
            "matchmake", "queue", "run", "crash", "detect", "retry",
            "queue", "run",
        ]
        detect = next(s for s in b.spans if s.kind == "detect")
        assert detect.duration == pytest.approx(120.0)
        assert detect.attrs["latency"] == 120.0
        # both matchmake attempts after detection hang off the retry span
        # (failed then successful), as does the expanding-ring probe
        retry = next(s for s in b.spans if s.kind == "retry")
        child_kinds = sorted(s.kind for s in b.children(retry))
        assert child_kinds == ["matchmake", "matchmake", "ring"]
        run_spans = [s for s in b.spans if s.kind == "run"]
        assert [s.status for s in run_spans] == ["lost", "ok"]

    def test_deterministic_span_ids(self):
        a = build_spans(RECOVERY_PATH)
        b = build_spans(RECOVERY_PATH)
        assert [s.span_id for s in a.spans] == [s.span_id for s in b.spans]
        assert [s.as_dict() for s in a.spans] == [s.as_dict() for s in b.spans]

    def test_unplaced_terminal(self):
        b = build_spans([
            {"t": 0.0, "type": "grid.job_submit", "job": 3},
            {"t": 0.0, "type": "mm.push", "job": 3, "frm": 0, "to": 1, "dim": 0},
            {"t": 0.0, "type": "mm.unplaced", "job": 3, "hops": 1},
            {"t": 0.0, "type": "grid.job_unplaced", "job": 3},
        ])
        assert b.validate() == []
        assert b.root(3).status == "unplaced"

    def test_abandoned_terminal_closes_open_spans(self):
        b = build_spans([
            {"t": 0.0, "type": "grid.job_submit", "job": 4},
            {"t": 0.0, "type": "mm.placed", "job": 4, "node": 1, "hops": 0},
            {"t": 2.0, "type": "grid.job_lost", "job": 4, "node": 1},
            {"t": 50.0, "type": "recovery.detected", "node": 1, "latency": 48.0, "jobs": 1},
            {"t": 50.0, "type": "grid.job_abandoned", "job": 4, "attempts": 3},
        ])
        assert b.validate() == []
        assert b.root(4).status == "abandoned"

    def test_incomplete_trace_reports_problems(self):
        b = build_spans(HAPPY_PATH[:-1])  # no finish
        problems = b.validate()
        assert any("no terminal status" in p for p in problems)

    def test_implicit_root_for_unknown_job(self):
        b = build_spans([
            {"t": 5.0, "type": "mm.placed", "job": 9, "node": 1, "hops": 0},
            {"t": 9.0, "type": "grid.job_start", "job": 9, "node": 1},
            {"t": 12.0, "type": "grid.job_finish", "job": 9, "node": 1},
        ])
        assert b.validate() == []
        assert b.root(9).attrs.get("implicit_root") is True


def _recovery_sim(tracer=None):
    return FaultyGridSimulation(
        FaultyGridConfig(
            MatchmakingConfig(TINY_LOAD),
            mean_time_between_failures=400.0,
            mean_time_between_joins=600.0,
        ),
        tracer=tracer,
    )


class TestSeededRecoveryRun:
    @pytest.fixture(scope="class")
    def recovery(self, tmp_path_factory):
        """One seeded churny run: a live SpanBuilder + the written trace."""
        path = str(tmp_path_factory.mktemp("spans") / "recovery_trace.jsonl")
        tracer = Tracer(EventBus())
        online = SpanBuilder()
        tracer.subscribe(online)
        writer = JsonlTraceWriter(path)
        tracer.subscribe(writer)
        sim = _recovery_sim(tracer)
        res = sim.run()
        online.finish(sim.env.now)
        writer.close()
        return sim, res, online, path

    def test_every_job_has_a_complete_tree(self, recovery):
        sim, res, online, path = recovery
        assert res.jobs_lost > 0  # the scenario actually exercised recovery
        assert online.validate() == []
        assert len(online.jobs()) == res.base.jobs_submitted
        statuses = {online.root(j).status for j in online.jobs()}
        assert statuses <= {"completed", "unplaced", "abandoned"}

    def test_critical_path_reports_detection_segment(self, recovery):
        sim, res, online, path = recovery
        rows = {kind: (n, total) for kind, n, total, _, _ in (
            (r[0], r[1], r[2], r[3], r[4]) for r in critical_path_summary(online)
        )}
        assert "detect" in rows
        detections, total_latency = rows["detect"]
        assert detections > 0
        # span-derived detection time agrees with the tracker's ledger
        ledger_total = float(res.detection_latencies.sum()) if (
            res.detection_latencies.size
        ) else 0.0
        # spans count per *job*, the ledger per *node* — totals differ, but
        # both must be positive and the mean per-detection latency sane
        assert total_latency > 0 and ledger_total > 0

    def test_online_equals_offline(self, recovery):
        sim, res, online, path = recovery
        offline = build_spans_from_file(path)
        assert [s.as_dict() for s in online.spans] == [
            s.as_dict() for s in offline.spans
        ]

    def test_renderers_cover_run(self, recovery):
        sim, res, online, path = recovery
        summary = render_spans(online)
        assert "jobs" in summary and "detect" in summary
        job = online.jobs()[0]
        tree = render_spans(online, job=job)
        assert "job" in tree
        agg = render_critical_path(online)
        assert "segment" in agg and "run" in agg
        one = render_critical_path(online, job=job)
        assert f"job {job}" in one


class TestCli:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli") / "t_trace.jsonl")
        tracer = Tracer(EventBus())
        writer = JsonlTraceWriter(path)
        tracer.subscribe(writer)
        sim = _recovery_sim(tracer)
        sim.run()
        writer.close()
        return path

    def test_spans_subcommand(self, trace_path, capsys):
        assert obs_main(["spans", trace_path]) == 0
        out = capsys.readouterr().out
        assert "jobs" in out

    def test_spans_validate(self, trace_path, capsys):
        assert obs_main(["spans", trace_path, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out

    def test_spans_single_job(self, trace_path, capsys):
        assert obs_main(["spans", trace_path, "--job", "0"]) == 0

    def test_critical_path_subcommand(self, trace_path, capsys):
        assert obs_main(["critical-path", trace_path]) == 0
        out = capsys.readouterr().out
        assert "segment" in out and "detect" in out

    def test_missing_file_errors(self, capsys):
        assert obs_main(["spans", "/nonexistent/x.jsonl"]) == 1

    def test_gzip_trace_reads(self, trace_path, tmp_path, capsys):
        import gzip as gz
        import shutil

        gz_path = str(tmp_path / "t_trace.jsonl.gz")
        with open(trace_path, "rb") as src, gz.open(gz_path, "wb") as dst:
            shutil.copyfileobj(src, dst)
        assert obs_main(["critical-path", gz_path]) == 0
