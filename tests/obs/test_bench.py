"""Bench payloads, the BENCH_*.json writer, and the compare gate."""

import copy
import json
import os

import pytest

from repro.obs import bench as bench_mod
from repro.obs import check_schema_version, schema
from repro.obs.__main__ import main as obs_main
from repro.obs.bench import (
    bench_filename,
    bench_payload_from_pytest,
    compare_payloads,
    load_bench,
    run_bench,
    validate_bench_payload,
)


def make_payload(**wall):
    """A minimal valid bench payload; ``wall`` overrides run wall times."""
    runs = []
    for name, default in (("fig5.can-het.tiny", 1.0), ("micro.route", 0.2)):
        runs.append(
            {
                "name": name,
                "group": name.split(".")[0],
                "kind": "sim",
                "wall_seconds": wall.get(
                    name.replace(".", "_").replace("-", "_"), default
                ),
                "metrics": {"sim_events": 100},
                "profile": {
                    "sim.dispatch.Timeout": {
                        "calls": 10,
                        "cum_s": 0.5,
                        "self_s": 0.5,
                    }
                },
            }
        )
    return {
        "schema_version": schema.SCHEMA_VERSION,
        "kind": "bench",
        "mode": "smoke",
        "manifest": {"name": "bench-smoke", "seed": 1},
        "runs": runs,
    }


class TestSchema:
    def test_current_version_accepted(self):
        check_schema_version(schema.SCHEMA_VERSION, "x")
        check_schema_version(None, "legacy artifact")  # grandfathered

    def test_future_major_rejected(self):
        with pytest.raises(ValueError, match="major version"):
            check_schema_version("99.0", "x")

    def test_minor_bump_accepted(self):
        check_schema_version("1.9", "x")

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            check_schema_version("one.two", "x")


class TestValidation:
    def test_valid_payload_passes(self):
        validate_bench_payload(make_payload())

    def test_rejects_wrong_kind(self):
        payload = make_payload()
        payload["kind"] = "trace"
        with pytest.raises(ValueError, match="kind"):
            validate_bench_payload(payload)

    def test_rejects_future_major_version(self):
        payload = make_payload()
        payload["schema_version"] = "2.0"
        with pytest.raises(ValueError, match="schema version"):
            validate_bench_payload(payload)

    def test_rejects_run_missing_keys(self):
        payload = make_payload()
        del payload["runs"][0]["profile"]
        with pytest.raises(ValueError, match="profile"):
            validate_bench_payload(payload)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_bench_payload([1, 2, 3])


class TestRunBench:
    @pytest.fixture
    def tiny_suite(self, monkeypatch):
        """Replace the real suite with one instant workload."""

        def fake_suite(mode, seed):
            def workload(profiler):
                with profiler.scope("tiny.work"):
                    pass
                return {"sim_events": 5, "seed": seed}

            return [("tiny.run", "tiny", "sim", workload)]

        monkeypatch.setattr(bench_mod, "_suite", fake_suite)

    def test_writes_schema_valid_file(self, tiny_suite, tmp_path):
        out = str(tmp_path / "BENCH_test.json")
        payload, path = run_bench(mode="smoke", seed=42, out_path=out)
        assert path == out
        loaded = load_bench(out)  # validates on read
        assert loaded["schema_version"] == schema.SCHEMA_VERSION
        assert loaded["mode"] == "smoke"
        assert loaded["manifest"]["seed"] == 42
        assert loaded["manifest"]["git_describe"]
        assert loaded["manifest"]["python"]
        [run] = loaded["runs"]
        assert run["name"] == "tiny.run"
        assert run["metrics"] == {"sim_events": 5, "seed": 42}
        assert "tiny.work" in run["profile"]

    def test_default_filename_pattern(self, tiny_suite, tmp_path):
        _, path = run_bench(mode="smoke", out_dir=str(tmp_path))
        name = os.path.basename(path)
        assert name.startswith("BENCH_") and name.endswith(".json")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_bench(mode="huge")

    def test_bench_filename_shape(self):
        import datetime

        stamp = datetime.datetime(
            2026, 8, 6, 12, 30, 0, tzinfo=datetime.timezone.utc
        )
        assert bench_filename(stamp) == "BENCH_20260806T123000Z.json"


class TestCompare:
    def test_self_compare_is_clean(self):
        payload = make_payload()
        comparison = compare_payloads(payload, copy.deepcopy(payload))
        assert comparison.ok
        assert comparison.rows  # it did compare something
        assert all(delta == 0.0 for _, _, _, delta, _ in comparison.rows)

    def test_regression_detected(self):
        old = make_payload()
        new = make_payload(fig5_can_het_tiny=2.0)  # 1.0s -> 2.0s
        comparison = compare_payloads(old, new, threshold=20.0)
        assert not comparison.ok
        [(scope, old_s, new_s, delta, bad)] = comparison.regressions
        assert scope == "fig5.can-het.tiny"
        assert delta == pytest.approx(100.0)

    def test_scope_level_regression_detected(self):
        old = make_payload()
        new = make_payload()
        new["runs"][0]["profile"]["sim.dispatch.Timeout"]["cum_s"] = 5.0
        comparison = compare_payloads(old, new, threshold=20.0)
        scopes = [row[0] for row in comparison.regressions]
        assert "fig5.can-het.tiny :: sim.dispatch.Timeout" in scopes

    def test_noise_floor_suppresses_tiny_times(self):
        old = make_payload(fig5_can_het_tiny=0.0001, micro_route=0.0001)
        new = make_payload(fig5_can_het_tiny=0.004, micro_route=0.004)
        old["runs"][0]["profile"] = {}
        new["runs"][0]["profile"] = {}
        old["runs"][1]["profile"] = {}
        new["runs"][1]["profile"] = {}
        comparison = compare_payloads(old, new, threshold=20.0)
        assert comparison.ok  # 40x slower but under the noise floor
        assert comparison.rows == []

    def test_disjoint_runs_reported_not_compared(self):
        old = make_payload()
        new = make_payload()
        new["runs"][1]["name"] = "micro.route_v2"
        comparison = compare_payloads(old, new)
        assert comparison.only_old == ["micro.route"]
        assert comparison.only_new == ["micro.route_v2"]

    def test_speedup_is_not_a_regression(self):
        old = make_payload(fig5_can_het_tiny=2.0)
        new = make_payload(fig5_can_het_tiny=1.0)
        assert compare_payloads(old, new).ok


class TestCompareCli:
    def write(self, tmp_path, name, payload):
        path = str(tmp_path / name)
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return path

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", make_payload())
        assert obs_main(["compare", a, a]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", make_payload())
        b = self.write(
            tmp_path, "b.json", make_payload(fig5_can_het_tiny=3.0)
        )
        assert obs_main(["compare", a, b]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_warn_only_exits_zero(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", make_payload())
        b = self.write(
            tmp_path, "b.json", make_payload(fig5_can_het_tiny=3.0)
        )
        assert obs_main(["compare", a, b, "--warn-only"]) == 0

    def test_threshold_flag_loosens_gate(self, tmp_path):
        a = self.write(tmp_path, "a.json", make_payload())
        b = self.write(
            tmp_path, "b.json", make_payload(fig5_can_het_tiny=1.3)
        )
        assert obs_main(["compare", a, b, "--threshold", "20"]) == 1
        assert obs_main(["compare", a, b, "--threshold", "50"]) == 0

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", make_payload())
        assert obs_main(["compare", a, str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_future_schema_exits_two(self, tmp_path, capsys):
        payload = make_payload()
        payload["schema_version"] = "9.0"
        a = self.write(tmp_path, "a.json", make_payload())
        b = self.write(tmp_path, "b.json", payload)
        assert obs_main(["compare", a, b]) == 2
        assert "schema version" in capsys.readouterr().err


class TestPytestBenchmarkExport:
    def test_converts_to_bench_schema(self):
        output_json = {
            "datetime": "2026-08-06T00:00:00",
            "commit_info": {"id": "abcdef1234567890"},
            "machine_info": {"python_version": "3.12.0"},
            "benchmarks": [
                {
                    "name": "test_bench_greedy_routing",
                    "group": None,
                    "stats": {
                        "mean": 0.01,
                        "min": 0.009,
                        "max": 0.012,
                        "stddev": 0.001,
                        "rounds": 25,
                        "ops": 100.0,
                    },
                }
            ],
        }
        payload = bench_payload_from_pytest(output_json)
        validate_bench_payload(payload)
        assert payload["mode"] == "pytest"
        [run] = payload["runs"]
        assert run["name"] == "pytest.test_bench_greedy_routing"
        assert run["wall_seconds"] == pytest.approx(0.01)
        assert run["metrics"]["rounds"] == 25
        assert payload["manifest"]["git_describe"] == "abcdef123456"

    def test_two_conversions_compare_cleanly(self):
        output_json = {
            "benchmarks": [
                {"name": "t", "group": "g", "stats": {"mean": 0.5}}
            ]
        }
        a = bench_payload_from_pytest(output_json)
        b = bench_payload_from_pytest(copy.deepcopy(output_json))
        assert compare_payloads(a, b).ok
