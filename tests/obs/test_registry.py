"""Unit tests for the hierarchical metrics registry."""

import pytest

from repro.obs import MetricsRegistry
from repro.sim.monitor import Counter, TimeSeries, TimeWeighted


class TestNaming:
    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        proto = reg.scope("protocol")
        c = proto.counter("messages")
        assert reg.get("protocol.messages") is c
        assert reg.names() == ["protocol.messages"]

    def test_nested_scopes(self):
        reg = MetricsRegistry()
        reg.scope("grid").scope("jobs").counter("lost")
        assert reg.names() == ["grid.jobs.lost"]

    def test_scope_names_filter_to_prefix(self):
        reg = MetricsRegistry()
        reg.counter("top")
        grid = reg.scope("grid")
        grid.counter("jobs")
        assert grid.names() == ["grid.jobs"]
        assert reg.names() == ["grid.jobs", "top"]

    def test_empty_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.scope("")
        with pytest.raises(ValueError):
            reg.counter("")


class TestCreation:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.timeseries("b") is reg.timeseries("b")
        assert reg.timeweighted("c") is reg.timeweighted("c")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.timeseries("x")
        with pytest.raises(TypeError):
            reg.timeweighted("x")

    def test_register_adopts_existing_monitor(self):
        reg = MetricsRegistry()
        ts = TimeSeries("broken_links")
        assert reg.register("protocol.broken_links", ts) is ts
        assert reg.get("protocol.broken_links") is ts
        # re-registering the same object is fine; another object is not
        reg.register("protocol.broken_links", ts)
        with pytest.raises(ValueError):
            reg.register("protocol.broken_links", TimeSeries("other"))

    def test_register_rejects_non_monitors(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("x", object())


class TestSnapshot:
    def test_counter_snapshot(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs")
        c.add("submitted", 3)
        c.add("lost")
        snap = reg.snapshot()
        assert snap["jobs"] == {
            "kind": "counter",
            "counts": {"submitted": 3.0, "lost": 1.0},
            "total": 4.0,
        }

    def test_timeseries_snapshot(self):
        reg = MetricsRegistry()
        ts = reg.timeseries("links")
        snap = reg.snapshot()
        assert snap["links"] == {"kind": "timeseries", "samples": 0}
        ts.record(0.0, 1.0)
        ts.record(10.0, 3.0)
        snap = reg.snapshot()
        assert snap["links"]["samples"] == 2
        assert snap["links"]["last_time"] == 10.0
        assert snap["links"]["last_value"] == 3.0
        assert snap["links"]["mean_value"] == pytest.approx(2.0)

    def test_timeweighted_snapshot_needs_now_for_mean(self):
        reg = MetricsRegistry()
        tw = reg.timeweighted("population")
        tw.update(0.0, 10.0)
        tw.update(10.0, 20.0)
        assert reg.snapshot()["population"]["mean"] is None
        snap = reg.snapshot(now=20.0)
        assert snap["population"]["current"] == 20.0
        assert snap["population"]["mean"] == pytest.approx(15.0)

    def test_snapshot_is_json_able(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").add("k")
        reg.timeseries("t").record(1.0, 2.0)
        reg.timeweighted("w").update(1.0, 1.0)
        json.dumps(reg.snapshot(now=2.0))  # must not raise
