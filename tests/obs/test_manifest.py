"""Run-manifest schema, git describe fallback, and atomic writing."""

import json

from repro.obs import RunManifest, git_describe


class TestGitDescribe:
    def test_in_repo_returns_something(self):
        assert git_describe() != ""

    def test_outside_repo_falls_back(self, tmp_path):
        assert git_describe(cwd=str(tmp_path)) == "unknown"


class TestRunManifest:
    def test_schema_fields_present(self, tmp_path):
        m = RunManifest(name="fig7", seed=1, config={"fast": True})
        path = str(tmp_path / "m.json")
        assert m.write(path) == path
        data = json.load(open(path))
        for key in (
            "name",
            "config",
            "seed",
            "git_describe",
            "python",
            "started_at",
            "wall_seconds",
            "event_counts",
            "total_events",
            "metrics",
            "artifacts",
        ):
            assert key in data, key
        assert data["name"] == "fig7"
        assert data["seed"] == 1
        assert data["config"] == {"fast": True}

    def test_total_events_derives_from_counts(self):
        m = RunManifest(name="x")
        m.event_counts = {"a": 2, "b": 3}
        assert m.total_events == 5
        assert m.as_dict()["total_events"] == 5

    def test_finish_is_idempotent(self):
        m = RunManifest(name="x")
        m.finish()
        first = m.wall_seconds
        m.finish()
        assert m.wall_seconds == first

    def test_write_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "m.json")
        RunManifest(name="x").write(path)
        assert json.load(open(path))["name"] == "x"
