"""Trace export, run recording, determinism, and zero-overhead guards."""

import json
import os

import pytest

from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import ChurnConfig, ChurnSimulation
from repro.obs import JsonlTraceWriter, RunRecorder, Tracer, read_trace
from repro.obs import events as events_mod


def tiny_churn_config(**overrides):
    """A fig7-shaped run small enough for the test suite."""
    kwargs = dict(
        initial_nodes=16,
        gpu_slots=0,
        scheme=HeartbeatScheme.ADAPTIVE,
        heartbeat_period=60.0,
        event_gap_mean=40.0,
        leave_mode="fail",
        duration=900.0,
        seed=7,
    )
    kwargs.update(overrides)
    return ChurnConfig(**kwargs)


class TestJsonlTraceWriter:
    def test_writes_canonical_lines(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceWriter(path) as writer:
            tracer = Tracer()
            tracer.subscribe(writer)
            tracer.emit(1.5, "msg.sent", mtype="heartbeat", bytes=40, copies=2)
        event_line = (
            '{"bytes":40,"copies":2,"mtype":"heartbeat","t":1.5,"type":"msg.sent"}\n'
        )
        assert open(path).read() == (
            '{"schema_version":"1.0","type":"trace.header"}\n' + event_line
        )
        # the header is consumed, not yielded
        assert list(read_trace(path)) == [json.loads(event_line)]

    def test_read_trace_accepts_headerless_legacy_files(self, tmp_path):
        path = str(tmp_path / "legacy.jsonl")
        with open(path, "w") as fh:
            fh.write('{"t":0.0,"type":"x"}\n')
        assert list(read_trace(path)) == [{"t": 0.0, "type": "x"}]

    def test_read_trace_rejects_future_major_version(self, tmp_path):
        path = str(tmp_path / "future.jsonl")
        with open(path, "w") as fh:
            fh.write('{"schema_version":"2.0","type":"trace.header"}\n')
            fh.write('{"t":0.0,"type":"x"}\n')
        with pytest.raises(ValueError, match="schema version"):
            list(read_trace(path))

    def test_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "t.jsonl")
        JsonlTraceWriter(path).close()
        assert os.path.exists(path)

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlTraceWriter(str(tmp_path / "t.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer(events_mod.TraceEvent(0.0, "x.y", {}))


class TestGzipTraces:
    def test_gzip_round_trip_matches_plain(self, tmp_path):
        """The same seeded run reads identically from .jsonl and .jsonl.gz."""
        events_by_suffix = {}
        for suffix in ("jsonl", "jsonl.gz"):
            path = str(tmp_path / f"run.{suffix}")
            with JsonlTraceWriter(path) as writer:
                tracer = Tracer()
                tracer.subscribe(writer)
                ChurnSimulation(tiny_churn_config(), tracer=tracer).run()
            events_by_suffix[suffix] = list(read_trace(path))
        assert events_by_suffix["jsonl"] == events_by_suffix["jsonl.gz"]
        assert len(events_by_suffix["jsonl"]) > 0
        plain = os.path.getsize(str(tmp_path / "run.jsonl"))
        packed = os.path.getsize(str(tmp_path / "run.jsonl.gz"))
        assert packed < plain  # the whole point

    def test_gzip_flush_mid_stream_is_complete(self, tmp_path):
        """flush() leaves a fully readable archive on disk, never torn."""
        path = str(tmp_path / "mid.jsonl.gz")
        writer = JsonlTraceWriter(path)
        tracer = Tracer()
        tracer.subscribe(writer)
        tracer.emit(1.0, "msg.sent", mtype="heartbeat", bytes=40, copies=1)
        writer.flush()
        snapshot = list(read_trace(path))
        assert [e["type"] for e in snapshot] == ["msg.sent"]
        # keep writing after the flush; close supersedes the snapshot
        tracer.emit(2.0, "msg.sent", mtype="heartbeat", bytes=40, copies=1)
        writer.close()
        final = list(read_trace(path))
        assert [e["t"] for e in final] == [1.0, 2.0]
        assert writer.lines == 2

    def test_gzip_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "idem.jsonl.gz")
        writer = JsonlTraceWriter(path)
        writer.close()
        writer.close()
        assert list(read_trace(path)) == []
        with pytest.raises(ValueError):
            writer(events_mod.TraceEvent(0.0, "x.y", {}))

    def test_recorder_writes_gzip_when_asked(self, tmp_path):
        rec = RunRecorder(str(tmp_path), "exp", compress=True)
        rec.tracer.emit(1.0, "msg.sent", mtype="heartbeat", bytes=40, copies=1)
        rec.close()
        assert rec.trace_path.endswith(".jsonl.gz")
        assert os.path.exists(rec.trace_path)
        assert [e["type"] for e in read_trace(rec.trace_path)] == ["msg.sent"]


class TestRunRecorder:
    def test_disabled_recorder_is_inert(self, tmp_path):
        rec = RunRecorder(str(tmp_path), "exp", enabled=False)
        assert rec.tracer is None
        rec.run_start("a")
        rec.run_end("a")
        assert rec.close(config={"fast": True}) is None
        assert list(tmp_path.iterdir()) == []

    def test_close_writes_trace_and_manifest(self, tmp_path):
        rec = RunRecorder(str(tmp_path), "exp", seed=3)
        rec.run_start("exp:one", scheme="vanilla")
        rec.tracer.emit(5.0, "msg.sent", mtype="heartbeat", bytes=40, copies=1)
        rec.run_end("exp:one", t=5.0)
        manifest_path = rec.close(
            config={"fast": True}, artifacts=["exp.csv"]
        )
        assert manifest_path == str(tmp_path / "exp_run.manifest.json")
        manifest = json.load(open(manifest_path))
        assert manifest["name"] == "exp"
        assert manifest["seed"] == 3
        assert manifest["config"] == {"fast": True}
        assert manifest["event_counts"] == {
            "msg.sent": 1,
            "run.end": 1,
            "run.start": 1,
        }
        assert manifest["total_events"] == 3
        assert manifest["wall_seconds"] >= 0.0
        assert manifest["artifacts"] == ["exp.csv", "exp_trace.jsonl"]
        events = list(read_trace(str(tmp_path / "exp_trace.jsonl")))
        assert [e["type"] for e in events] == ["run.start", "msg.sent", "run.end"]

    def test_context_manager_closes_once(self, tmp_path):
        with RunRecorder(str(tmp_path), "exp") as rec:
            rec.run_start("exp")
            rec.close(config={"explicit": True})
        manifest = json.load(open(str(tmp_path / "exp_run.manifest.json")))
        # __exit__ must not clobber the explicit close
        assert manifest["config"] == {"explicit": True}

    def test_context_manager_closes_implicitly(self, tmp_path):
        with RunRecorder(str(tmp_path), "exp") as rec:
            rec.run_start("exp")
        assert os.path.exists(str(tmp_path / "exp_run.manifest.json"))


class TestDeterminism:
    def test_same_seed_byte_identical_trace(self, tmp_path):
        """A seeded fig7-style run emits a byte-identical event stream."""
        blobs = []
        for attempt in ("a", "b"):
            path = str(tmp_path / f"run_{attempt}.jsonl")
            with JsonlTraceWriter(path) as writer:
                tracer = Tracer()
                tracer.subscribe(writer)
                ChurnSimulation(tiny_churn_config(), tracer=tracer).run()
            blobs.append(open(path, "rb").read())
        assert blobs[0] == blobs[1]
        assert len(blobs[0]) > 0

    def test_different_seed_different_trace(self, tmp_path):
        blobs = []
        for seed in (7, 8):
            path = str(tmp_path / f"seed_{seed}.jsonl")
            with JsonlTraceWriter(path) as writer:
                tracer = Tracer()
                tracer.subscribe(writer)
                ChurnSimulation(
                    tiny_churn_config(seed=seed), tracer=tracer
                ).run()
            blobs.append(open(path, "rb").read())
        assert blobs[0] != blobs[1]


class TestZeroOverheadWhenDisabled:
    def test_untraced_run_allocates_no_events(self, monkeypatch):
        """With no tracer attached, no TraceEvent may ever be constructed."""

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("TraceEvent allocated with tracing disabled")

        monkeypatch.setattr(events_mod.TraceEvent, "__init__", boom)
        monkeypatch.setattr(events_mod.Tracer, "emit", boom)
        res = ChurnSimulation(tiny_churn_config(duration=400.0)).run()
        assert res.final_population > 0
