"""Profiler semantics, the no-op profiler, and zero-overhead guards."""

import pytest

from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import (
    ChurnConfig,
    ChurnSimulation,
    GridSimulation,
    MatchmakingConfig,
)
from repro.obs import NULL_PROFILER, NullProfiler, Profiler, profiled
from repro.obs import profiling as profiling_mod
from repro.obs.profiling import render_profile, scope_totals
from repro.workload import TINY_LOAD


class FakeClock:
    """Deterministic clock: each tick advances by a fixed step."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


class TestProfiler:
    def test_flat_scope_counts_and_time(self):
        prof = Profiler(clock=FakeClock(step=1.0))
        for _ in range(3):
            with prof.scope("work"):
                pass
        stats = prof.stats()
        assert set(stats) == {"work"}
        assert stats["work"].calls == 3
        # each scope spans exactly one clock tick
        assert stats["work"].cum == pytest.approx(3.0)
        assert stats["work"].self_time == pytest.approx(3.0)

    def test_nested_scopes_self_vs_cumulative(self):
        clock = FakeClock(step=1.0)
        prof = Profiler(clock=clock)
        with prof.scope("outer"):      # t=0 .. t=5
            with prof.scope("inner"):  # t=1 .. t=2
                pass
            with prof.scope("inner"):  # t=3 .. t=4
                pass
        stats = prof.stats()
        assert set(stats) == {"outer", "outer/inner"}
        outer, inner = stats["outer"], stats["outer/inner"]
        assert inner.calls == 2
        assert inner.cum == pytest.approx(2.0)
        assert outer.cum == pytest.approx(5.0)
        # outer's self time excludes the two inner spans
        assert outer.self_time == pytest.approx(3.0)
        assert outer.depth == 0 and inner.depth == 1
        assert inner.name == "inner"

    def test_same_name_different_parents_kept_apart(self):
        prof = Profiler(clock=FakeClock())
        with prof.scope("a"):
            with prof.scope("step"):
                pass
        with prof.scope("b"):
            with prof.scope("step"):
                pass
        assert {"a/step", "b/step"} <= set(prof.stats())

    def test_push_pop_match_scope(self):
        prof = Profiler(clock=FakeClock())
        prof.push("x")
        dt = prof.pop()
        assert dt == pytest.approx(1.0)
        assert prof.stats()["x"].calls == 1

    def test_exception_still_pops(self):
        prof = Profiler(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with prof.scope("boom"):
                raise RuntimeError("x")
        assert prof.stats()["boom"].calls == 1
        # the stack unwound: a new scope is a root again
        with prof.scope("after"):
            pass
        assert "after" in prof.stats()

    def test_as_dict_round_trip(self):
        prof = Profiler(clock=FakeClock())
        with prof.scope("a"):
            with prof.scope("b"):
                pass
        d = prof.as_dict()
        assert d["a"]["calls"] == 1
        assert d["a/b"]["cum_s"] == pytest.approx(1.0)
        assert set(d["a"]) == {"calls", "cum_s", "self_s"}

    def test_reset_and_totals(self):
        prof = Profiler(clock=FakeClock())
        with prof.scope("a"):
            pass
        assert prof.total_calls() == 1
        prof.reset()
        assert prof.total_calls() == 0
        assert prof.as_dict() == {}

    def test_render_profile_mentions_scopes(self):
        prof = Profiler(clock=FakeClock())
        with prof.scope("outer"):
            with prof.scope("inner"):
                pass
        text = render_profile(prof.as_dict())
        assert "outer" in text and "inner" in text

    def test_scope_totals(self):
        prof = Profiler(clock=FakeClock(step=1.0))
        with prof.scope("root"):   # 3 ticks cum (incl. child)
            with prof.scope("child"):
                pass
        calls, root_cum = scope_totals(prof.as_dict())
        assert calls == 2
        assert root_cum == pytest.approx(3.0)


class TestProfiledDecorator:
    class Widget:
        def __init__(self, profiler):
            self.profiler = profiler

        @profiled("widget.work")
        def work(self):
            return 42

        @profiled()
        def unnamed(self):
            return "named-after-method"

    def test_records_under_given_name(self):
        prof = Profiler(clock=FakeClock())
        w = self.Widget(prof)
        assert w.work() == 42
        assert prof.stats()["widget.work"].calls == 1

    def test_default_name_is_method_name(self):
        prof = Profiler(clock=FakeClock())
        w = self.Widget(prof)
        assert w.unnamed() == "named-after-method"
        assert any("unnamed" in path for path in prof.stats())

    def test_none_profiler_is_passthrough(self):
        w = self.Widget(None)
        assert w.work() == 42

    def test_null_profiler_is_passthrough(self):
        w = self.Widget(NULL_PROFILER)
        assert w.work() == 42


class TestNullProfiler:
    def test_singleton_scope_is_reused(self):
        s1 = NULL_PROFILER.scope("a")
        s2 = NULL_PROFILER.scope("b")
        assert s1 is s2
        with s1:
            pass

    def test_disabled_flag_and_empty_stats(self):
        assert NullProfiler.enabled is False
        assert Profiler.enabled is True
        NULL_PROFILER.push("x")
        NULL_PROFILER.pop()
        assert NULL_PROFILER.as_dict() == {}
        assert NULL_PROFILER.stats() == {}
        assert NULL_PROFILER.total_calls() == 0


class TestZeroOverheadWhenDisabled:
    """Unprofiled runs must never touch the profiler — the structural
    counterpart of the tracer's zero-overhead guard (timing assertions
    would flake; a poisoned Profiler cannot)."""

    @pytest.fixture(autouse=True)
    def poison_profiler(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("Profiler touched with profiling disabled")

        monkeypatch.setattr(profiling_mod.Profiler, "push", boom)
        monkeypatch.setattr(profiling_mod.Profiler, "pop", boom)
        monkeypatch.setattr(profiling_mod.Profiler, "scope", boom)

    def test_unprofiled_grid_run(self):
        sim = GridSimulation(MatchmakingConfig(TINY_LOAD, scheme="can-het"))
        result = sim.run()
        assert result.jobs_submitted == TINY_LOAD.jobs

    def test_unprofiled_churn_run(self):
        config = ChurnConfig(
            initial_nodes=16,
            gpu_slots=0,
            scheme=HeartbeatScheme.ADAPTIVE,
            heartbeat_period=60.0,
            event_gap_mean=40.0,
            duration=400.0,
            seed=7,
        )
        result = ChurnSimulation(config).run()
        assert result.final_population > 0


class TestProfiledSimulations:
    def test_grid_run_collects_dispatch_and_placement_scopes(self):
        prof = Profiler()
        sim = GridSimulation(
            MatchmakingConfig(TINY_LOAD, scheme="can-het"), profiler=prof
        )
        sim.run()
        paths = set(prof.as_dict())
        assert any(p.startswith("sim.dispatch.") for p in paths)
        assert any("mm.place.can-het" in p for p in paths)

    def test_churn_run_collects_heartbeat_scopes(self):
        prof = Profiler()
        config = ChurnConfig(
            initial_nodes=16,
            gpu_slots=0,
            scheme=HeartbeatScheme.VANILLA,
            heartbeat_period=60.0,
            event_gap_mean=40.0,
            duration=400.0,
            seed=7,
        )
        ChurnSimulation(config, profiler=prof).run()
        paths = set(prof.as_dict())
        assert any("hb.round.vanilla" in p for p in paths)
        assert any(p.endswith("hb.exchange") for p in paths)

    def test_profiled_run_matches_unprofiled_result(self):
        """Profiling must observe, never perturb, the simulation."""
        base = GridSimulation(
            MatchmakingConfig(TINY_LOAD, scheme="can-het")
        ).run()
        prof = GridSimulation(
            MatchmakingConfig(TINY_LOAD, scheme="can-het"),
            profiler=Profiler(),
        ).run()
        assert base.wait_times.tolist() == prof.wait_times.tolist()
        assert base.jobs_submitted == prof.jobs_submitted
