"""QuantileSketch / WindowedCounter: accuracy, memory bounds, determinism."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, QuantileSketch, WindowedCounter
from repro.obs.prom import prom_name, render_prometheus


def rank_error(sorted_exact: np.ndarray, estimate: float, q: float) -> float:
    """Distance (in rank space) between the estimate and the target quantile.

    Duplicate-tolerant: the estimate's rank is the interval
    [count(< est), count(<= est)]; the error is the gap from q to that
    interval (zero if q falls inside it).
    """
    n = sorted_exact.size
    lo = np.searchsorted(sorted_exact, estimate, side="left") / n
    hi = np.searchsorted(sorted_exact, estimate, side="right") / n
    if lo <= q <= hi:
        return 0.0
    return min(abs(q - lo), abs(q - hi))


class TestQuantileSketchExact:
    def test_small_inputs_are_exact(self):
        sk = QuantileSketch(k=64)
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        sk.extend(values)
        assert sk.n == 5
        assert sk.retained == 5
        assert sk.quantile(0.0) == 1.0
        assert sk.quantile(1.0) == 5.0
        assert sk.quantile(0.5) == 3.0
        assert sk.min == 1.0 and sk.max == 5.0
        assert sk.mean == pytest.approx(3.0)
        assert sk.sum == pytest.approx(15.0)

    def test_empty_sketch(self):
        sk = QuantileSketch()
        assert sk.n == 0
        assert math.isnan(sk.quantile(0.5))
        assert math.isnan(sk.min) and math.isnan(sk.max)
        assert np.all(sk.cdf([0.0, 1.0]) == 0.0)
        assert sk.as_dict() == {"count": 0, "retained": 0}

    def test_rejects_nan_and_bad_quantiles(self):
        sk = QuantileSketch()
        with pytest.raises(ValueError):
            sk.insert(float("nan"))
        sk.insert(1.0)
        with pytest.raises(ValueError):
            sk.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(k=7)  # odd
        with pytest.raises(ValueError):
            QuantileSketch(k=4)  # too small


ADVERSARIAL = {
    "uniform": lambda rng, n: rng.random(n),
    "exponential": lambda rng, n: rng.exponential(1000.0, n),
    "lognormal": lambda rng, n: rng.lognormal(3.0, 2.0, n),
    "bimodal": lambda rng, n: np.concatenate(
        [rng.normal(0.0, 1.0, n // 2), rng.normal(1e6, 1.0, n - n // 2)]
    ),
    "sorted_ascending": lambda rng, n: np.arange(n, dtype=float),
    "sorted_descending": lambda rng, n: np.arange(n, 0, -1, dtype=float),
    "heavy_duplicates": lambda rng, n: rng.integers(0, 10, n).astype(float),
    "constant": lambda rng, n: np.full(n, 42.0),
}


class TestQuantileSketchAccuracy:
    @pytest.mark.parametrize("dist", sorted(ADVERSARIAL))
    def test_rank_error_within_one_percent(self, dist):
        rng = np.random.default_rng(20110926)
        data = ADVERSARIAL[dist](rng, 50_000)
        sk = QuantileSketch()
        sk.extend(data)
        exact = np.sort(data)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
            err = rank_error(exact, sk.quantile(q), q)
            assert err <= 0.01, f"{dist} q={q}: rank error {err:.4f}"

    @pytest.mark.parametrize("dist", sorted(ADVERSARIAL))
    def test_cdf_error_within_one_percent(self, dist):
        rng = np.random.default_rng(7)
        data = ADVERSARIAL[dist](rng, 50_000)
        sk = QuantileSketch()
        sk.extend(data)
        exact = np.sort(data)
        thresholds = np.quantile(data, np.linspace(0, 1, 21))
        est = sk.cdf(thresholds)
        truth = np.searchsorted(exact, thresholds, side="right") / exact.size
        assert np.max(np.abs(est - truth)) <= 0.01

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e12,
                max_value=1e12,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=2000,
        ),
        st.sampled_from([0.1, 0.5, 0.9, 0.99]),
    )
    def test_rank_error_property(self, values, q):
        sk = QuantileSketch(k=128)
        sk.extend(values)
        exact = np.sort(np.asarray(values, dtype=float))
        # k=128 gives ~1/128 rank error; 1% target needs n large relative
        # to k — for tiny n the sketch is exact anyway
        assert rank_error(exact, sk.quantile(q), q) <= max(0.01, 1.0 / len(values))

    def test_min_max_always_exact(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1e6, 100_000)
        sk = QuantileSketch()
        sk.extend(data)
        assert sk.min == data.min()
        assert sk.max == data.max()
        assert sk.quantile(0.0) == data.min()
        assert sk.quantile(1.0) == data.max()


class TestQuantileSketchMemory:
    def test_bounded_memory_under_1m_inserts(self):
        """The acceptance bound: retained samples stay O(k log(n/k))."""
        rng = np.random.default_rng(11)
        sk = QuantileSketch()  # k=512
        checkpoints = {}
        for chunk in range(10):
            sk.extend(rng.exponential(100.0, 100_000))
            checkpoints[(chunk + 1) * 100_000] = sk.retained
        assert sk.n == 1_000_000
        # k * levels with every level at most full: 512 * ~12 < 8192 —
        # and crucially the footprint is flat between 100k and 1M inserts
        assert all(r <= 8_192 for r in checkpoints.values()), checkpoints
        assert checkpoints[1_000_000] <= 2 * checkpoints[100_000]
        # accuracy survives at the full scale: the exponential median is
        # 100*ln 2 ~ 69.3; allow sketch + sampling slack
        assert sk.quantile(0.5) == pytest.approx(100.0 * math.log(2), rel=0.05)

    def test_determinism(self):
        """Same insert order -> byte-identical internal state (no RNG)."""
        rng = np.random.default_rng(5)
        data = rng.random(50_000)
        a, b = QuantileSketch(), QuantileSketch()
        a.extend(data)
        b.extend(data)
        assert a._levels == b._levels
        assert a.quantile(0.9) == b.quantile(0.9)


class TestQuantileSketchMerge:
    def test_merge_matches_single_stream(self):
        rng = np.random.default_rng(13)
        data = rng.exponential(10.0, 60_000)
        merged = QuantileSketch()
        for shard in np.array_split(data, 6):
            piece = QuantileSketch()
            piece.extend(shard)
            merged.merge(piece)
        assert merged.n == data.size
        assert merged.min == data.min() and merged.max == data.max()
        exact = np.sort(data)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert rank_error(exact, merged.quantile(q), q) <= 0.01


class TestWindowedCounter:
    def test_sliding_window(self):
        wc = WindowedCounter(window=60.0, buckets=6)  # 10s buckets
        wc.add(5.0)
        wc.add(15.0)
        wc.add(55.0)
        assert wc.total(55.0) == 3.0
        # t=65: the [0,10) bucket has slid out (bucket-quantized window)
        assert wc.total(65.0) == 2.0
        # t=75: the [10,20) bucket goes too
        assert wc.total(75.0) == 1.0
        # t=200: everything expired
        assert wc.total(200.0) == 0.0
        assert wc.lifetime == 3.0

    def test_rate(self):
        wc = WindowedCounter(window=10.0, buckets=10)
        for t in range(10):
            wc.add(float(t), 2.0)
        assert wc.rate(9.0) == pytest.approx(2.0)

    def test_out_of_order_within_window(self):
        wc = WindowedCounter(window=60.0, buckets=6)
        wc.add(50.0)
        wc.add(45.0)  # older but still in window
        assert wc.total(50.0) == 2.0

    def test_stale_add_is_dropped(self):
        wc = WindowedCounter(window=60.0, buckets=6)
        wc.add(500.0)
        wc.add(1.0)  # far older than the ring: must not shadow a live bucket
        assert wc.total(500.0) == 1.0
        assert wc.lifetime == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedCounter(window=0.0)
        wc = WindowedCounter()
        with pytest.raises(ValueError):
            wc.add(0.0, -1.0)


class TestRegistryIntegration:
    def test_new_monitor_kinds(self):
        reg = MetricsRegistry()
        sk = reg.quantile_sketch("wait")
        assert reg.quantile_sketch("wait") is sk
        wc = reg.windowed_counter("reqs", window=30.0, buckets=3)
        assert reg.windowed_counter("reqs") is wc
        with pytest.raises(TypeError):
            reg.counter("wait")
        with pytest.raises(TypeError):
            reg.quantile_sketch("reqs")

    def test_snapshot_includes_streaming_kinds(self):
        reg = MetricsRegistry()
        reg.scope("grid").quantile_sketch("wait").extend([1.0, 2.0, 3.0])
        reg.scope("svc").windowed_counter("reqs").add(5.0, 4.0)
        snap = reg.snapshot(now=10.0)
        assert snap["grid.wait"]["kind"] == "quantile_sketch"
        assert snap["grid.wait"]["count"] == 3
        assert snap["grid.wait"]["p50"] == 2.0
        assert snap["svc.reqs"]["kind"] == "windowed_counter"
        assert snap["svc.reqs"]["lifetime"] == 4.0

    def test_register_adopts_streaming_monitors(self):
        reg = MetricsRegistry()
        sk = QuantileSketch()
        assert reg.register("adopted", sk) is sk
        assert reg.get("adopted") is sk


class TestPrometheusRender:
    def test_name_mangling(self):
        assert prom_name("service.request_latency") == (
            "repro_service_request_latency"
        )
        assert prom_name("a.b-c/d") == "repro_a_b_c_d"

    def test_render_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("events").add("mm.placed", 3)
        reg.quantile_sketch("wait").extend([1.0, 2.0, 3.0, 4.0])
        reg.windowed_counter("reqs").add(5.0, 2.0)
        reg.timeseries("depth").record(1.0, 7.0)
        reg.timeweighted("pop", 0.0, 10.0)
        text = render_prometheus(reg, now=5.0)
        assert text.endswith("\n")
        assert '# TYPE repro_events_total counter' in text
        assert 'repro_events_total{key="mm.placed"} 3.0' in text
        assert "# TYPE repro_wait summary" in text
        assert 'repro_wait{quantile="0.5"}' in text
        assert "repro_wait_count 4.0" in text
        assert "repro_wait_sum 10.0" in text
        assert "repro_reqs_rate" in text and "repro_reqs_total 2.0" in text
        assert "repro_depth_count 1.0" in text
        assert "repro_pop 10.0" in text

    def test_parseable_sample_lines(self):
        reg = MetricsRegistry()
        reg.quantile_sketch("wait").extend(range(100))
        for line in render_prometheus(reg).strip().splitlines():
            if line.startswith("#"):
                continue
            name_and_labels, value = line.rsplit(" ", 1)
            float(value)  # every sample value must parse
            assert name_and_labels.startswith("repro_")
