"""Progress reporting: stream output, REPRO_QUIET, trace mirroring."""

import io

from repro.obs import ProgressReporter, Tracer, quiet_from_env


class TestQuietFromEnv:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUIET", raising=False)
        assert quiet_from_env() is False
        assert quiet_from_env(default=True) is True

    def test_truthy_values(self, monkeypatch):
        for raw in ("1", "yes", "true", "anything"):
            monkeypatch.setenv("REPRO_QUIET", raw)
            assert quiet_from_env() is True, raw

    def test_falsy_values(self, monkeypatch):
        for raw in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_QUIET", raw)
            assert quiet_from_env() is False, raw


class TestProgressReporter:
    def test_start_done_format(self):
        out = io.StringIO()
        rep = ProgressReporter(stream=out, quiet=False)
        rep.start("fig7 vanilla")
        rep.done("fig7 vanilla", 1.25)
        rep.info("fig7 vanilla", "settling")
        lines = out.getvalue().splitlines()
        assert lines[0] == "[fig7 vanilla] running ..."
        assert lines[1] == "[fig7 vanilla] done in 1.2s"
        assert lines[2] == "[fig7 vanilla] info settling"

    def test_quiet_suppresses_output(self):
        out = io.StringIO()
        rep = ProgressReporter(stream=out, quiet=True)
        rep.start("x")
        rep.done("x", 0.1)
        assert out.getvalue() == ""

    def test_env_quiet_is_read_per_call(self, monkeypatch):
        """A long-lived reporter honours REPRO_QUIET set after creation."""
        out = io.StringIO()
        rep = ProgressReporter(stream=out)
        monkeypatch.setenv("REPRO_QUIET", "1")
        rep.start("x")
        assert out.getvalue() == ""
        monkeypatch.setenv("REPRO_QUIET", "0")
        rep.start("y")
        assert "[y] running ..." in out.getvalue()

    def test_explicit_quiet_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUIET", "1")
        out = io.StringIO()
        rep = ProgressReporter(stream=out, quiet=False)
        rep.start("x")
        assert "[x] running ..." in out.getvalue()

    def test_reports_mirrored_to_tracer_even_when_quiet(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        rep = ProgressReporter(stream=io.StringIO(), quiet=True, tracer=tracer)
        rep.start("fig5")
        rep.done("fig5", 2.0)
        assert [e.etype for e in seen] == ["run.progress", "run.progress"]
        assert seen[0].fields["label"] == "fig5"
        assert seen[1].fields["seconds"] == 2.0

    def test_timed_returns_result(self):
        rep = ProgressReporter(stream=io.StringIO(), quiet=True)
        assert rep.timed("add", lambda a, b: a + b, 2, 3) == 5
