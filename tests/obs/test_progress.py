"""Progress reporting: stream output, REPRO_QUIET, trace mirroring."""

import io

from repro.obs import ProgressReporter, Tracer, quiet_from_env


class TestQuietFromEnv:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUIET", raising=False)
        assert quiet_from_env() is False
        assert quiet_from_env(default=True) is True

    def test_truthy_values(self, monkeypatch):
        for raw in ("1", "yes", "true", "anything"):
            monkeypatch.setenv("REPRO_QUIET", raw)
            assert quiet_from_env() is True, raw

    def test_falsy_values(self, monkeypatch):
        for raw in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_QUIET", raw)
            assert quiet_from_env() is False, raw


class TestProgressReporter:
    def test_start_done_format(self):
        out = io.StringIO()
        rep = ProgressReporter(stream=out, quiet=False)
        rep.start("fig7 vanilla")
        rep.done("fig7 vanilla", 1.25)
        rep.info("fig7 vanilla", "settling")
        lines = out.getvalue().splitlines()
        assert lines[0] == "[fig7 vanilla] running ..."
        assert lines[1] == "[fig7 vanilla] done in 1.2s"
        assert lines[2] == "[fig7 vanilla] info settling"

    def test_quiet_suppresses_output(self):
        out = io.StringIO()
        rep = ProgressReporter(stream=out, quiet=True)
        rep.start("x")
        rep.done("x", 0.1)
        assert out.getvalue() == ""

    def test_env_quiet_is_read_per_call(self, monkeypatch):
        """A long-lived reporter honours REPRO_QUIET set after creation."""
        out = io.StringIO()
        rep = ProgressReporter(stream=out)
        monkeypatch.setenv("REPRO_QUIET", "1")
        rep.start("x")
        assert out.getvalue() == ""
        monkeypatch.setenv("REPRO_QUIET", "0")
        rep.start("y")
        assert "[y] running ..." in out.getvalue()

    def test_explicit_quiet_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUIET", "1")
        out = io.StringIO()
        rep = ProgressReporter(stream=out, quiet=False)
        rep.start("x")
        assert "[x] running ..." in out.getvalue()

    def test_reports_mirrored_to_tracer_even_when_quiet(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        rep = ProgressReporter(stream=io.StringIO(), quiet=True, tracer=tracer)
        rep.start("fig5")
        rep.done("fig5", 2.0)
        assert [e.etype for e in seen] == ["run.progress", "run.progress"]
        assert seen[0].fields["label"] == "fig5"
        assert seen[1].fields["seconds"] == 2.0

    def test_timed_returns_result(self):
        rep = ProgressReporter(stream=io.StringIO(), quiet=True)
        assert rep.timed("add", lambda a, b: a + b, 2, 3) == 5


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRateAndEta:
    def reporter(self):
        clock = FakeClock()
        out = io.StringIO()
        return ProgressReporter(stream=out, quiet=False, clock=clock), clock, out

    def test_progress_line_has_rate_and_eta(self):
        rep, clock, out = self.reporter()
        rep.start("fig7")
        clock.now = 2.0  # 4 items in 2s -> 2/s, 12 left -> ETA 6s
        rep.progress("fig7", 4, 16)
        assert out.getvalue().splitlines()[1] == (
            "[fig7] progress 4/16 (25%) 2.0/s ETA 6.0s"
        )

    def test_progress_without_start_degrades_to_counts(self):
        rep, _, out = self.reporter()
        rep.progress("fig7", 4, 16)
        line = out.getvalue().splitlines()[0]
        assert "4/16" in line
        assert "ETA" not in line and "/s" not in line

    def test_progress_with_zero_completed_has_no_rate(self):
        rep, clock, out = self.reporter()
        rep.start("x")
        clock.now = 5.0
        rep.progress("x", 0, 10)
        assert "ETA" not in out.getvalue()

    def test_done_derives_seconds_from_start_stamp(self):
        rep, clock, out = self.reporter()
        rep.start("x")
        clock.now = 3.0
        rep.done("x")
        assert "[x] done in 3.0s" in out.getvalue()

    def test_done_with_events_reports_rate(self):
        rep, clock, out = self.reporter()
        rep.start("x")
        clock.now = 2.0
        rep.done("x", events=1000)
        assert "[x] done in 2.0s (500 events/s)" in out.getvalue()

    def test_explicit_seconds_still_wins(self):
        rep, clock, out = self.reporter()
        rep.start("x")
        clock.now = 99.0
        rep.done("x", 1.5)
        assert "[x] done in 1.5s" in out.getvalue()

    def test_progress_mirrored_to_tracer(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        clock = FakeClock()
        rep = ProgressReporter(
            stream=io.StringIO(), quiet=True, tracer=tracer, clock=clock
        )
        rep.start("fig5")
        clock.now = 1.0
        rep.progress("fig5", 2, 4)
        fields = seen[-1].fields
        assert fields["status"] == "progress"
        assert fields["completed"] == 2 and fields["total"] == 4
        assert fields["rate"] == 2.0
        assert fields["eta_seconds"] == 1.0
