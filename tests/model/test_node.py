"""Unit tests for GridNode: queues, execution engine, predicates."""

import pytest

from repro.model.ce import CESpec, CPU_SLOT
from repro.model.contention import ContentionModel
from repro.model.node import GridNode, NodeSpec

from tests.conftest import (
    cpu_job,
    gpu_job,
    make_cpu,
    make_gpu,
    make_grid_node,
    make_node_spec,
)

NO_CONTENTION = ContentionModel(alpha=0.0)


class TestNodeSpec:
    def test_requires_cpu(self):
        with pytest.raises(ValueError):
            NodeSpec(node_id=0, ces=(make_gpu(),))

    def test_duplicate_slots_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(node_id=0, ces=(make_cpu(), make_cpu()))

    def test_accessors(self):
        spec = make_node_spec(3, gpus=[make_gpu(0)])
        assert spec.slots == (CPU_SLOT, "gpu0")
        assert spec.cpu.slot == CPU_SLOT
        assert spec.ce_spec("gpu0").dedicated
        assert spec.ce_spec("gpu9") is None


class TestPredicates:
    def test_capable_checks_all_requirements(self, env):
        node = make_grid_node(
            env, cpu=make_cpu(clock=2.0, memory=8, disk=100, cores=4)
        )
        assert node.capable(cpu_job(cores=4, clock=1.5, memory=8, disk=50))
        assert not node.capable(cpu_job(cores=5))
        assert not node.capable(cpu_job(clock=2.5))
        assert not node.capable(cpu_job(memory=16))
        assert not node.capable(cpu_job(disk=200))
        assert not node.capable(gpu_job())  # no GPU present

    def test_capable_gpu(self, env):
        node = make_grid_node(env, gpus=[make_gpu(0, clock=1.0, cores=128)])
        assert node.capable(gpu_job(gpu_cores=128))
        assert not node.capable(gpu_job(gpu_cores=256))
        assert not node.capable(gpu_job(slot_index=1))

    def test_free_and_acceptable(self, env):
        node = make_grid_node(env, cpu=make_cpu(cores=2), contention=NO_CONTENTION)
        job = cpu_job(cores=1, duration=100)
        assert node.is_free()
        assert node.is_acceptable(job)
        node.submit(cpu_job(cores=1, duration=100))
        # one core busy: not free, but still acceptable for a 1-core job
        assert not node.is_free()
        assert node.is_acceptable(job)
        node.submit(cpu_job(cores=1, duration=100))
        assert not node.is_acceptable(job)

    def test_acceptable_respects_fifo_queue(self, env):
        node = make_grid_node(env, cpu=make_cpu(cores=2), contention=NO_CONTENTION)
        node.submit(cpu_job(cores=2, duration=100))
        node.submit(cpu_job(cores=2, duration=100))  # waits in queue
        # a 1-core job could physically start, but FIFO order forbids it
        assert not node.is_acceptable(cpu_job(cores=1))

    def test_acceptable_idle_gpu_behind_busy_cpu(self, env):
        """The heterogeneity insight: a busy CPU hides an idle GPU only
        from schemes that cannot see per-CE state."""
        node = make_grid_node(
            env,
            cpu=make_cpu(cores=2),
            gpus=[make_gpu(0)],
            contention=NO_CONTENTION,
        )
        node.submit(cpu_job(cores=1, duration=100))
        assert not node.is_free()
        assert node.is_acceptable(gpu_job(gpu_cores=64))


class TestExecution:
    def test_job_runs_and_finishes(self, env):
        finished = []
        node = make_grid_node(
            env,
            contention=NO_CONTENTION,
            on_job_finished=lambda n, j: finished.append(j),
        )
        job = cpu_job(duration=50.0)
        node.submit(job)
        env.run()
        assert finished == [job]
        assert job.start_time == 0.0
        assert job.finish_time == 50.0
        assert job.wait_time == 0.0
        assert node.completed_jobs == 1
        assert node.is_free()

    def test_fifo_wait_time(self, env):
        node = make_grid_node(
            env, cpu=make_cpu(cores=1), contention=NO_CONTENTION
        )
        first = cpu_job(duration=100.0)
        second = cpu_job(duration=100.0)
        node.submit(first)
        node.submit(second)
        env.run()
        assert second.start_time == 100.0
        assert second.wait_time == 100.0

    def test_duration_scales_with_clock(self, env):
        node = make_grid_node(
            env, cpu=make_cpu(clock=2.0), contention=NO_CONTENTION
        )
        job = cpu_job(duration=100.0)
        node.submit(job)
        env.run()
        assert job.finish_time == pytest.approx(50.0)

    def test_multi_ce_job_occupies_both(self, env):
        node = make_grid_node(
            env,
            cpu=make_cpu(cores=2),
            gpus=[make_gpu(0, clock=1.0)],
            contention=NO_CONTENTION,
        )
        job = gpu_job(gpu_cores=64, duration=80.0)
        node.submit(job)
        assert node.ces["gpu0"].running == [job]
        assert node.ces[CPU_SLOT].cores_in_use == 1
        env.run()
        assert node.is_free()
        assert job.finish_time == pytest.approx(80.0)

    def test_gpu_jobs_serialize_on_dedicated_ce(self, env):
        node = make_grid_node(
            env,
            cpu=make_cpu(cores=8),
            gpus=[make_gpu(0)],
            contention=NO_CONTENTION,
        )
        a = gpu_job(gpu_cores=32, duration=60.0)
        b = gpu_job(gpu_cores=32, duration=60.0)
        node.submit(a)
        node.submit(b)
        env.run()
        assert a.start_time == 0.0
        assert b.start_time == 60.0  # dedicated CE runs one job at a time

    def test_cpu_and_gpu_jobs_coexist(self, env):
        node = make_grid_node(
            env,
            cpu=make_cpu(cores=2),
            gpus=[make_gpu(0)],
            contention=NO_CONTENTION,
        )
        g = gpu_job(duration=100.0)
        c = cpu_job(duration=100.0)
        node.submit(g)
        node.submit(c)
        # no cross-CE contention: both start immediately
        assert g.start_time == 0.0
        assert c.start_time == 0.0

    def test_submit_incapable_raises(self, env):
        node = make_grid_node(env)
        with pytest.raises(RuntimeError):
            node.submit(gpu_job())

    def test_head_of_line_blocking(self, env):
        node = make_grid_node(
            env, cpu=make_cpu(cores=4), contention=NO_CONTENTION
        )
        node.submit(cpu_job(cores=3, duration=100.0))
        big = cpu_job(cores=3, duration=10.0)
        small = cpu_job(cores=1, duration=10.0)
        node.submit(big)
        node.submit(small)
        env.run()
        # FIFO: small cannot overtake big even though a core was free
        assert big.start_time == 100.0
        assert small.start_time == 100.0  # starts alongside big (4 cores)

    def test_fail_loses_jobs(self, env):
        node = make_grid_node(
            env, cpu=make_cpu(cores=1), contention=NO_CONTENTION
        )
        running = cpu_job(duration=100.0)
        queued = cpu_job(duration=100.0)
        node.submit(running)
        node.submit(queued)
        lost = node.fail()
        assert set(j.job_id for j in lost) == {running.job_id, queued.job_id}
        env.run()
        assert running.finish_time is None
        with pytest.raises(RuntimeError):
            node.submit(cpu_job())

    def test_node_utilization_pools_all_ces(self, env):
        node = make_grid_node(
            env,
            cpu=make_cpu(cores=4),
            gpus=[make_gpu(0, cores=4)],
            contention=NO_CONTENTION,
        )
        node.submit(cpu_job(cores=2, duration=100.0))
        assert node.node_utilization() == pytest.approx(2 / 8)
