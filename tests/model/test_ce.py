"""Unit tests for computing elements."""

import pytest

from repro.model.ce import CESpec, ComputingElement, CPU_SLOT, gpu_slot

from tests.conftest import cpu_job, make_cpu, make_gpu


class TestCESpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CESpec(slot="", clock=1, memory=1, cores=1)
        with pytest.raises(ValueError):
            CESpec(slot="cpu", clock=0, memory=1, cores=1)
        with pytest.raises(ValueError):
            CESpec(slot="cpu", clock=1, memory=-1, cores=1)
        with pytest.raises(ValueError):
            CESpec(slot="cpu", clock=1, memory=1, cores=0)

    def test_attribute_access(self):
        spec = make_cpu(clock=2.0, memory=8.0, disk=100.0, cores=4)
        assert spec.attribute("clock") == 2.0
        assert spec.attribute("memory") == 8.0
        assert spec.attribute("disk") == 100.0
        assert spec.attribute("cores") == 4.0
        with pytest.raises(KeyError):
            spec.attribute("nope")

    def test_gpu_slot_names(self):
        assert gpu_slot(0) == "gpu0"
        assert gpu_slot(2) == "gpu2"
        with pytest.raises(ValueError):
            gpu_slot(-1)


class TestNonDedicatedCE:
    def test_can_host_by_free_cores(self):
        ce = ComputingElement(make_cpu(cores=4))
        assert ce.can_host(4)
        job = cpu_job(cores=3)
        ce.attach(job, 3)
        assert ce.can_host(1)
        assert not ce.can_host(2)

    def test_attach_detach_accounting(self):
        ce = ComputingElement(make_cpu(cores=4))
        j1, j2 = cpu_job(cores=2), cpu_job(cores=2)
        ce.attach(j1, 2)
        ce.attach(j2, 2)
        assert ce.free_cores == 0
        ce.detach(j1, 2)
        assert ce.free_cores == 2
        assert ce.running == [j2]

    def test_attach_over_capacity_raises(self):
        ce = ComputingElement(make_cpu(cores=2))
        ce.attach(cpu_job(cores=2), 2)
        with pytest.raises(RuntimeError):
            ce.attach(cpu_job(cores=1), 1)

    def test_utilization_score_equation2(self):
        # (required cores / total cores) / clock
        ce = ComputingElement(make_cpu(cores=4, clock=2.0))
        ce.attach(cpu_job(cores=2), 2)
        assert ce.utilization_score() == pytest.approx((2 / 4) / 2.0)

    def test_required_cores_counts_waiting(self):
        ce = ComputingElement(make_cpu(cores=4))
        ce.attach(cpu_job(cores=2), 2)
        ce.queue.append(cpu_job(cores=3))
        assert ce.required_cores() == 5


class TestDedicatedCE:
    def test_single_job_at_a_time(self):
        ce = ComputingElement(make_gpu(cores=128))
        from tests.conftest import gpu_job

        job = gpu_job(gpu_cores=64)
        assert ce.can_host(64)
        ce.attach(job, 64)
        # plenty of cores left, but the CE is dedicated
        assert not ce.can_host(1)

    def test_utilization_score_equation1(self):
        # job queue size / clock
        from tests.conftest import gpu_job

        ce = ComputingElement(make_gpu(clock=2.0))
        ce.attach(gpu_job(gpu_cores=32), 32)
        ce.queue.append(gpu_job(gpu_cores=32))
        assert ce.utilization_score() == pytest.approx(2 / 2.0)

    def test_idle(self):
        ce = ComputingElement(make_gpu())
        assert ce.idle
        from tests.conftest import gpu_job

        job = gpu_job()
        ce.attach(job, 64)
        assert not ce.idle
        ce.detach(job, 64)
        assert ce.idle

    def test_invalid_core_request(self):
        ce = ComputingElement(make_gpu())
        with pytest.raises(ValueError):
            ce.can_host(0)
