"""Unit tests for the contention model."""

import pytest

from repro.model.ce import ComputingElement
from repro.model.contention import ContentionModel

from tests.conftest import cpu_job, gpu_job, make_cpu, make_gpu


class TestContentionModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionModel(alpha=-0.1)
        with pytest.raises(ValueError):
            ContentionModel(max_factor=0.5)

    def test_no_corunners_no_slowdown(self):
        ce = ComputingElement(make_cpu(cores=4))
        assert ContentionModel(alpha=0.5).factor(ce) == 1.0

    def test_linear_in_corunners(self):
        model = ContentionModel(alpha=0.2, max_factor=10.0)
        ce = ComputingElement(make_cpu(cores=8))
        ce.attach(cpu_job(), 1)
        assert model.factor(ce) == pytest.approx(1.2)
        ce.attach(cpu_job(), 1)
        assert model.factor(ce) == pytest.approx(1.4)

    def test_capped_at_max_factor(self):
        model = ContentionModel(alpha=1.0, max_factor=2.0)
        ce = ComputingElement(make_cpu(cores=8))
        for _ in range(5):
            ce.attach(cpu_job(), 1)
        assert model.factor(ce) == 2.0

    def test_dedicated_ce_never_contends(self):
        model = ContentionModel(alpha=1.0)
        ce = ComputingElement(make_gpu())
        assert model.factor(ce) == 1.0

    def test_execution_time_scales_with_clock(self):
        model = ContentionModel(alpha=0.0)
        slow = ComputingElement(make_cpu(clock=1.0))
        fast = ComputingElement(make_cpu(clock=2.0))
        assert model.execution_time(100.0, slow) == pytest.approx(100.0)
        assert model.execution_time(100.0, fast) == pytest.approx(50.0)

    def test_execution_time_includes_contention(self):
        model = ContentionModel(alpha=0.5, max_factor=10.0)
        ce = ComputingElement(make_cpu(clock=1.0, cores=4))
        ce.attach(cpu_job(), 1)
        assert model.execution_time(100.0, ce) == pytest.approx(150.0)

    def test_invalid_duration(self):
        ce = ComputingElement(make_cpu())
        with pytest.raises(ValueError):
            ContentionModel().execution_time(0.0, ce)
