"""Unit tests for jobs and the dominant-CE rule."""

import pytest

from repro.model.ce import CPU_SLOT, gpu_slot
from repro.model.job import CERequirement, Job

from tests.conftest import cpu_job, gpu_job


class TestCERequirement:
    def test_defaults(self):
        req = CERequirement()
        assert req.cores == 1
        assert req.clock == req.memory == req.disk == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CERequirement(cores=0)
        with pytest.raises(ValueError):
            CERequirement(clock=-1)

    def test_demand_grows_with_cores_and_memory(self):
        low = CERequirement(cores=1, memory=1)
        high = CERequirement(cores=4, memory=8)
        assert high.demand() > low.demand()


class TestJob:
    def test_requires_at_least_one_slot(self):
        with pytest.raises(ValueError):
            Job(requirements={}, base_duration=10)

    def test_positive_duration(self):
        with pytest.raises(ValueError):
            cpu_job(duration=0)

    def test_unique_ids(self):
        assert cpu_job().job_id != cpu_job().job_id

    def test_dominant_slot_cpu_only(self):
        assert cpu_job().dominant_slot == CPU_SLOT

    def test_dominant_slot_is_gpu_for_gpu_jobs(self):
        job = gpu_job(gpu_cores=64)
        assert job.dominant_slot == gpu_slot(0)
        assert job.dominant_requirement.cores == 64

    def test_dominant_slot_picks_biggest_demand(self):
        job = Job(
            requirements={
                CPU_SLOT: CERequirement(cores=8, memory=32),
                gpu_slot(0): CERequirement(cores=1, memory=1),
            },
            base_duration=10,
        )
        assert job.dominant_slot == CPU_SLOT

    def test_dominant_tie_breaks_deterministically(self):
        job = Job(
            requirements={
                "gpu1": CERequirement(cores=4, memory=4),
                "gpu0": CERequirement(cores=4, memory=4),
            },
            base_duration=10,
        )
        assert job.dominant_slot == "gpu0"

    def test_cores_on(self):
        job = gpu_job(gpu_cores=64)
        assert job.cores_on(gpu_slot(0)) == 64
        assert job.cores_on(CPU_SLOT) == 1
        assert job.cores_on("gpu7") == 0

    def test_wait_time_lifecycle(self):
        job = cpu_job()
        assert job.wait_time is None
        job.enqueue_time = 10.0
        assert job.wait_time is None
        job.start_time = 25.0
        assert job.wait_time == 15.0

    def test_turnaround(self):
        job = cpu_job(submit_time=5.0)
        assert job.turnaround is None
        job.finish_time = 105.0
        assert job.turnaround == 100.0
