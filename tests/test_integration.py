"""Cross-module integration tests: the pieces composed end to end."""

import numpy as np
import pytest

from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import (
    ChurnConfig,
    ChurnSimulation,
    GridSimulation,
    MatchmakingConfig,
    jains_fairness,
)
from repro.workload import TINY_LOAD


class TestMatchmakingIntegration:
    @pytest.fixture(scope="class")
    def het_run(self):
        sim = GridSimulation(MatchmakingConfig(TINY_LOAD, scheme="can-het"))
        result = sim.run()
        return sim, result

    def test_every_started_job_ran_on_capable_node(self, het_run):
        sim, _ = het_run
        for job in sim.jobs:
            if job.run_node_id is not None:
                node = sim.grid_nodes[job.run_node_id]
                assert node.capable(job)

    def test_job_timeline_ordering(self, het_run):
        sim, _ = het_run
        for job in sim.jobs:
            if job.finish_time is None:
                continue
            assert job.submit_time <= job.enqueue_time <= job.start_time
            assert job.start_time < job.finish_time

    def test_execution_scaled_by_dominant_clock(self, het_run):
        sim, _ = het_run
        for job in sim.jobs:
            if job.finish_time is None:
                continue
            node = sim.grid_nodes[job.run_node_id]
            clock = node.dominant_clock(job)
            wall = job.finish_time - job.start_time
            # wall time in [base/clock, base/clock * max contention factor]
            base = job.base_duration / clock
            assert base - 1e-6 <= wall <= base * 2.5 + 1e-6

    def test_nodes_end_idle(self, het_run):
        sim, _ = het_run
        assert all(n.is_free() for n in sim.grid_nodes.values())

    def test_completed_matches_submitted(self, het_run):
        sim, result = het_run
        completed = sum(n.completed_jobs for n in sim.grid_nodes.values())
        assert completed == result.jobs_submitted - result.unplaced_jobs

    def test_load_reasonably_spread(self, het_run):
        sim, _ = het_run
        per_node = np.array(
            [n.completed_jobs for n in sim.grid_nodes.values()], dtype=float
        )
        assert jains_fairness(per_node) > 0.2

    def test_aggregation_ran_during_simulation(self, het_run):
        sim, _ = het_run
        assert sim.aggregation.rounds_run > 3


class TestChurnIntegration:
    def test_self_stabilization_after_churn_stops(self):
        """Run high churn, then a quiet tail: vanilla and adaptive converge
        back to zero broken links; compact keeps its scar tissue."""
        residual = {}
        for scheme in HeartbeatScheme:
            cfg = ChurnConfig(
                initial_nodes=60,
                gpu_slots=1,
                scheme=scheme,
                heartbeat_period=60.0,
                event_gap_mean=12.0,
                leave_mode="fail",
                duration=2_400.0,
            )
            sim = ChurnSimulation(cfg)
            sim.bootstrap_population()
            sim.env.process(sim._round_process(), name="rounds")
            sim.env.process(sim._event_process(), name="events")
            sim.env.run(until=cfg.duration)
            # quiet tail: ten more rounds with no churn at all
            t = sim.env.now
            for i in range(1, 11):
                sim.protocol.run_round(t + i * cfg.heartbeat_period)
            residual[scheme] = sim.protocol.count_broken_links()
        assert residual[HeartbeatScheme.VANILLA] == 0
        assert residual[HeartbeatScheme.ADAPTIVE] <= 2
        assert residual[HeartbeatScheme.COMPACT] >= max(
            residual[HeartbeatScheme.VANILLA],
            residual[HeartbeatScheme.ADAPTIVE],
        )

    def test_overlay_invariants_survive_protocol_churn(self):
        cfg = ChurnConfig(
            initial_nodes=50,
            gpu_slots=1,
            scheme=HeartbeatScheme.ADAPTIVE,
            heartbeat_period=60.0,
            event_gap_mean=20.0,
            duration=2_000.0,
        )
        sim = ChurnSimulation(cfg)
        sim.run()
        sim.overlay.check_invariants()

    def test_believed_tables_subset_sanity(self):
        """A believed entry either is a true neighbor, or a recently-changed
        or dead node awaiting timeout — never an arbitrary stranger with
        up-to-date state."""
        cfg = ChurnConfig(
            initial_nodes=50,
            gpu_slots=1,
            scheme=HeartbeatScheme.VANILLA,
            heartbeat_period=60.0,
            event_gap_mean=25.0,
            duration=1_800.0,
        )
        sim = ChurnSimulation(cfg)
        sim.run()
        overlay, proto = sim.overlay, sim.protocol
        for nid, pnode in proto.nodes.items():
            if not overlay.is_alive(nid):
                continue
            truth = overlay.neighbors(nid)
            for other in pnode.table.ids():
                if other in truth:
                    continue
                rec = pnode.table.get(other)
                current = (
                    proto.nodes[other].own_record(overlay)
                    if overlay.is_alive(other) and other in proto.nodes
                    else None
                )
                stale_or_dead = current is None or rec.version < current.version
                assert stale_or_dead, (
                    f"{nid} believes non-neighbor {other} with fresh state"
                )
