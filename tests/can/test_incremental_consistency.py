"""Property tests: incremental indexes equal their brute-force definitions.

The heartbeat engine resolves record relevance through the overlay's cached
leaf-adjacency index (``neighbor_set``) and counts broken links through
per-node caches keyed by neighborhood stamps.  Both must stay extensionally
equal to the quantities they replaced: pairwise geometric abutment of the
ground-truth zones, and a full rescan of believed tables against live
ground-truth neighbors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.geometry import any_abuts
from repro.can.heartbeat import (
    HeartbeatProtocol,
    HeartbeatScheme,
    ProtocolConfig,
)
from repro.can.overlay import CanOverlay, OverlayError
from repro.can.space import ResourceSpace


def _coord(rng, dims):
    return tuple(rng.random(dims) * 0.998 + 0.001)


class TestAdjacencyIndex:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_neighbor_set_equals_geometric_abutment(self, seed):
        """Under random churn (including deferred take-overs), the cached
        ``neighbor_set`` of every member — alive or dead-but-unclaimed —
        matches both a fresh adjacency walk and brute-force zone abutment."""
        rng = np.random.default_rng(seed)
        space = ResourceSpace(gpu_slots=0)
        overlay = CanOverlay(space)
        next_id = 0
        alive: list = []
        pending: list = []
        for _ in range(30):
            roll = rng.random()
            if not alive or len(alive) < 3 or roll < 0.5:
                try:
                    overlay.add_node(next_id, _coord(rng, space.dims))
                except OverlayError:
                    continue
                alive.append(next_id)
                next_id += 1
            elif roll < 0.7:
                overlay.graceful_leave(
                    alive.pop(int(rng.integers(len(alive))))
                )
            elif roll < 0.9 or not pending:
                victim = alive.pop(int(rng.integers(len(alive))))
                overlay.fail(victim)
                pending.append(victim)
            else:
                overlay.claim_zones(
                    pending.pop(int(rng.integers(len(pending))))
                )
            members = list(overlay.members)
            zones = {nid: overlay.zones_of(nid) for nid in members}
            for r in members:
                nset = overlay.neighbor_set(r)
                assert nset == overlay.neighbors(r)  # cache vs fresh walk
                brute = {
                    s
                    for s in members
                    if s != r and any_abuts(zones[s], zones[r])
                }
                assert nset == brute


def _brute_broken_links(proto: HeartbeatProtocol) -> int:
    """The pre-optimisation definition: full rescan, no caches."""
    overlay = proto.overlay
    total = 0
    for node_id, pnode in proto.nodes.items():
        if not overlay.is_alive(node_id):
            continue
        believed = pnode.table.ids()
        for nid in overlay.neighbors(node_id):
            if nid not in believed and overlay.is_alive(nid):
                total += 1
    return total


class TestBrokenLinkCount:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        scheme=st.sampled_from(
            [HeartbeatScheme.VANILLA, HeartbeatScheme.ADAPTIVE]
        ),
    )
    def test_count_matches_brute_force_under_churn(self, seed, scheme):
        rng = np.random.default_rng(seed)
        space = ResourceSpace(gpu_slots=0)
        overlay = CanOverlay(space)
        proto = HeartbeatProtocol(overlay, ProtocolConfig(scheme=scheme))
        proto.bootstrap(0, _coord(rng, space.dims))
        alive = [0]
        next_id = 1
        for _ in range(12):
            if proto.join(next_id, _coord(rng, space.dims), 0.0):
                alive.append(next_id)
            next_id += 1
        now = 0.0
        for _ in range(8):
            now += 60.0
            roll = rng.random()
            if roll < 0.4:
                if proto.join(next_id, _coord(rng, space.dims), now):
                    alive.append(next_id)
                next_id += 1
            elif roll < 0.7 and len(alive) > 4:
                proto.graceful_leave(
                    alive.pop(int(rng.integers(len(alive)))), now
                )
            elif len(alive) > 4:
                proto.fail(alive.pop(int(rng.integers(len(alive)))), now)
            proto.run_round(now)
            assert proto.count_broken_links() == _brute_broken_links(proto)
            # second call exercises the fully-cached path
            assert proto.count_broken_links() == _brute_broken_links(proto)
