"""Unit + property tests for zone geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.geometry import Zone


def unit_zone(d=2):
    return Zone([0.0] * d, [1.0] * d)


class TestZoneBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            Zone([0, 0], [1])
        with pytest.raises(ValueError):
            Zone([], [])
        with pytest.raises(ValueError):
            Zone([0, 1], [1, 1])  # empty extent

    def test_contains_half_open(self):
        z = unit_zone()
        assert z.contains((0.0, 0.0))
        assert z.contains((0.5, 0.999))
        assert not z.contains((1.0, 0.5))
        assert z.contains_closed((1.0, 1.0))

    def test_volume_and_extent(self):
        z = Zone([0, 0], [2, 3])
        assert z.volume() == 6.0
        assert z.extent(0) == 2.0
        assert z.extent(1) == 3.0
        assert z.center() == (1.0, 1.5)

    def test_dims_mismatch(self):
        with pytest.raises(ValueError):
            unit_zone(2).contains((0.5,))
        with pytest.raises(ValueError):
            unit_zone(2).abuts(unit_zone(3))


class TestAbutment:
    def test_face_sharing(self):
        a = Zone([0, 0], [1, 1])
        b = Zone([1, 0], [2, 1])
        assert a.abuts(b)
        assert b.abuts(a)
        assert a.touch_dimension(b) == 0
        assert a.direction_of(b, 0) == +1
        assert b.direction_of(a, 0) == -1

    def test_partial_face_overlap_counts(self):
        a = Zone([0, 0], [1, 1])
        b = Zone([1, 0.5], [2, 2])
        assert a.abuts(b)

    def test_corner_contact_does_not_count(self):
        a = Zone([0, 0], [1, 1])
        b = Zone([1, 1], [2, 2])
        assert not a.abuts(b)

    def test_separated_zones(self):
        a = Zone([0, 0], [1, 1])
        b = Zone([2, 0], [3, 1])
        assert not a.abuts(b)

    def test_overlapping_zones_do_not_abut(self):
        a = Zone([0, 0], [2, 2])
        b = Zone([1, 0], [3, 2])
        assert not a.abuts(b)
        assert a.overlaps(b)

    def test_touch_dimension_requires_abutment(self):
        a = Zone([0, 0], [1, 1])
        with pytest.raises(ValueError):
            a.touch_dimension(Zone([5, 5], [6, 6]))


class TestSplitMerge:
    def test_split_tiles_zone(self):
        z = Zone([0, 0], [2, 2])
        lo, hi = z.split(0, 0.5)
        assert lo == Zone([0, 0], [0.5, 2])
        assert hi == Zone([0.5, 0], [2, 2])
        assert lo.volume() + hi.volume() == pytest.approx(z.volume())
        assert lo.abuts(hi)

    def test_split_position_validation(self):
        z = unit_zone()
        with pytest.raises(ValueError):
            z.split(0, 0.0)
        with pytest.raises(ValueError):
            z.split(0, 1.0)
        with pytest.raises(ValueError):
            z.split(5, 0.5)

    def test_merge_restores_split(self):
        z = Zone([0, 1], [4, 3])
        lo, hi = z.split(1, 2.0)
        assert lo.merge(hi) == z
        assert hi.merge(lo) == z

    def test_merge_rejects_non_adjacent(self):
        a = Zone([0, 0], [1, 1])
        with pytest.raises(ValueError):
            a.merge(Zone([2, 0], [3, 1]))
        with pytest.raises(ValueError):
            a.merge(Zone([1, 1], [2, 2]))  # differs along two axes
        with pytest.raises(ValueError):
            a.merge(Zone([0, 0], [1, 1]))  # identical

    def test_hash_eq(self):
        assert unit_zone() == unit_zone()
        assert hash(unit_zone()) == hash(unit_zone())
        assert unit_zone() != Zone([0, 0], [1, 2])


# -- property-based -----------------------------------------------------------------

coords = st.floats(0.001, 0.999)


@settings(max_examples=200, deadline=None)
@given(
    dim=st.integers(0, 3),
    at=coords,
    point=st.tuples(coords, coords, coords, coords),
)
def test_split_preserves_containment(dim, at, point):
    """Any point of the parent lands in exactly one half."""
    z = Zone([0.0] * 4, [1.0] * 4)
    lo, hi = z.split(dim, at)
    assert lo.contains(point) != hi.contains(point)


@settings(max_examples=200, deadline=None)
@given(
    dim=st.integers(0, 2),
    at=coords,
)
def test_split_merge_roundtrip(dim, at):
    z = Zone([0.0] * 3, [1.0] * 3)
    lo, hi = z.split(dim, at)
    assert lo.merge(hi) == z
    assert lo.abuts(hi)
    assert lo.touch_dimension(hi) == dim


@settings(max_examples=100, deadline=None)
@given(
    a_lo=st.tuples(coords, coords),
    b_lo=st.tuples(coords, coords),
    ext=st.tuples(st.floats(0.01, 0.5), st.floats(0.01, 0.5)),
)
def test_abuts_is_symmetric(a_lo, b_lo, ext):
    a = Zone(a_lo, [x + e for x, e in zip(a_lo, ext)])
    b = Zone(b_lo, [x + e for x, e in zip(b_lo, ext)])
    assert a.abuts(b) == b.abuts(a)
