"""Shared harness for the heartbeat accounting-neutrality goldens.

The perf work on the heartbeat engine must be *accounting-neutral*: a
seeded churn run has to produce byte-identical message counters and JSONL
traces before and after any optimisation.  This module runs small
fig7/fig8-shaped churn scenarios and reduces each to a JSON-serialisable
fingerprint; ``tests/can/goldens/heartbeat_accounting.json`` pins the
fingerprints produced by the pre-optimisation engine, and
``test_heartbeat_goldens.py`` re-runs the scenarios against them.

Regenerate (only when a *deliberate* protocol change alters the numbers)::

    PYTHONPATH=src python tests/can/hb_golden.py
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict

from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import ChurnSimulation
from repro.gridsim.config import ChurnConfig
from repro.obs.events import Tracer
from repro.obs.trace import JsonlTraceWriter

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "goldens", "heartbeat_accounting.json"
)

#: (name, config kwargs) — one high-churn fig7 shape and one sparser,
#: larger-population fig8 shape, each small enough for the test suite
CASES = {
    "fig7": dict(
        initial_nodes=40, event_gap_mean=15.0, duration=1_800.0
    ),
    "fig8": dict(
        initial_nodes=60, event_gap_mean=120.0, duration=900.0
    ),
}

SCHEMES = [
    HeartbeatScheme.VANILLA,
    HeartbeatScheme.COMPACT,
    HeartbeatScheme.ADAPTIVE,
]


def run_case(
    case: str,
    scheme: HeartbeatScheme,
    seed: int = 20110926,
    engine: str = "object",
) -> Dict[str, Any]:
    """One seeded churn run reduced to its accounting fingerprint.

    Both engines must reproduce the same fingerprint: the goldens were
    produced by the object engine and the array engine is pinned to them.
    """
    config = ChurnConfig(scheme=scheme, seed=seed, engine=engine, **CASES[case])
    fd, trace_path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    try:
        with JsonlTraceWriter(trace_path) as writer:
            tracer = Tracer()
            tracer.subscribe(writer)
            sim = ChurnSimulation(config, tracer=tracer)
            result = sim.run()
        with open(trace_path, "rb") as fh:
            trace_sha = hashlib.sha256(fh.read()).hexdigest()
    finally:
        os.unlink(trace_path)
    stats = sim.protocol.stats
    return {
        "count": {t.value: stats.count[t] for t in sorted(stats.count, key=lambda t: t.value)},
        "bytes": {t.value: stats.bytes[t] for t in sorted(stats.bytes, key=lambda t: t.value)},
        "events": dict(sim.protocol.events),
        "final_population": result.final_population,
        "broken_links_sum": int(sum(result.broken_links_values)),
        "broken_links_last": int(result.broken_links_values[-1]),
        "trace_sha256": trace_sha,
    }


def run_all(seed: int = 20110926) -> Dict[str, Any]:
    return {
        f"{case}.{scheme.value}": run_case(case, scheme, seed)
        for case in CASES
        for scheme in SCHEMES
    }


if __name__ == "__main__":
    payload = run_all()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")
