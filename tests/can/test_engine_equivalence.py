"""Property test: the object and array heartbeat engines are equivalent.

Drives random join/leave/fail/round sequences through both engines with
identical seeds and asserts the full observable protocol state matches:
message counts and byte volumes, protocol events, detected failures,
take-over outcomes (the alive set and final believed tables, freshness
included), and the broken-link count.  The seeded goldens pin the engines
to the committed reference numbers; this test covers the operation
sequences the goldens' two churn shapes never reach.
"""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.heartbeat import HeartbeatScheme, ProtocolConfig
from repro.can.overlay import CanOverlay
from repro.can.soa import EdgeStore, build_protocol
from repro.can.space import ResourceSpace

INITIAL_NODES = 8

op = st.tuples(
    st.sampled_from(["round", "round", "join", "fail", "leave"]),
    st.integers(min_value=0, max_value=2**31 - 1),
)


def run_engine(engine: str, scheme: HeartbeatScheme, ops):
    space = ResourceSpace(gpu_slots=1)
    overlay = CanOverlay(space)
    proto = build_protocol(
        overlay,
        ProtocolConfig(scheme=scheme, period=60.0),
        engine=engine,
    )
    if engine == "array":
        # tiny capacities so every example reallocates the store's arrays
        # (regression: closures must not hold pre-growth array objects)
        proto.store = EdgeStore(slot_capacity=4, row_capacity=4)
    rng = np.random.default_rng(20110926)
    ids = itertools.count()

    def coord():
        return space.clamp_point(rng.random(space.dims))

    proto.bootstrap(next(ids), coord())
    for _ in range(INITIAL_NODES - 1):
        proto.join(next(ids), coord(), now=0.0)
    now = 0.0
    for kind, r in ops:
        if kind == "round":
            now += 60.0
            proto.run_round(now)
            continue
        now += 1.0
        if kind == "join":
            proto.join(next(ids), coord(), now=now)
            continue
        alive = sorted(overlay.alive_ids())
        if len(alive) <= 4:
            continue  # keep the population claimable
        victim = alive[r % len(alive)]
        if kind == "fail":
            proto.fail(victim, now)
        else:
            proto.graceful_leave(victim, now)
    # drain in-flight failures through detection and take-over
    for _ in range(4):
        now += 60.0
        proto.run_round(now)
    return proto, overlay


def fingerprint(proto, overlay):
    return {
        "count": {t.value: c for t, c in proto.stats.count.items()},
        "bytes": {t.value: c for t, c in proto.stats.bytes.items()},
        "events": dict(proto.events),
        "detected": sorted(proto._detected_failures),
        "alive": sorted(overlay.alive_ids()),
        "broken": proto.count_broken_links(),
        "tables": {
            nid: {
                rec.node_id: (
                    rec.version,
                    rec.zones,
                    node.table.last_heard(rec.node_id),
                )
                for rec in node.table.records()
            }
            for nid, node in proto.nodes.items()
        },
    }


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(op, max_size=14),
    scheme=st.sampled_from(list(HeartbeatScheme)),
)
def test_engines_equivalent_under_random_churn(ops, scheme):
    obj = fingerprint(*run_engine("object", scheme, ops))
    arr = fingerprint(*run_engine("array", scheme, ops))
    for key in obj:
        assert obj[key] == arr[key], f"{key} diverged between engines"
    assert obj == arr
