"""Unit tests for the resource-to-coordinate mapping."""

import pytest

from repro.can.space import ResourceSpace
from repro.model.ce import CPU_SLOT

from tests.conftest import cpu_job, gpu_job, make_cpu, make_gpu, make_node_spec


class TestDimensionLayout:
    @pytest.mark.parametrize(
        "gpu_slots,expected_dims", [(0, 5), (1, 8), (2, 11), (3, 14)]
    )
    def test_paper_dimension_counts(self, gpu_slots, expected_dims):
        """Section III-A: 5-d for CPU-only, +3 per GPU slot, 11-d for 2 GPUs."""
        assert ResourceSpace(gpu_slots=gpu_slots).dims == expected_dims

    def test_virtual_is_last(self):
        space = ResourceSpace(gpu_slots=2)
        assert space.labels()[-1] == "virtual"
        assert space.virtual_index == 10
        assert space.dimensions[space.virtual_index].is_virtual

    def test_labels(self):
        space = ResourceSpace(gpu_slots=1)
        assert space.labels() == (
            "cpu.clock",
            "cpu.memory",
            "cpu.disk",
            "cpu.cores",
            "gpu0.clock",
            "gpu0.memory",
            "gpu0.cores",
            "virtual",
        )

    def test_slots(self):
        assert ResourceSpace(gpu_slots=2).slots() == ("cpu", "gpu0", "gpu1")

    def test_negative_gpu_slots(self):
        with pytest.raises(ValueError):
            ResourceSpace(gpu_slots=-1)


class TestNodeCoordinates:
    def test_all_dims_in_unit_box(self):
        space = ResourceSpace(gpu_slots=2)
        spec = make_node_spec(
            0, cpu=make_cpu(clock=3.0, memory=32, disk=1000, cores=8),
            gpus=[make_gpu(0, clock=2.0, memory=4, cores=512)],
        )
        coord = space.node_coordinate(spec, virtual=0.3)
        assert len(coord) == 11
        assert all(0.0 <= c < 1.0 for c in coord)
        assert coord[-1] == 0.3

    def test_missing_gpu_maps_to_zero(self):
        space = ResourceSpace(gpu_slots=2)
        spec = make_node_spec(0)  # CPU only
        coord = space.node_coordinate(spec, virtual=0.5)
        gpu_dims = [d.index for d in space.dimensions if d.slot.startswith("gpu")]
        assert all(coord[i] == 0.0 for i in gpu_dims)

    def test_monotone_in_capability(self):
        space = ResourceSpace(gpu_slots=0)
        weak = space.node_coordinate(
            make_node_spec(0, cpu=make_cpu(clock=1.0, memory=2)), 0.5
        )
        strong = space.node_coordinate(
            make_node_spec(1, cpu=make_cpu(clock=3.0, memory=32)), 0.5
        )
        clock_dim = space.dimension("cpu.clock").index
        mem_dim = space.dimension("cpu.memory").index
        assert strong[clock_dim] > weak[clock_dim]
        assert strong[mem_dim] > weak[mem_dim]

    def test_values_above_bound_clip(self):
        space = ResourceSpace(gpu_slots=0)
        spec = make_node_spec(0, cpu=make_cpu(clock=100.0))
        coord = space.node_coordinate(spec, 0.0)
        assert coord[0] < 1.0  # clipped, still inside the box

    def test_virtual_range_validated(self):
        space = ResourceSpace(gpu_slots=0)
        with pytest.raises(ValueError):
            space.node_coordinate(make_node_spec(0), 1.0)


class TestJobCoordinates:
    def test_unspecified_requirements_map_to_origin(self):
        space = ResourceSpace(gpu_slots=2)
        coord = space.job_coordinate(cpu_job(), virtual=0.0)
        assert all(c == 0.0 for c in coord)

    def test_specified_requirements_shift_coordinate(self):
        space = ResourceSpace(gpu_slots=0)
        loose = space.job_coordinate(cpu_job(), 0.1)
        tight = space.job_coordinate(cpu_job(clock=2.0, memory=16), 0.1)
        clock_dim = space.dimension("cpu.clock").index
        mem_dim = space.dimension("cpu.memory").index
        assert tight[clock_dim] > loose[clock_dim]
        assert tight[mem_dim] > loose[mem_dim]

    def test_node_meets_job_iff_coordinatewise_dominates(self):
        """The CAN's core invariant: capability ⟺ coordinate dominance
        (for fully-specified requirements on present CEs)."""
        space = ResourceSpace(gpu_slots=0)
        spec = make_node_spec(
            0, cpu=make_cpu(clock=2.0, memory=8, disk=100, cores=4)
        )
        node_coord = space.node_coordinate(spec, 0.9)
        job = cpu_job(cores=2, clock=1.0, memory=4, disk=50)
        job_coord = space.job_coordinate(job, 0.0)
        real_dims = range(space.dims - 1)
        assert all(node_coord[i] >= job_coord[i] for i in real_dims)

    def test_single_core_requirement_is_unconstrained(self):
        # cores=1 means "any CPU" — maps to 0 so every node qualifies
        space = ResourceSpace(gpu_slots=0)
        coord = space.job_coordinate(cpu_job(cores=1), 0.0)
        cores_dim = space.dimension("cpu.cores").index
        assert coord[cores_dim] == 0.0


class TestClampPoint:
    def test_interior_points_pass_through(self):
        space = ResourceSpace(gpu_slots=0)
        point = (0.1, 0.5, 0.0, 0.25, 0.999)
        assert space.clamp_point(point) == point

    def test_boundary_pulled_inside_half_open_zones(self):
        # zones are half-open [lo, hi): exactly 1.0 belongs to no zone
        space = ResourceSpace(gpu_slots=0)
        clamped = space.clamp_point((1.0,) * space.dims)
        assert all(c < 1.0 for c in clamped)
        assert all(c >= 1.0 - 1e-8 for c in clamped)
