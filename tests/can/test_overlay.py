"""Unit + property tests for the authoritative CAN overlay."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.overlay import CanOverlay, OverlayError
from repro.can.space import ResourceSpace

from tests.conftest import build_overlay


def random_coords(n, dims, seed=0):
    rng = np.random.default_rng(seed)
    return [tuple(rng.random(dims) * 0.998 + 0.001) for _ in range(n)]


def grown_overlay(n=30, gpu_slots=0, seed=0) -> CanOverlay:
    space = ResourceSpace(gpu_slots=gpu_slots)
    overlay = CanOverlay(space)
    for i, coord in enumerate(random_coords(n, space.dims, seed)):
        overlay.add_node(i, coord)
    return overlay


class TestJoin:
    def test_bootstrap_owns_everything(self):
        overlay = build_overlay([(0.5,) * 5])
        assert overlay.size == 1
        assert overlay.locate_owner((0.9,) * 5) == 0
        overlay.check_invariants()

    def test_join_splits_containing_zone(self):
        overlay = build_overlay([(0.2,) * 5, (0.8,) * 5])
        assert overlay.size == 2
        assert overlay.locate_owner((0.1,) * 5) == 0
        assert overlay.locate_owner((0.9,) * 5) == 1
        overlay.check_invariants()

    def test_zone_contains_own_coordinate(self):
        overlay = grown_overlay(40)
        for nid in overlay.alive_ids():
            coord = overlay.coordinate(nid)
            assert any(
                z.contains_closed(coord) for z in overlay.zones_of(nid)
            ), f"node {nid} lost its coordinate"

    def test_duplicate_id_rejected(self):
        overlay = build_overlay([(0.5,) * 5])
        with pytest.raises(OverlayError):
            overlay.add_node(0, (0.1,) * 5)

    def test_wrong_dims_rejected(self):
        overlay = build_overlay([(0.5,) * 5])
        with pytest.raises(OverlayError):
            overlay.add_node(1, (0.5, 0.5))

    def test_identical_coordinates_rejected(self):
        overlay = build_overlay([(0.5,) * 5])
        with pytest.raises(OverlayError):
            overlay.add_node(1, (0.5,) * 5)

    def test_neighbors_symmetric(self):
        overlay = grown_overlay(50)
        for nid in overlay.alive_ids():
            for other in overlay.neighbors(nid):
                assert nid in overlay.neighbors(other)

    def test_neighbors_along_directionality(self):
        overlay = grown_overlay(30)
        for nid in overlay.alive_ids():
            for dim in range(overlay.space.dims):
                plus = overlay.neighbors_along(nid, dim, +1)
                for other in plus:
                    # reverse direction must see us
                    assert nid in overlay.neighbors_along(other, dim, -1)

    def test_neighbors_union_over_dims(self):
        overlay = grown_overlay(25)
        for nid in overlay.alive_ids():
            via_dims = set()
            for dim in range(overlay.space.dims):
                via_dims |= overlay.neighbors_along(nid, dim, +1)
                via_dims |= overlay.neighbors_along(nid, dim, -1)
            assert via_dims == overlay.neighbors(nid)


class TestLeaveAndClaim:
    def test_graceful_leave_transfers_zones(self):
        overlay = grown_overlay(20)
        victim = 7
        transfers = overlay.graceful_leave(victim)
        assert transfers, "zones must be handed off"
        assert all(t.from_node == victim for t in transfers)
        assert victim not in overlay.members
        overlay.check_invariants()

    def test_leave_all_but_one(self):
        overlay = grown_overlay(10)
        for nid in range(9):
            overlay.graceful_leave(nid)
            overlay.check_invariants()
        assert overlay.size == 1
        # the survivor owns the whole space again
        assert overlay.locate_owner((0.5,) * 5) == 9

    def test_fail_keeps_ghost_until_claim(self):
        overlay = grown_overlay(15)
        overlay.fail(3)
        assert not overlay.is_alive(3)
        assert 3 in overlay.members
        transfers = overlay.claim_zones(3)
        assert transfers
        assert 3 not in overlay.members
        overlay.check_invariants()

    def test_double_fail_rejected(self):
        overlay = grown_overlay(5)
        overlay.fail(0)
        with pytest.raises(OverlayError):
            overlay.fail(0)

    def test_claim_requires_failure(self):
        overlay = grown_overlay(5)
        with pytest.raises(OverlayError):
            overlay.claim_zones(0)

    def test_join_into_dead_zone_deferred(self):
        overlay = grown_overlay(5)
        victim = overlay.locate_owner((0.5,) * 5)
        overlay.fail(victim)
        with pytest.raises(OverlayError):
            overlay.add_node(99, (0.5,) * 5)

    def test_claims_exclude_dead_claimants(self):
        overlay = grown_overlay(20, seed=5)
        overlay.fail(1)
        overlay.fail(2)
        t1 = overlay.claim_zones(1)
        assert all(t.to_node != 2 for t in t1)
        t2 = overlay.claim_zones(2)
        assert all(overlay.is_alive(t.to_node) for t in t2)
        overlay.check_invariants()

    def test_takeover_targets_alive(self):
        overlay = grown_overlay(20)
        for nid in overlay.alive_ids():
            targets = overlay.takeover_targets(nid)
            assert targets
            assert nid not in targets
            assert all(overlay.is_alive(t) for t in targets)


class TestChurnInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_churn_preserves_partition(self, seed):
        rng = np.random.default_rng(seed)
        space = ResourceSpace(gpu_slots=0)
        overlay = CanOverlay(space)
        next_id = 0
        alive = []
        for _ in range(60):
            do_join = not alive or len(alive) < 3 or rng.random() < 0.55
            if do_join:
                coord = tuple(rng.random(space.dims) * 0.998 + 0.001)
                try:
                    overlay.add_node(next_id, coord)
                except OverlayError:
                    continue
                alive.append(next_id)
                next_id += 1
            else:
                victim = alive.pop(int(rng.integers(len(alive))))
                if rng.random() < 0.5:
                    overlay.graceful_leave(victim)
                else:
                    overlay.fail(victim)
                    overlay.claim_zones(victim)
            overlay.check_invariants()
        assert overlay.size == len(alive)
