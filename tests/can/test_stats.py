"""Unit tests for message-cost accounting."""

import pytest

from repro.can.messages import MessageType
from repro.can.stats import MessageStats


class TestMessageStats:
    def test_record_and_totals(self):
        s = MessageStats()
        s.record(MessageType.HEARTBEAT, 100, copies=3)
        s.record(MessageType.HEARTBEAT_FULL, 1000)
        msgs, vol = s.totals()
        assert msgs == 4
        assert vol == 1300

    def test_negative_rejected(self):
        s = MessageStats()
        with pytest.raises(ValueError):
            s.record(MessageType.HEARTBEAT, -1)
        with pytest.raises(ValueError):
            s.record(MessageType.HEARTBEAT, 1, copies=-1)

    def test_zero_copies_noop(self):
        s = MessageStats()
        s.record(MessageType.HEARTBEAT, 500, copies=0)
        assert s.totals() == (0, 0)

    def test_rates_per_node_minute(self):
        s = MessageStats()
        s.track_population(0.0, 10)
        s.record(MessageType.HEARTBEAT, 1024, copies=20)
        rates = s.rates(now=60.0)  # 10 nodes for 1 minute
        assert rates.node_minutes == pytest.approx(10.0)
        assert rates.messages_per_node_minute == pytest.approx(2.0)
        assert rates.kbytes_per_node_minute == pytest.approx(2.0)
        assert rates.by_type == {"heartbeat": pytest.approx(2.0)}

    def test_population_changes_integrate(self):
        s = MessageStats()
        s.track_population(0.0, 10)
        s.track_population(30.0, 20)  # 10 nodes for 30s, then 20
        s.record(MessageType.HEARTBEAT, 0, copies=15)
        rates = s.rates(now=60.0)
        assert rates.node_minutes == pytest.approx((10 * 30 + 20 * 30) / 60)

    def test_empty_window_returns_zero_rates(self):
        s = MessageStats()
        s.track_population(0.0, 5)
        s.record(MessageType.HEARTBEAT, 100, copies=2)
        rates = s.rates(now=0.0)
        assert rates.messages_per_node_minute == 0.0
        assert rates.kbytes_per_node_minute == 0.0
        assert rates.node_minutes == 0.0
        assert rates.window_seconds == 0.0
        assert rates.by_type == {}

    def test_record_bulk_matches_per_sender_records(self):
        a, b = MessageStats(), MessageStats()
        sizes = [(100, 3), (250, 2), (80, 0)]
        for size, copies in sizes:
            a.record(MessageType.HEARTBEAT, size, copies=copies)
        b.record_bulk(
            MessageType.HEARTBEAT,
            sum(s * c for s, c in sizes),
            sum(c for _, c in sizes),
        )
        assert a.count == b.count
        assert a.bytes == b.bytes
        with pytest.raises(ValueError):
            b.record_bulk(MessageType.HEARTBEAT, -1, 1)

    def test_reset_window(self):
        s = MessageStats()
        s.track_population(0.0, 10)
        s.record(MessageType.JOIN_NOTIFY, 10, copies=100)
        s.reset_window(100.0, 10)
        s.record(MessageType.HEARTBEAT, 10, copies=5)
        rates = s.rates(now=160.0)
        msgs, _ = s.totals()
        assert msgs == 5  # pre-reset messages dropped
        assert rates.window_seconds == pytest.approx(60.0)

    def test_time_backwards_rejected(self):
        s = MessageStats()
        s.track_population(10.0, 5)
        with pytest.raises(ValueError):
            s.track_population(5.0, 5)
