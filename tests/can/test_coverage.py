"""Unit + property tests for the zone-face coverage detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.coverage import (
    Face,
    face_of,
    find_gaps,
    uncovered_fraction,
    union_measure,
)
from repro.can.geometry import Zone
from repro.can.overlay import CanOverlay
from repro.can.space import ResourceSpace


class TestUnionMeasure:
    def test_empty(self):
        assert union_measure([], (((0, 1)),) * 2) == 0.0

    def test_single_covering_box(self):
        region = ((0.0, 1.0), (0.0, 2.0))
        assert union_measure([region], region) == pytest.approx(2.0)

    def test_partial_cover(self):
        region = ((0.0, 1.0), (0.0, 1.0))
        box = ((0.0, 0.5), (0.0, 1.0))
        assert union_measure([box], region) == pytest.approx(0.5)

    def test_overlapping_boxes_not_double_counted(self):
        region = ((0.0, 1.0),)
        boxes = [((0.0, 0.6),), ((0.4, 1.0),)]
        assert union_measure(boxes, region) == pytest.approx(1.0)

    def test_disjoint_boxes_sum(self):
        region = ((0.0, 1.0), (0.0, 1.0))
        boxes = [((0.0, 0.25), (0.0, 1.0)), ((0.5, 0.75), (0.0, 1.0))]
        assert union_measure(boxes, region) == pytest.approx(0.5)

    def test_three_dims(self):
        region = ((0.0, 1.0),) * 3
        boxes = [((0.0, 1.0), (0.0, 1.0), (0.0, 0.5))]
        assert union_measure(boxes, region) == pytest.approx(0.5)

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(0, 0.9), st.floats(0.05, 1.0),
                st.floats(0, 0.9), st.floats(0.05, 1.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_monte_carlo_agreement(self, data):
        """Union measure agrees with Monte-Carlo sampling in 2-D."""
        boxes = []
        for x0, dx, y0, dy in data:
            boxes.append(((x0, min(1.0, x0 + dx)), (y0, min(1.0, y0 + dy))))
        region = ((0.0, 1.0), (0.0, 1.0))
        exact = union_measure(boxes, region)
        rng = np.random.default_rng(0)
        pts = rng.random((4000, 2))
        hits = np.zeros(len(pts), dtype=bool)
        for (xl, xh), (yl, yh) in boxes:
            hits |= (
                (pts[:, 0] >= xl) & (pts[:, 0] <= xh)
                & (pts[:, 1] >= yl) & (pts[:, 1] <= yh)
            )
        assert exact == pytest.approx(hits.mean(), abs=0.05)


class TestFaces:
    def test_face_of(self):
        zone = Zone([0, 0, 0], [1, 2, 3])
        face = face_of(zone, 1, +1)
        assert face.plane == 2.0
        assert face.box == ((0.0, 1.0), (0.0, 3.0))
        assert face.area() == pytest.approx(3.0)

    def test_validation(self):
        zone = Zone([0, 0], [1, 1])
        with pytest.raises(ValueError):
            face_of(zone, 0, 0)
        with pytest.raises(ValueError):
            face_of(zone, 5, 1)

    def test_uncovered_fraction_simple(self):
        zone = Zone([0, 0], [1, 1])
        face = face_of(zone, 0, +1)  # the x=1 edge
        half = Zone([1, 0], [2, 0.5])
        assert uncovered_fraction(face, [half]) == pytest.approx(0.5)
        full = Zone([1, 0], [2, 1])
        assert uncovered_fraction(face, [full]) == pytest.approx(0.0)
        wrong_side = Zone([2, 0], [3, 1])
        assert uncovered_fraction(face, [wrong_side]) == pytest.approx(1.0)


class TestFindGaps:
    def _overlay(self, n=30, gpu_slots=0, seed=1):
        space = ResourceSpace(gpu_slots=gpu_slots)
        overlay = CanOverlay(space)
        rng = np.random.default_rng(seed)
        for i in range(n):
            overlay.add_node(i, tuple(rng.random(space.dims) * 0.998 + 0.001))
        return overlay

    @pytest.mark.parametrize("gpu_slots", [0, 1, 2])
    def test_complete_tables_have_no_gaps(self, gpu_slots):
        overlay = self._overlay(25, gpu_slots)
        dims = overlay.space.dims
        lo, hi = [0.0] * dims, [1.0] * dims
        for nid in overlay.alive_ids():
            nbrs = [
                z
                for other in overlay.neighbors(nid)
                for z in overlay.zones_of(other)
            ]
            assert not find_gaps(overlay.zones_of(nid), nbrs, lo, hi)

    def test_missing_neighbor_detected(self):
        overlay = self._overlay(25)
        dims = overlay.space.dims
        lo, hi = [0.0] * dims, [1.0] * dims
        misses = 0
        for nid in overlay.alive_ids():
            neighbors = sorted(overlay.neighbors(nid))
            for victim in neighbors[:2]:
                reduced = [
                    z
                    for other in neighbors
                    if other != victim
                    for z in overlay.zones_of(other)
                ]
                if not find_gaps(overlay.zones_of(nid), reduced, lo, hi):
                    misses += 1
        assert misses == 0  # the detector is exact given true zones

    def test_stale_zone_hides_gap(self):
        """The detector's honest failure mode: a stale believed zone that
        (wrongly) covers the vacated area suppresses detection."""
        zone = Zone([0.0, 0.0], [0.5, 1.0])
        true_neighbor = Zone([0.5, 0.0], [1.0, 0.5])  # covers only half
        stale = Zone([0.5, 0.0], [1.0, 1.0])  # old, larger zone
        gaps_with_truth = find_gaps([zone], [true_neighbor], [0, 0], [1, 1])
        assert gaps_with_truth  # half the face is uncovered
        gaps_with_stale = find_gaps([zone], [stale], [0, 0], [1, 1])
        assert not gaps_with_stale  # stale record masks it

    def test_outer_boundary_ignored(self):
        zone = Zone([0.0, 0.0], [1.0, 1.0])
        assert not find_gaps([zone], [], [0, 0], [1, 1])


class TestProtocolIntegration:
    def test_coverage_mode_matches_oracle_on_quiet_network(self):
        from tests.can.test_heartbeat import build_protocol, run_rounds
        from repro.can.heartbeat import HeartbeatScheme

        for detection in ("coverage", "oracle"):
            proto = build_protocol(
                14, HeartbeatScheme.ADAPTIVE, detection=detection
            )
            run_rounds(proto, 3)
            assert proto.count_broken_links() == 0
            for nid in proto.nodes:
                assert not proto._detects_gap(nid)

    def test_coverage_detects_manual_break(self):
        from tests.can.test_heartbeat import build_protocol
        from repro.can.heartbeat import HeartbeatScheme

        proto = build_protocol(
            14, HeartbeatScheme.ADAPTIVE, detection="coverage"
        )
        a = sorted(proto.nodes)[0]
        victim = sorted(proto.nodes[a].table.ids())[0]
        proto.nodes[a].table.remove(victim)
        assert proto._detects_gap(a)
