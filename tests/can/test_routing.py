"""Unit tests for greedy CAN routing."""

import numpy as np
import pytest

from repro.can.geometry import Zone
from repro.can.overlay import CanOverlay
from repro.can.routing import RoutingError, route, zone_distance
from repro.can.space import ResourceSpace


def grown_overlay(n=40, seed=0):
    space = ResourceSpace(gpu_slots=0)
    overlay = CanOverlay(space)
    rng = np.random.default_rng(seed)
    for i in range(n):
        overlay.add_node(i, tuple(rng.random(space.dims) * 0.998 + 0.001))
    return overlay


class TestZoneDistance:
    def test_inside_is_zero(self):
        z = Zone([0, 0], [1, 1])
        assert zone_distance(z, (0.5, 0.5)) == 0.0
        assert zone_distance(z, (0.0, 1.0)) == 0.0  # boundary

    def test_outside_distance(self):
        z = Zone([0, 0], [1, 1])
        assert zone_distance(z, (2.0, 0.5)) == pytest.approx(1.0)
        assert zone_distance(z, (2.0, 2.0)) == pytest.approx(np.sqrt(2))

    def test_dims_mismatch(self):
        with pytest.raises(ValueError):
            zone_distance(Zone([0], [1]), (0.5, 0.5))


class TestRoute:
    def test_route_reaches_owner(self):
        overlay = grown_overlay(40)
        rng = np.random.default_rng(1)
        for _ in range(25):
            point = tuple(rng.random(overlay.space.dims) * 0.998)
            start = int(rng.integers(overlay.size))
            path = route(overlay, start, point)
            assert path[0] == start
            assert path[-1] == overlay.locate_owner(point)

    def test_route_from_owner_is_trivial(self):
        overlay = grown_overlay(10)
        point = (0.5,) * overlay.space.dims
        owner = overlay.locate_owner(point)
        assert route(overlay, owner, point) == [owner]

    def test_path_has_no_cycles(self):
        overlay = grown_overlay(60, seed=3)
        rng = np.random.default_rng(2)
        for _ in range(15):
            point = tuple(rng.random(overlay.space.dims) * 0.998)
            start = int(rng.integers(overlay.size))
            path = route(overlay, start, point)
            assert len(path) == len(set(path))

    def test_hop_budget_enforced(self):
        overlay = grown_overlay(30)
        with pytest.raises(RoutingError):
            route(overlay, 0, (0.999,) * overlay.space.dims, max_hops=0)


class TestBeliefRouting:
    def _protocol(self, n=30, scheme=None, seed=4):
        import numpy as np
        from repro.can.heartbeat import (
            HeartbeatProtocol,
            HeartbeatScheme,
            ProtocolConfig,
        )
        from repro.can.routing import route_on_beliefs

        space = ResourceSpace(gpu_slots=0)
        overlay = CanOverlay(space)
        proto = HeartbeatProtocol(
            overlay,
            ProtocolConfig(scheme=scheme or HeartbeatScheme.VANILLA),
        )
        rng = np.random.default_rng(seed)
        coords = [tuple(rng.random(space.dims) * 0.998 + 0.001) for _ in range(n)]
        proto.bootstrap(0, coords[0])
        for i in range(1, n):
            proto.join(i, coords[i], now=0.0)
        return proto

    def test_delivery_with_perfect_tables(self):
        from repro.can.routing import route_on_beliefs
        import numpy as np

        proto = self._protocol()
        rng = np.random.default_rng(9)
        for _ in range(20):
            point = tuple(rng.random(5) * 0.99)
            result = route_on_beliefs(proto, 0, point)
            assert result.delivered
            assert result.path[-1] == proto.overlay.locate_owner(point)

    def test_broken_links_cause_routing_failures(self):
        from repro.can.routing import route_on_beliefs
        import numpy as np

        proto = self._protocol(n=25)
        # tear out most believed neighbors of every node: the walk starves
        for pnode in proto.nodes.values():
            for other in sorted(pnode.table.ids())[1:]:
                pnode.table.remove(other)
        rng = np.random.default_rng(3)
        outcomes = [
            route_on_beliefs(proto, 0, tuple(rng.random(5) * 0.99)).delivered
            for _ in range(20)
        ]
        assert not all(outcomes)

    def test_result_metadata(self):
        from repro.can.routing import route_on_beliefs

        proto = self._protocol(n=10)
        point = proto.overlay.coordinate(7)
        result = route_on_beliefs(proto, 0, point)
        assert result.hops == len(result.path) - 1
        if result.delivered:
            assert result.stuck_at is None
