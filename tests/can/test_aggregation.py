"""Unit tests for per-dimension load aggregation."""

import numpy as np
import pytest

from repro.can.aggregation import FIELDS, AggregationEngine
from repro.can.overlay import CanOverlay
from repro.can.space import ResourceSpace
from repro.model.node import GridNode
from repro.sim.core import Environment

from tests.conftest import cpu_job, make_cpu, make_node_spec

IDX = {name: i for i, name in enumerate(FIELDS)}


def line_overlay(n=4):
    """n nodes in a row along cpu.clock (other dims equal except virtual)."""
    space = ResourceSpace(gpu_slots=0)
    overlay = CanOverlay(space)
    env = Environment()
    grid = {}
    for i in range(n):
        clock = 0.5 + 3.0 * (i + 0.5) / n  # spread along cpu.clock
        spec = make_node_spec(i, cpu=make_cpu(clock=clock, cores=4))
        coord = space.node_coordinate(spec, virtual=0.5)
        overlay.add_node(i, coord)
        grid[i] = GridNode(spec, env)
    return overlay, grid, env


class TestAggregationEngine:
    def test_own_record_before_propagation(self):
        overlay, grid, _ = line_overlay(4)
        engine = AggregationEngine(overlay, grid)
        ai = engine.advertised(0, 0)
        assert ai[IDX["num_nodes"]] == 1.0
        assert ai[IDX["num_free"]] == 1.0
        assert ai[IDX["slot_cores"]] == 4.0

    def test_corridor_length_converges(self):
        overlay, grid, _ = line_overlay(4)
        engine = AggregationEngine(overlay, grid)
        clock_dim = overlay.space.dimension("cpu.clock").index
        engine.run_rounds(6)
        # the lowest node sees the whole corridor beyond it
        counts = [
            engine.field(i, clock_dim, "num_nodes") for i in range(4)
        ]
        # outermost node counts only itself; counts decrease outward
        order = np.argsort([overlay.coordinate(i)[clock_dim] for i in range(4)])
        sorted_counts = [counts[i] for i in order]
        assert sorted_counts == sorted(sorted_counts, reverse=True)
        assert sorted_counts[-1] == pytest.approx(1.0)
        assert sorted_counts[0] == pytest.approx(4.0, abs=0.5)

    def test_load_shows_up_in_aggregates(self):
        overlay, grid, env = line_overlay(4)
        engine = AggregationEngine(overlay, grid)
        grid[2].submit(cpu_job(cores=3, duration=1e6))
        engine.run_rounds(4)
        clock_dim = overlay.space.dimension("cpu.clock").index
        # some node's advertised required-cores along the corridor reflects it
        total = sum(
            engine.field(i, clock_dim, "slot_required_cores") for i in range(4)
        )
        assert total > 0
        assert engine.field(2, clock_dim, "num_free") < sum(
            engine.field(i, clock_dim, "num_free") for i in (0, 1)
        ) + 1  # node 2 is not free

    def test_pool_fields_track_all_cores(self):
        overlay, grid, _ = line_overlay(3)
        engine = AggregationEngine(overlay, grid)
        engine.run_rounds(1)
        ai = engine.advertised(0, 0)
        assert ai[IDX["pool_cores"]] >= ai[IDX["slot_cores"]]

    def test_topology_change_resets_and_recovers(self):
        overlay, grid, env = line_overlay(4)
        engine = AggregationEngine(overlay, grid)
        engine.run_rounds(3)
        # a new node joins -> topology version changes
        spec = make_node_spec(99, cpu=make_cpu(clock=2.2, cores=2))
        overlay.add_node(99, overlay.space.node_coordinate(spec, 0.77))
        grid[99] = GridNode(spec, env)
        engine.run_rounds(3)
        ai = engine.advertised(99, 0)
        assert ai[IDX["num_nodes"]] >= 1.0

    def test_unknown_node_raises(self):
        overlay, grid, _ = line_overlay(2)
        engine = AggregationEngine(overlay, grid)
        with pytest.raises(KeyError):
            engine.advertised(1234, 0)

    def test_rounds_counted(self):
        overlay, grid, _ = line_overlay(2)
        engine = AggregationEngine(overlay, grid)
        engine.run_rounds(5)
        assert engine.rounds_run == 5
