"""Accounting-neutrality regression: seeded churn runs pin their goldens.

The incremental heartbeat engine (epoch-shared snapshots, adjacency-indexed
absorption, cached wire sizes, dirty-set gap checks) is a pure performance
rework: message counts, byte totals, protocol events, population, the
broken-links series, and the JSONL trace of a seeded run must all stay
byte-identical to the committed goldens.  A legitimate protocol change that
moves these numbers must regenerate the goldens (see hb_golden.py) and call
that out in review.
"""

import json

import pytest

from tests.can.hb_golden import CASES, GOLDEN_PATH, SCHEMES, run_case

with open(GOLDEN_PATH) as fh:
    GOLDENS = json.load(fh)


@pytest.mark.parametrize("engine", ["object", "array"])
@pytest.mark.parametrize(
    "case,scheme",
    [(case, scheme) for case in CASES for scheme in SCHEMES],
    ids=[f"{case}.{scheme.value}" for case in CASES for scheme in SCHEMES],
)
def test_accounting_fingerprint_matches_golden(case, scheme, engine):
    got = run_case(case, scheme, engine=engine)
    want = GOLDENS[f"{case}.{scheme.value}"]
    # compare field by field first so a drift names the counter, not a blob
    for field in want:
        assert got[field] == want[field], f"{field} drifted"
    assert got == want
