"""Unit tests for believed neighbor tables."""

import pytest

from repro.can.geometry import Zone
from repro.can.neighbor import BeliefRecord, NeighborTable


def record(nid=1, version=0, lo=(1.0, 0.0), hi=(2.0, 1.0)):
    return BeliefRecord(
        node_id=nid, version=version, zones=(Zone(lo, hi),), coord=(1.5, 0.5)
    )


OWN = [Zone((0.0, 0.0), (1.0, 1.0))]


class TestBeliefRecord:
    def test_abuts_any(self):
        assert record().abuts_any(OWN)
        far = record(lo=(5.0, 0.0), hi=(6.0, 1.0))
        assert not far.abuts_any(OWN)

    def test_zone_count(self):
        assert record().zone_count == 1


class TestUpsert:
    def test_insert_and_get(self):
        t = NeighborTable()
        assert t.upsert(record(), now=10.0, heard=True)
        assert 1 in t
        assert t.get(1).version == 0
        assert t.last_heard(1) == 10.0
        assert len(t) == 1

    def test_newer_version_wins(self):
        t = NeighborTable()
        t.upsert(record(version=2), 0.0, heard=True)
        assert not t.upsert(record(version=1), 1.0)  # older rejected
        assert t.get(1).version == 2
        assert t.upsert(record(version=3), 2.0)
        assert t.get(1).version == 3

    def test_gossip_does_not_refresh_liveness(self):
        t = NeighborTable()
        t.upsert(record(version=0), 0.0, heard=True)
        t.upsert(record(version=0), 50.0, heard=False, heard_at=0.0)
        assert t.last_heard(1) == 0.0

    def test_gossip_freshness_moves_forward_only(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        t.upsert(record(), 60.0, heard=False, heard_at=40.0)
        assert t.last_heard(1) == 40.0
        t.upsert(record(), 70.0, heard=False, heard_at=10.0)
        assert t.last_heard(1) == 40.0  # never backwards

    def test_stale_gossip_cannot_insert(self):
        t = NeighborTable(freshness_ttl=100.0)
        assert not t.upsert(record(), now=500.0, heard=False, heard_at=10.0)
        assert 1 not in t
        # fresh gossip can
        assert t.upsert(record(), now=500.0, heard=False, heard_at=450.0)

    def test_direct_contact_always_inserts(self):
        t = NeighborTable(freshness_ttl=1.0)
        assert t.upsert(record(), now=1000.0, heard=True)

    def test_epoch_bumps_on_change_only(self):
        t = NeighborTable()
        e0 = t.epoch
        t.upsert(record(version=1), 0.0, heard=True)
        e1 = t.epoch
        assert e1 > e0
        t.upsert(record(version=1), 5.0, heard=True)  # same content
        assert t.epoch == e1
        t.upsert(record(version=2), 6.0, heard=True)
        assert t.epoch > e1


class TestLifecycle:
    def test_remove(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        assert t.remove(1)
        assert 1 not in t
        assert not t.remove(1)

    def test_stale_ids(self):
        t = NeighborTable()
        t.upsert(record(nid=1), 0.0, heard=True)
        t.upsert(record(nid=2, lo=(0.0, 1.0), hi=(1.0, 2.0)), 80.0, heard=True)
        assert t.stale_ids(now=100.0, timeout=50.0) == [1]

    def test_touch(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        t.touch(1, 30.0)
        assert t.last_heard(1) == 30.0
        t.touch(99, 30.0)  # unknown: no-op

    def test_prune_non_abutting(self):
        t = NeighborTable()
        t.upsert(record(nid=1), 0.0, heard=True)
        t.upsert(record(nid=2, lo=(7.0, 7.0), hi=(8.0, 8.0)), 0.0, heard=True)
        gone = t.prune_non_abutting(OWN)
        assert gone == [2]
        assert t.ids() == {1}


class TestSnapshot:
    def test_snapshot_contents(self):
        t = NeighborTable()
        t.upsert(record(), 12.0, heard=True)
        snap = t.snapshot()
        rec, heard_at = snap[1]
        assert rec.node_id == 1
        assert heard_at == 12.0

    def test_snapshot_cached_until_mutation(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        s1 = t.snapshot()
        assert t.snapshot() is s1  # cached
        t.touch(1, 5.0)
        s2 = t.snapshot()
        assert s2 is not s1
        assert s2[1][1] == 5.0

    def test_snapshot_invalidated_by_remove(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        s1 = t.snapshot()
        t.remove(1)
        assert 1 not in t.snapshot()

    def test_snapshot_frozen_against_later_mutation(self):
        """Copy-on-write: a handed-out snapshot keeps capture-time state."""
        t = NeighborTable()
        t.upsert(record(nid=1), 0.0, heard=True)
        snap = t.snapshot()
        t.upsert(record(nid=2, lo=(0.0, 1.0), hi=(1.0, 2.0)), 1.0, heard=True)
        t.touch(1, 9.0)
        t.remove(1)
        assert list(snap) == [1]
        assert snap[1][1] == 0.0
        assert len(snap) == 1 and snap.total_zones == 1
        fresh = t.snapshot()
        assert 1 not in fresh and 2 in fresh

    def test_snapshot_iteration_matches_table(self):
        t = NeighborTable()
        t.upsert(record(nid=1), 0.0, heard=True)
        t.upsert(record(nid=2, lo=(0.0, 1.0), hi=(1.0, 2.0)), 3.0, heard=True)
        snap = t.snapshot()
        assert dict(snap.items()) == {nid: snap[nid] for nid in snap}
        assert list(snap.pairs()) == list(snap.values())
        assert {rec.node_id for rec, _ in snap.pairs()} == {1, 2}


class TestIncrementals:
    def test_total_zones_tracks_changes(self):
        t = NeighborTable()
        assert t.total_zones() == 0
        t.upsert(record(nid=1), 0.0, heard=True)
        assert t.total_zones() == 1
        two_zones = BeliefRecord(
            node_id=1,
            version=1,
            zones=(Zone((1.0, 0.0), (2.0, 1.0)), Zone((2.0, 0.0), (3.0, 1.0))),
            coord=(1.5, 0.5),
        )
        t.upsert(two_zones, 1.0, heard=True)
        assert t.total_zones() == 2
        t.remove(1)
        assert t.total_zones() == 0

    def test_sorted_ids_cached_and_refreshed(self):
        t = NeighborTable()
        t.upsert(record(nid=5), 0.0, heard=True)
        t.upsert(record(nid=2, lo=(0.0, 1.0), hi=(1.0, 2.0)), 0.0, heard=True)
        first = t.sorted_ids()
        assert first == [2, 5]
        assert t.sorted_ids() is first  # cached while unchanged
        t.upsert(record(nid=9, lo=(1.0, 1.0), hi=(2.0, 2.0)), 0.0, heard=True)
        assert t.sorted_ids() == [2, 5, 9]
        assert first == [2, 5]  # old list untouched (rebind, not mutate)

    def test_heard_from_fast_path(self):
        t = NeighborTable()
        assert not t.heard_from(record(), 5.0)  # unknown: full path needed
        t.upsert(record(version=1), 0.0, heard=True)
        epoch = t.epoch
        assert t.heard_from(record(version=1), 7.0)
        assert t.last_heard(1) == 7.0
        assert t.epoch == epoch  # liveness only, no structural change
        assert t.heard_from(record(version=0), 9.0)  # older version: absorbed
        assert t.get(1).version == 1
        assert not t.heard_from(record(version=2), 10.0)  # newer: full path
