"""Unit tests for believed neighbor tables."""

import pytest

from repro.can.geometry import Zone
from repro.can.neighbor import BeliefRecord, NeighborTable


def record(nid=1, version=0, lo=(1.0, 0.0), hi=(2.0, 1.0)):
    return BeliefRecord(
        node_id=nid, version=version, zones=(Zone(lo, hi),), coord=(1.5, 0.5)
    )


OWN = [Zone((0.0, 0.0), (1.0, 1.0))]


class TestBeliefRecord:
    def test_abuts_any(self):
        assert record().abuts_any(OWN)
        far = record(lo=(5.0, 0.0), hi=(6.0, 1.0))
        assert not far.abuts_any(OWN)

    def test_zone_count(self):
        assert record().zone_count == 1


class TestUpsert:
    def test_insert_and_get(self):
        t = NeighborTable()
        assert t.upsert(record(), now=10.0, heard=True)
        assert 1 in t
        assert t.get(1).version == 0
        assert t.last_heard(1) == 10.0
        assert len(t) == 1

    def test_newer_version_wins(self):
        t = NeighborTable()
        t.upsert(record(version=2), 0.0, heard=True)
        assert not t.upsert(record(version=1), 1.0)  # older rejected
        assert t.get(1).version == 2
        assert t.upsert(record(version=3), 2.0)
        assert t.get(1).version == 3

    def test_gossip_does_not_refresh_liveness(self):
        t = NeighborTable()
        t.upsert(record(version=0), 0.0, heard=True)
        t.upsert(record(version=0), 50.0, heard=False, heard_at=0.0)
        assert t.last_heard(1) == 0.0

    def test_gossip_freshness_moves_forward_only(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        t.upsert(record(), 60.0, heard=False, heard_at=40.0)
        assert t.last_heard(1) == 40.0
        t.upsert(record(), 70.0, heard=False, heard_at=10.0)
        assert t.last_heard(1) == 40.0  # never backwards

    def test_stale_gossip_cannot_insert(self):
        t = NeighborTable(freshness_ttl=100.0)
        assert not t.upsert(record(), now=500.0, heard=False, heard_at=10.0)
        assert 1 not in t
        # fresh gossip can
        assert t.upsert(record(), now=500.0, heard=False, heard_at=450.0)

    def test_direct_contact_always_inserts(self):
        t = NeighborTable(freshness_ttl=1.0)
        assert t.upsert(record(), now=1000.0, heard=True)

    def test_epoch_bumps_on_change_only(self):
        t = NeighborTable()
        e0 = t.epoch
        t.upsert(record(version=1), 0.0, heard=True)
        e1 = t.epoch
        assert e1 > e0
        t.upsert(record(version=1), 5.0, heard=True)  # same content
        assert t.epoch == e1
        t.upsert(record(version=2), 6.0, heard=True)
        assert t.epoch > e1


class TestLifecycle:
    def test_remove(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        assert t.remove(1)
        assert 1 not in t
        assert not t.remove(1)

    def test_stale_ids(self):
        t = NeighborTable()
        t.upsert(record(nid=1), 0.0, heard=True)
        t.upsert(record(nid=2, lo=(0.0, 1.0), hi=(1.0, 2.0)), 80.0, heard=True)
        assert t.stale_ids(now=100.0, timeout=50.0) == [1]

    def test_touch(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        t.touch(1, 30.0)
        assert t.last_heard(1) == 30.0
        t.touch(99, 30.0)  # unknown: no-op

    def test_prune_non_abutting(self):
        t = NeighborTable()
        t.upsert(record(nid=1), 0.0, heard=True)
        t.upsert(record(nid=2, lo=(7.0, 7.0), hi=(8.0, 8.0)), 0.0, heard=True)
        gone = t.prune_non_abutting(OWN)
        assert gone == [2]
        assert t.ids() == {1}


class TestSnapshot:
    def test_snapshot_contents(self):
        t = NeighborTable()
        t.upsert(record(), 12.0, heard=True)
        snap = t.snapshot()
        rec, heard_at = snap[1]
        assert rec.node_id == 1
        assert heard_at == 12.0

    def test_snapshot_cached_until_mutation(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        s1 = t.snapshot()
        assert t.snapshot() is s1  # cached
        t.touch(1, 5.0)
        s2 = t.snapshot()
        assert s2 is not s1
        assert s2[1][1] == 5.0

    def test_snapshot_invalidated_by_remove(self):
        t = NeighborTable()
        t.upsert(record(), 0.0, heard=True)
        s1 = t.snapshot()
        t.remove(1)
        assert 1 not in t.snapshot()
