"""Unit tests for the struct-of-arrays heartbeat hot state."""

import numpy as np
import pytest

from repro.can.geometry import Zone
from repro.can.neighbor import _NEG_INF, BeliefRecord, NeighborTable
from repro.can.soa import ArrayNeighborTable, EdgeStore, build_protocol
from repro.gridsim.config import ChurnConfig
from repro.gridsim.faulty import FaultyGridConfig


def rec(nid: int, version: int = 0) -> BeliefRecord:
    zone = Zone([nid / 100.0, 0.0], [nid / 100.0 + 0.01, 1.0])
    return BeliefRecord(
        node_id=nid, version=version, zones=(zone,), coord=(0.0, 0.0)
    )


def make_table(store: EdgeStore, node_id: int) -> ArrayNeighborTable:
    row = store.alloc_row(node_id)
    table = ArrayNeighborTable(150.0, store, node_id, row)
    store.tables_by_row[row] = table
    return table


class TestEdgeStore:
    def test_slot_alloc_free_reuse(self):
        store = EdgeStore(slot_capacity=2)
        s0 = store.alloc_slot(0, 1)
        s1 = store.alloc_slot(0, 2)
        s2 = store.alloc_slot(0, 3)  # forces a grow
        assert len({s0, s1, s2}) == 3
        assert store.active[s1]
        store.free_slot(s1)
        assert not store.active[s1]
        assert store.eh[s1] == _NEG_INF
        assert store.alloc_slot(1, 4) == s1  # freed slot recycled

    def test_row_growth_and_monotonic_rows(self):
        store = EdgeStore(row_capacity=2)
        rows = [store.alloc_row(i) for i in range(5)]
        assert rows == [0, 1, 2, 3, 4]
        assert store.alive[:5].all()
        assert store.row_of == {i: i for i in range(5)}

    def test_rev_linking_and_unlinking(self):
        store = EdgeStore()
        a = make_table(store, 1)
        b = make_table(store, 2)
        a.upsert(rec(2), now=0.0)
        sa = a._slots[2]
        assert store.rev[sa] == -1  # b does not believe a yet
        b.upsert(rec(1), now=0.0)
        sb = b._slots[1]
        assert store.rev[sa] == sb and store.rev[sb] == sa
        a.remove(2)
        assert store.rev[sb] == -1  # freeing one side unlinks the other


class TestArrayTableMatchesObjectTable:
    """Differential: every override behaves like the dict implementation."""

    def pair(self):
        store = EdgeStore()
        arr = make_table(store, 99)
        store.alloc_row(1)  # subjects get rows so rev indexing is exercised
        store.alloc_row(2)
        obj = NeighborTable(150.0)
        return obj, arr

    def test_upsert_heard_remove_sequence(self):
        obj, arr = self.pair()
        for table in (obj, arr):
            assert table.upsert(rec(1), now=0.0)
            assert table.upsert(rec(2, version=1), now=5.0, heard_at=2.0)
            assert not table.upsert(rec(2, version=0), now=6.0)  # older loses
            assert table.heard_from(rec(1), now=10.0)
            assert not table.heard_from(rec(3), now=10.0)  # unknown subject
            table.advance_freshness(1, 20.0)
            table.advance_freshness(1, 15.0)  # never backwards
        assert obj.sorted_ids() == arr.sorted_ids()
        assert obj.epoch == arr.epoch
        assert obj.total_zones() == arr.total_zones()
        for nid in (1, 2, 3):
            assert obj.last_heard(nid) == arr.last_heard(nid)
        assert obj.stale_ids(200.0, 150.0) == arr.stale_ids(200.0, 150.0)
        for table in (obj, arr):
            assert table.remove(2, now=30.0)
            assert not table.remove(2)
        assert obj.sorted_ids() == arr.sorted_ids()
        assert obj.removals_epoch == arr.removals_epoch
        assert obj.grace_zones(31.0, 100.0) == arr.grace_zones(31.0, 100.0)

    def test_stale_gossip_cannot_insert(self):
        obj, arr = self.pair()
        for table in (obj, arr):
            # heard_at far beyond the 150s freshness ttl
            assert not table.upsert(rec(1), now=1000.0, heard_at=0.0)
            assert 1 not in table

    def test_snapshot_freezes_state(self):
        obj, arr = self.pair()
        for table in (obj, arr):
            table.upsert(rec(1), now=1.0)
            snap = table.snapshot()
            table.upsert(rec(2), now=2.0)
            table.touch(1, 50.0)
            assert list(snap.records) == [1]
            assert snap.heard == {1: 1.0}
            fresh = table.snapshot()
            assert fresh.heard == {1: 50.0, 2: 2.0}

    def test_records_since_order_and_values(self):
        obj, arr = self.pair()
        for table in (obj, arr):
            table.upsert(rec(1), now=1.0)
            table.upsert(rec(2), now=2.0)
            table.upsert(rec(1, version=1), now=3.0)
        obj_delta = obj.records_since(1)
        arr_delta = arr.records_since(1)
        assert [r.node_id for r, _ in obj_delta] == [
            r.node_id for r, _ in arr_delta
        ]
        assert [h for _, h in obj_delta] == [h for _, h in arr_delta]


class TestEngineFlag:
    def test_build_protocol_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            build_protocol(None, None, engine="simd")

    def test_churn_config_validates_engine(self):
        with pytest.raises(ValueError):
            ChurnConfig(engine="simd")
        assert ChurnConfig(engine="array").engine == "array"

    def test_faulty_config_validates_engine(self):
        from repro.gridsim.config import MatchmakingConfig
        from repro.workload.presets import TINY_LOAD

        with pytest.raises(ValueError):
            FaultyGridConfig(
                matchmaking=MatchmakingConfig(preset=TINY_LOAD), engine="simd"
            )


class TestArrayGrowth:
    """Regression: closures must survive the store's array reallocation."""

    def test_version_sink_survives_row_growth(self):
        import itertools

        from repro.can.heartbeat import HeartbeatScheme, ProtocolConfig
        from repro.can.overlay import CanOverlay
        from repro.can.space import ResourceSpace

        space = ResourceSpace(gpu_slots=0)
        overlay = CanOverlay(space)
        proto = build_protocol(
            overlay, ProtocolConfig(scheme=HeartbeatScheme.VANILLA),
            engine="array",
        )
        # tiny capacities: every few joins reallocate the row/slot arrays,
        # so any closure holding a stale array diverges immediately
        proto.store = EdgeStore(slot_capacity=2, row_capacity=2)
        rng = np.random.default_rng(3)
        ids = itertools.count()
        proto.bootstrap(next(ids), space.clamp_point(rng.random(space.dims)))
        for _ in range(11):
            proto.join(
                next(ids), space.clamp_point(rng.random(space.dims)), now=0.0
            )
        store = proto.store
        assert store.n_rows == 12  # grew well past the initial capacity
        assert any(n.own_version > 0 for n in proto.nodes.values())
        for nid, node in proto.nodes.items():
            assert store.own_version[store.row_of[nid]] == node.own_version


class TestExchangeKernel:
    """The bulk-advance mask semantics, via a tiny real protocol."""

    def test_array_round_advances_freshness_like_object(self):
        import itertools

        from repro.can.heartbeat import HeartbeatScheme, ProtocolConfig
        from repro.can.overlay import CanOverlay
        from repro.can.space import ResourceSpace

        protos = {}
        for engine in ("object", "array"):
            space = ResourceSpace(gpu_slots=0)
            overlay = CanOverlay(space)
            proto = build_protocol(
                overlay, ProtocolConfig(scheme=HeartbeatScheme.VANILLA),
                engine=engine,
            )
            rng = np.random.default_rng(7)
            ids = itertools.count()
            proto.bootstrap(next(ids), space.clamp_point(rng.random(space.dims)))
            for _ in range(9):
                proto.join(
                    next(ids), space.clamp_point(rng.random(space.dims)), now=0.0
                )
            for r in range(1, 4):
                proto.run_round(60.0 * r)
            protos[engine] = proto
        obj, arr = protos["object"], protos["array"]
        assert {t.value: c for t, c in obj.stats.count.items()} == {
            t.value: c for t, c in arr.stats.count.items()
        }
        for nid, node in obj.nodes.items():
            anode = arr.nodes[nid]
            for other in node.table.ids():
                assert node.table.last_heard(other) == anode.table.last_heard(
                    other
                )
