"""Unit tests for the KD split tree and take-over designation."""

import pytest

from repro.can.geometry import Zone
from repro.can.split_tree import Internal, Leaf, SplitTree


def unit_tree(owner=0, d=2):
    return SplitTree(Zone([0.0] * d, [1.0] * d), owner)


class TestSplitAndLocate:
    def test_bootstrap(self):
        tree = unit_tree(owner=7)
        leaf = tree.locate((0.5, 0.5))
        assert leaf.owner == 7
        assert tree.leaf_count() == 1

    def test_split_creates_two_leaves(self):
        tree = unit_tree()
        root = tree.locate((0.5, 0.5))
        low, high = tree.split_leaf(root, 0, 0.5, low_owner=0, high_owner=1)
        assert tree.leaf_count() == 2
        assert tree.locate((0.25, 0.5)) is low
        assert tree.locate((0.75, 0.5)) is high
        assert low.owner == 0 and high.owner == 1

    def test_locate_boundary_goes_high(self):
        tree = unit_tree()
        root = tree.locate((0.5, 0.5))
        low, high = tree.split_leaf(root, 0, 0.5, 0, 1)
        assert tree.locate((0.5, 0.1)) is high

    def test_partition_invariant_after_many_splits(self):
        tree = unit_tree()
        import random

        rnd = random.Random(3)
        for owner in range(1, 40):
            point = (rnd.random(), rnd.random())
            leaf = tree.locate(point)
            dim = rnd.randrange(2)
            lo, hi = leaf.zone.lo[dim], leaf.zone.hi[dim]
            at = (lo + hi) / 2
            tree.split_leaf(leaf, dim, at, leaf.owner, owner)
            tree.check_partition()
        assert tree.leaf_count() == 40

    def test_split_stale_leaf_rejected(self):
        tree = unit_tree()
        root = tree.locate((0.5, 0.5))
        tree.split_leaf(root, 0, 0.5, 0, 1)
        with pytest.raises(KeyError):
            tree.split_leaf(root, 1, 0.5, 0, 2)


class TestTakeover:
    def test_figure3_scenario(self):
        """Paper Figure 3: vertical split then two horizontal splits —
        A and C take over each other; B and D take over each other."""
        tree = unit_tree(owner=0)  # A owns everything
        root = tree.locate((0.1, 0.1))
        left, right = tree.split_leaf(root, 0, 0.5, 0, 1)  # A | B
        a_leaf, c_leaf = tree.split_leaf(left, 1, 0.5, 0, 2)  # A under C
        b_leaf, d_leaf = tree.split_leaf(right, 1, 0.5, 1, 3)  # B under D
        assert tree.takeover_leaf(a_leaf, {0}).owner == 2  # A <-> C
        assert tree.takeover_leaf(c_leaf, {2}).owner == 0
        assert tree.takeover_leaf(b_leaf, {1}).owner == 3  # B <-> D
        assert tree.takeover_leaf(d_leaf, {3}).owner == 1

    def test_takeover_skips_excluded_owners(self):
        tree = unit_tree(owner=0)
        root = tree.locate((0.1, 0.1))
        left, right = tree.split_leaf(root, 0, 0.5, 0, 1)
        a_leaf, c_leaf = tree.split_leaf(left, 1, 0.5, 0, 2)
        # C (owner 2) is also dead: the search climbs to B's subtree
        claimant = tree.takeover_leaf(a_leaf, {0, 2})
        assert claimant.owner == 1

    def test_takeover_of_lone_node_is_none(self):
        tree = unit_tree(owner=0)
        leaf = tree.locate((0.5, 0.5))
        assert tree.takeover_leaf(leaf, {0}) is None

    def test_takeover_descends_into_most_recent_split(self):
        tree = unit_tree(owner=0)
        root = tree.locate((0.1, 0.1))
        left, right = tree.split_leaf(root, 0, 0.5, 0, 1)
        # owner 1's side splits further: the deepest (most recent) partner
        # inherits the take-over duty for owner 0's leaf
        b_leaf, e_leaf = tree.split_leaf(right, 1, 0.5, 1, 4)
        claimant = tree.takeover_leaf(left, {0})
        assert claimant.owner in (1, 4)
        assert claimant.seq >= b_leaf.seq


class TestMergeAndTransfer:
    def test_transfer_changes_owner(self):
        tree = unit_tree(owner=0)
        root = tree.locate((0.5, 0.5))
        low, high = tree.split_leaf(root, 0, 0.5, 0, 1)
        tree.transfer(high, 0)
        assert high.owner == 0

    def test_merge_same_owner_siblings(self):
        tree = unit_tree(owner=0)
        root = tree.locate((0.5, 0.5))
        low, high = tree.split_leaf(root, 0, 0.5, 0, 1)
        tree.transfer(high, 0)
        merged = tree.try_merge(high)
        assert merged is not None
        _, _, new_leaf = merged
        assert new_leaf.zone == Zone([0, 0], [1, 1])
        assert tree.leaf_count() == 1
        tree.check_partition()

    def test_merge_refuses_different_owners(self):
        tree = unit_tree(owner=0)
        root = tree.locate((0.5, 0.5))
        low, high = tree.split_leaf(root, 0, 0.5, 0, 1)
        assert tree.try_merge(high) is None

    def test_merge_refuses_internal_sibling(self):
        tree = unit_tree(owner=0)
        root = tree.locate((0.1, 0.1))
        left, right = tree.split_leaf(root, 0, 0.5, 0, 1)
        tree.split_leaf(right, 1, 0.5, 1, 2)
        assert tree.try_merge(left) is None
