"""Unit tests for the message size model (Figure 8(b)'s foundation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.messages import MessageType, SizeModel


class TestSizeModel:
    def setup_method(self):
        self.model = SizeModel()

    def test_record_grows_linearly_with_dims(self):
        sizes = [self.model.record_bytes(d) for d in (5, 8, 11, 14)]
        diffs = np.diff(sizes)
        assert np.allclose(diffs, diffs[0])  # exactly linear

    def test_record_grows_with_zone_count(self):
        assert self.model.record_bytes(11, zones=2) > self.model.record_bytes(11, 1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            self.model.record_bytes(0)
        with pytest.raises(ValueError):
            self.model.record_bytes(5, zones=0)

    def test_compact_heartbeat_is_linear_in_d(self):
        sizes = [
            self.model.heartbeat_bytes(d, 1, None) for d in (5, 8, 11, 14)
        ]
        diffs = np.diff(sizes)
        assert np.allclose(diffs, diffs[0])

    def test_full_heartbeat_is_quadratic_in_d(self):
        """Neighbors scale with d, each record with d -> O(d^2) volume.

        Fit: size(d) with k=2d neighbor records must grow superlinearly.
        """
        sizes = [
            self.model.heartbeat_bytes(d, 1, [1] * (2 * d))
            for d in (5, 8, 11, 14)
        ]
        growth = np.diff(sizes)
        assert (np.diff(growth) > 0).all()  # increasing increments
        # quadratic fit should dominate the linear term
        coeffs = np.polyfit((5, 8, 11, 14), sizes, 2)
        assert coeffs[0] > 0

    def test_full_beats_compact(self):
        assert self.model.heartbeat_bytes(11, 1, [1] * 20) > (
            self.model.heartbeat_bytes(11, 1, None)
        )

    def test_table_bytes_counts_records(self):
        empty = self.model.table_bytes(11, [])
        three = self.model.table_bytes(11, [1, 1, 2])
        assert empty == self.model.header_bytes
        assert three == empty + 2 * self.model.record_bytes(11, 1) + (
            self.model.record_bytes(11, 2)
        )

    def test_request_is_header_only(self):
        assert self.model.request_bytes() == self.model.header_bytes

    def test_notify_size(self):
        assert self.model.notify_bytes(11) == (
            self.model.header_bytes + 2 * self.model.record_bytes(11)
        )

    def test_message_types_enumerated(self):
        assert len(MessageType) == 8
        assert MessageType.HEARTBEAT.value == "heartbeat"


class TestFromTotals:
    """The O(1) totals-based sizes must equal the per-record sums exactly."""

    def setup_method(self):
        self.model = SizeModel()

    @staticmethod
    def _totals(zone_counts):
        return len(zone_counts), sum(max(zc, 1) for zc in zone_counts)

    @settings(max_examples=100, deadline=None)
    @given(
        dims=st.integers(1, 16),
        zone_counts=st.lists(st.integers(0, 5), max_size=30),
    )
    def test_table_bytes_equivalence(self, dims, zone_counts):
        records, total_zones = self._totals(zone_counts)
        assert self.model.table_bytes_from_totals(
            dims, records, total_zones
        ) == self.model.table_bytes(dims, zone_counts)

    @settings(max_examples=100, deadline=None)
    @given(
        dims=st.integers(1, 16),
        own_zones=st.integers(1, 4),
        zone_counts=st.lists(st.integers(0, 5), max_size=30),
    )
    def test_heartbeat_bytes_equivalence(self, dims, own_zones, zone_counts):
        records, total_zones = self._totals(zone_counts)
        assert self.model.heartbeat_bytes_from_totals(
            dims, own_zones, records, total_zones
        ) == self.model.heartbeat_bytes(dims, own_zones, zone_counts)

    def test_record_base_is_single_zone_record_minus_box(self):
        dims = 11
        assert self.model.record_base_bytes(dims) == (
            self.model.record_bytes(dims, 1)
            - 2 * dims * self.model.float_bytes
        )

    def test_invalid_totals(self):
        with pytest.raises(ValueError):
            self.model.table_records_bytes(11, 3, 2)  # total < records
        with pytest.raises(ValueError):
            self.model.record_base_bytes(0)
