"""Unit and scenario tests for the heartbeat protocol engine."""

import numpy as np
import pytest

from repro.can.heartbeat import (
    HeartbeatProtocol,
    HeartbeatScheme,
    ProtocolConfig,
)
from repro.can.messages import MessageType
from repro.can.overlay import CanOverlay
from repro.can.space import ResourceSpace


def build_protocol(n=12, scheme=HeartbeatScheme.VANILLA, seed=0, **cfg_kwargs):
    space = ResourceSpace(gpu_slots=0)
    overlay = CanOverlay(space)
    config = ProtocolConfig(scheme=scheme, period=60.0, **cfg_kwargs)
    proto = HeartbeatProtocol(overlay, config, rng=np.random.default_rng(seed))
    rng = np.random.default_rng(seed)
    coords = [tuple(rng.random(space.dims) * 0.998 + 0.001) for _ in range(n)]
    proto.bootstrap(0, coords[0])
    for i in range(1, n):
        proto.join(i, coords[i], now=0.0)
    return proto


def run_rounds(proto, k, start=60.0, period=60.0):
    t = start
    for _ in range(k):
        proto.run_round(t)
        t += period
    return t


@pytest.mark.parametrize("scheme", list(HeartbeatScheme))
class TestQuiescentCorrectness:
    def test_join_builds_complete_tables(self, scheme):
        proto = build_protocol(15, scheme)
        assert proto.count_broken_links() == 0

    def test_rounds_preserve_zero_broken_links(self, scheme):
        proto = build_protocol(15, scheme)
        run_rounds(proto, 5)
        assert proto.count_broken_links() == 0

    def test_tables_match_ground_truth_exactly(self, scheme):
        proto = build_protocol(12, scheme)
        run_rounds(proto, 3)
        for nid, pnode in proto.nodes.items():
            truth = proto.overlay.neighbors(nid)
            assert pnode.table.ids() == truth, f"node {nid} table diverged"

    def test_graceful_leave_no_broken_links(self, scheme):
        proto = build_protocol(12, scheme)
        run_rounds(proto, 2)
        proto.graceful_leave(5, now=130.0)
        proto.run_round(180.0)
        assert proto.count_broken_links() == 0
        assert 5 not in proto.nodes

    def test_single_failure_recovers(self, scheme):
        """Paper: 'none of the approaches suffers from broken links when
        there are no simultaneous events.'"""
        proto = build_protocol(12, scheme)
        run_rounds(proto, 2)
        proto.fail(3, now=125.0)
        # detection timeout = 2.5 periods -> claimed within 3-4 rounds
        run_rounds(proto, 5, start=180.0)
        assert 3 not in proto.nodes
        assert proto.count_broken_links() == 0


class TestJoins:
    def test_join_into_dead_zone_deferred_then_retried(self):
        proto = build_protocol(8)
        run_rounds(proto, 2)
        victim = proto.overlay.locate_owner((0.5,) * 5)
        proto.fail(victim, now=130.0)
        assert not proto.join(99, (0.5,) * 5, now=131.0)  # deferred
        assert 99 not in proto.nodes
        run_rounds(proto, 6, start=180.0)
        assert 99 in proto.nodes  # retried after the claim
        assert proto.count_broken_links() == 0

    def test_join_counts_messages(self):
        proto = build_protocol(6)
        proto.stats.reset_window(0.0, 6)
        proto.join(100, (0.9,) * 5, now=10.0)
        assert proto.stats.count[MessageType.JOIN_REPLY] == 1
        assert proto.stats.count[MessageType.JOIN_NOTIFY] >= 1


class TestFailureMachinery:
    def test_takeover_claimant_stores_dead_table_compact(self):
        """Compact's whole design: the take-over node received the dead
        node's full table via its (targeted) full heartbeats."""
        proto = build_protocol(12, HeartbeatScheme.COMPACT)
        run_rounds(proto, 3)
        victim = 4
        targets = proto.overlay.takeover_targets(victim)
        assert targets
        for t in targets:
            assert victim in proto.nodes[t].stored_tables
        proto.fail(victim, now=250.0)
        run_rounds(proto, 5, start=300.0)
        assert victim not in proto.nodes
        assert proto.count_broken_links() == 0

    def test_ghost_is_silent_but_counted_as_target(self):
        proto = build_protocol(10)
        proto.stats.reset_window(0.0, 10)
        proto.fail(2, now=10.0)
        proto.run_round(60.0)
        # messages to the dead node are sent (and lost) until timeout
        assert proto.stats.count[MessageType.HEARTBEAT_FULL] > 0

    def test_failure_detection_removes_entry(self):
        proto = build_protocol(10)
        run_rounds(proto, 2)
        victim = 7
        believers = [
            nid
            for nid, p in proto.nodes.items()
            if victim in p.table and nid != victim
        ]
        assert believers
        proto.fail(victim, now=125.0)
        run_rounds(proto, 5, start=180.0)
        for nid in believers:
            if nid in proto.nodes:
                assert victim not in proto.nodes[nid].table


def _break_mutually(proto, a, b):
    proto.nodes[a].table.remove(b)
    proto.nodes[b].table.remove(a)
    proto.nodes[a].gap_dirty = False
    proto.nodes[b].gap_dirty = False


def _adjacent_pair(proto):
    for nid in sorted(proto.nodes):
        for other in sorted(proto.overlay.neighbors(nid)):
            if other > nid:
                return nid, other
    raise AssertionError("no adjacent pair")


class TestRepairByScheme:
    """The heart of Figure 7: who can heal a mutual broken link."""

    def test_vanilla_repairs_mutual_break(self):
        proto = build_protocol(14, HeartbeatScheme.VANILLA)
        run_rounds(proto, 2)
        a, b = _adjacent_pair(proto)
        _break_mutually(proto, a, b)
        assert proto.count_broken_links() == 2
        run_rounds(proto, 2, start=200.0)
        assert proto.count_broken_links() == 0

    def test_compact_cannot_repair_mutual_break(self):
        proto = build_protocol(14, HeartbeatScheme.COMPACT)
        run_rounds(proto, 2)
        a, b = _adjacent_pair(proto)
        # avoid the pair that full-updates each other (take-over partners)
        if b in proto.overlay.takeover_targets(a) or a in (
            proto.overlay.takeover_targets(b)
        ):
            pairs = [
                (x, y)
                for x in sorted(proto.nodes)
                for y in sorted(proto.overlay.neighbors(x))
                if y > x
                and y not in proto.overlay.takeover_targets(x)
                and x not in proto.overlay.takeover_targets(y)
            ]
            a, b = pairs[0]
        _break_mutually(proto, a, b)
        run_rounds(proto, 4, start=200.0)
        missing_a = proto._missing_neighbors(a)
        missing_b = proto._missing_neighbors(b)
        assert b in missing_a and a in missing_b  # still broken

    def test_adaptive_repairs_after_request_reply(self):
        proto = build_protocol(14, HeartbeatScheme.ADAPTIVE)
        run_rounds(proto, 2)
        a, b = _adjacent_pair(proto)
        _break_mutually(proto, a, b)
        proto.nodes[a].gap_dirty = True  # a detects its coverage gap
        proto.nodes[a].gap_attempts = 0
        run_rounds(proto, 3, start=200.0)
        assert proto.count_broken_links() == 0
        assert proto.stats.count[MessageType.FULL_UPDATE_REQUEST] > 0
        assert proto.stats.count[MessageType.FULL_UPDATE_REPLY] > 0

    def test_adaptive_gives_up_after_retry_budget(self):
        proto = build_protocol(
            14, HeartbeatScheme.ADAPTIVE, gap_retry_rounds=2
        )
        run_rounds(proto, 2)
        a, b = _adjacent_pair(proto)
        _break_mutually(proto, a, b)
        # make the gap undetectable-on-b and unrepairable: remove b from
        # every other table so no neighbor can answer for it
        for nid, p in proto.nodes.items():
            p.table.remove(b)
            p.gap_dirty = False
        proto.nodes[a].gap_dirty = True
        before = proto.stats.count[MessageType.FULL_UPDATE_REQUEST]
        run_rounds(proto, 6, start=200.0)
        sent = proto.stats.count[MessageType.FULL_UPDATE_REQUEST] - before
        # requests stop after the retry budget (here, <= 2 rounds' worth,
        # plus any triggered by unrelated table changes)
        assert sent <= 2 * len(proto.nodes[a].table) + 4


class TestMessageAccounting:
    def test_vanilla_heartbeats_all_full(self):
        proto = build_protocol(10, HeartbeatScheme.VANILLA)
        proto.stats.reset_window(0.0, 10)
        proto.run_round(60.0)
        assert proto.stats.count[MessageType.HEARTBEAT] == 0
        expected = sum(len(p.table) for p in proto.nodes.values())
        assert proto.stats.count[MessageType.HEARTBEAT_FULL] == expected

    def test_compact_sends_few_full(self):
        proto = build_protocol(10, HeartbeatScheme.COMPACT)
        proto.stats.reset_window(0.0, 10)
        proto.run_round(60.0)
        full = proto.stats.count[MessageType.HEARTBEAT_FULL]
        compact = proto.stats.count[MessageType.HEARTBEAT]
        assert full > 0  # take-over targets still get full state
        assert compact > full  # most heartbeats are compact

    def test_compact_volume_much_smaller(self):
        vol = {}
        for scheme in (HeartbeatScheme.VANILLA, HeartbeatScheme.COMPACT):
            proto = build_protocol(16, scheme, seed=2)
            proto.stats.reset_window(0.0, 16)
            run_rounds(proto, 3)
            _, vol[scheme] = proto.stats.totals()
        assert vol[HeartbeatScheme.COMPACT] < vol[HeartbeatScheme.VANILLA] / 2

    def test_message_counts_similar_across_schemes(self):
        counts = {}
        for scheme in HeartbeatScheme:
            proto = build_protocol(16, scheme, seed=2)
            proto.stats.reset_window(0.0, 16)
            run_rounds(proto, 3)
            counts[scheme], _ = proto.stats.totals()
        base = counts[HeartbeatScheme.VANILLA]
        for scheme, c in counts.items():
            assert abs(c - base) / base < 0.2, f"{scheme} count diverged"
