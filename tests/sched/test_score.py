"""Unit tests for the paper's Equations 1-4."""

import math

import numpy as np
import pytest

from repro.can.aggregation import FIELDS
from repro.sched.score import (
    ai_field,
    ce_score,
    node_score,
    pooled_node_score,
    pooled_push_objective,
    push_objective,
    stop_probability,
)
from repro.model.ce import ComputingElement

from tests.conftest import cpu_job, gpu_job, make_cpu, make_gpu, make_grid_node

IDX = {name: i for i, name in enumerate(FIELDS)}


def ai_vector(**fields):
    v = np.zeros(len(FIELDS))
    for name, value in fields.items():
        v[IDX[name]] = value
    return v


class TestEquations12:
    def test_eq1_dedicated(self):
        ce = ComputingElement(make_gpu(clock=2.0))
        job = gpu_job()
        ce.attach(job, 64)
        ce.queue.append(gpu_job())
        # (1 running + 1 queued) / clock 2.0
        assert ce_score(ce) == pytest.approx(1.0)

    def test_eq2_non_dedicated(self):
        ce = ComputingElement(make_cpu(clock=2.0, cores=4))
        ce.attach(cpu_job(cores=2), 2)
        assert ce_score(ce) == pytest.approx((2 / 4) / 2.0)

    def test_node_score_uses_dominant_ce(self, env):
        node = make_grid_node(env, cpu=make_cpu(clock=1.0), gpus=[make_gpu(0, clock=2.0)])
        job = gpu_job()
        assert node_score(node, job) == ce_score(node.ces["gpu0"])

    def test_node_score_missing_ce_is_inf(self, env):
        node = make_grid_node(env)  # no GPU
        assert math.isinf(node_score(node, gpu_job()))

    def test_pooled_score_blind_to_ce(self, env):
        """can-hom's score cannot distinguish a loaded GPU from a loaded CPU."""
        node = make_grid_node(
            env, cpu=make_cpu(cores=4), gpus=[make_gpu(0, cores=4)]
        )
        job = gpu_job(gpu_cores=4, duration=1e5)
        node.submit(job)
        pooled_before_unload = pooled_node_score(node)
        assert pooled_before_unload > 0
        # dominant-CE score sees the busy GPU precisely
        assert node_score(node, gpu_job(gpu_cores=4)) > 0


class TestEquation3:
    def test_prefers_more_cores_and_less_demand(self):
        light = ai_vector(slot_required_cores=1, slot_cores=16)
        heavy = ai_vector(slot_required_cores=12, slot_cores=16)
        small = ai_vector(slot_required_cores=1, slot_cores=2)
        assert push_objective(light, True) < push_objective(heavy, True)
        assert push_objective(light, True) < push_objective(small, True)

    def test_zero_cores_is_inf(self):
        assert math.isinf(push_objective(ai_vector(), True))

    def test_pooled_variant_reads_pool_fields(self):
        ai = ai_vector(slot_required_cores=100, slot_cores=1,
                       pool_required_cores=1, pool_cores=10)
        assert pooled_push_objective(ai) == pytest.approx(1 / 100)
        assert push_objective(ai, False) == pooled_push_objective(ai)


class TestEquation4:
    def test_probability_decreases_with_nodes_beyond(self):
        p_few = stop_probability(1, 2.0)
        p_many = stop_probability(10, 2.0)
        assert p_few > p_many

    def test_stopping_factor_sharpens(self):
        assert stop_probability(5, 4.0) < stop_probability(5, 1.0)

    def test_bounds(self):
        assert stop_probability(0, 1.0) == 1.0
        assert 0 < stop_probability(1000, 1.0) < 1e-2
        assert stop_probability(-3, 1.0) == 1.0  # clamped

    def test_negative_sf_rejected(self):
        with pytest.raises(ValueError):
            stop_probability(1, -1.0)


class TestAiField:
    def test_roundtrip(self):
        ai = ai_vector(num_nodes=7)
        assert ai_field(ai, "num_nodes") == 7.0
        with pytest.raises(ValueError):
            ai_field(ai, "bogus")
