"""Scenario tests for the three matchmakers."""

import numpy as np
import pytest

from repro.can.aggregation import AggregationEngine
from repro.can.overlay import CanOverlay
from repro.can.space import ResourceSpace
from repro.model.contention import ContentionModel
from repro.model.node import GridNode
from repro.sched.can_het import CanHetMatchmaker
from repro.sched.can_hom import CanHomMatchmaker
from repro.sched.central import CentralMatchmaker
from repro.sim.core import Environment

from tests.conftest import cpu_job, gpu_job, make_cpu, make_gpu, make_node_spec

NO_CONTENTION = ContentionModel(alpha=0.0)


def build_world(specs, gpu_slots=1, seed=0):
    space = ResourceSpace(gpu_slots=gpu_slots)
    overlay = CanOverlay(space)
    env = Environment()
    grid = {}
    rng = np.random.default_rng(seed)
    for spec in specs:
        overlay.add_node(
            spec.node_id, space.node_coordinate(spec, float(rng.random()))
        )
        grid[spec.node_id] = GridNode(spec, env, contention=NO_CONTENTION)
    agg = AggregationEngine(overlay, grid)
    agg.run_rounds(4)
    return overlay, grid, agg, env


def het_matchmaker(overlay, grid, agg, seed=1, **kwargs):
    return CanHetMatchmaker(
        overlay, grid, agg, np.random.default_rng(seed), **kwargs
    )


def standard_specs():
    """A small mixed fleet: CPU-only boxes plus GPU machines."""
    return [
        make_node_spec(0, cpu=make_cpu(clock=1.0, cores=2)),
        make_node_spec(1, cpu=make_cpu(clock=2.0, cores=4)),
        make_node_spec(2, cpu=make_cpu(clock=1.5, cores=8)),
        make_node_spec(
            3, cpu=make_cpu(clock=1.0, cores=2), gpus=[make_gpu(0, clock=1.0)]
        ),
        make_node_spec(
            4, cpu=make_cpu(clock=1.2, cores=4), gpus=[make_gpu(0, clock=2.5)]
        ),
        make_node_spec(
            5, cpu=make_cpu(clock=3.0, cores=4), gpus=[make_gpu(0, clock=0.8)]
        ),
    ]


class TestCanHet:
    def test_places_on_capable_node(self):
        overlay, grid, agg, env = build_world(standard_specs())
        mm = het_matchmaker(overlay, grid, agg)
        job = gpu_job(gpu_cores=64)
        node = mm.place(job)
        assert node is not None
        assert node.capable(job)
        assert mm.stats.placed == 1

    def test_prefers_fastest_free_dominant_clock(self):
        overlay, grid, agg, env = build_world(standard_specs())
        mm = het_matchmaker(overlay, grid, agg, max_hops=32)
        # all nodes free: among GPU nodes 3/4/5, node 4 has the fastest GPU
        placements = set()
        for _ in range(5):
            job = gpu_job(gpu_cores=32, duration=1.0)
            node = mm.place(job)
            placements.add(node.node_id)
            # do not submit: nodes stay free
        assert placements == {4}

    def test_acceptable_beats_queued(self):
        overlay, grid, agg, env = build_world(standard_specs())
        mm = het_matchmaker(overlay, grid, agg)
        # saturate node 4's GPU so it is busy but its CPU stays open
        grid[4].submit(gpu_job(gpu_cores=64, duration=1e6))
        agg.run_rounds(2)
        job = gpu_job(gpu_cores=32)
        node = mm.place(job)
        # must pick a node that can start the job now (3 or 5), not queue on 4
        assert node.node_id in (3, 5)
        assert node.is_acceptable(job)

    def test_all_busy_picks_min_score(self):
        overlay, grid, agg, env = build_world(standard_specs())
        # every GPU busy; node 4 (fast clock) has shortest effective queue
        for nid in (3, 4, 5):
            grid[nid].submit(gpu_job(gpu_cores=64, duration=1e6))
        grid[3].submit(gpu_job(gpu_cores=64, duration=1e6))  # 3 also queued
        agg.run_rounds(2)
        mm = het_matchmaker(overlay, grid, agg)
        job = gpu_job(gpu_cores=32)
        node = mm.place(job)
        assert node.node_id in (4, 5)  # never the doubly-loaded node 3

    def test_unplaceable_returns_none(self):
        overlay, grid, agg, env = build_world(standard_specs())
        mm = het_matchmaker(overlay, grid, agg)
        impossible = gpu_job(slot_index=0, gpu_cores=4096)
        assert mm.place(impossible) is None
        assert mm.stats.unplaced == 1

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            overlay, grid, agg, env = build_world(standard_specs())
            mm = het_matchmaker(overlay, grid, agg, seed=9)
            results.append(
                [mm.place(gpu_job(gpu_cores=32, duration=1.0)).node_id
                 for _ in range(6)]
            )
        assert results[0] == results[1]


class TestCanHom:
    def test_ignores_idle_gpu_behind_busy_cpu(self):
        """The motivating failure of the prior system: a node whose CPU is
        busy looks loaded even though its (fast) GPU is idle."""
        specs = [
            make_node_spec(
                0, cpu=make_cpu(clock=1.0, cores=2), gpus=[make_gpu(0, clock=3.0)]
            ),
            make_node_spec(
                1, cpu=make_cpu(clock=1.0, cores=8), gpus=[make_gpu(0, clock=0.5)]
            ),
        ]
        overlay, grid, agg, env = build_world(specs)
        # Neither node is free (one CPU core busy on each); both could start
        # a GPU job immediately.  Node 0 has the fast GPU; node 1 merely has
        # the lower *pooled* core utilisation (more CPU cores).
        grid[0].submit(cpu_job(cores=1, duration=1e6))
        grid[1].submit(cpu_job(cores=1, duration=1e6))
        agg.run_rounds(3)
        job = gpu_job(gpu_cores=32)

        hom = CanHomMatchmaker(
            overlay, grid, agg, np.random.default_rng(1)
        )
        het = het_matchmaker(overlay, grid, agg, seed=1)
        hom_choice = hom.place(job)
        het_choice = het.place(job)
        # can-hom has no acceptable-node concept and no free node to grab:
        # it falls back to pooled utilisation, which favours the node with
        # more idle CPU cores — blind to its much slower GPU.
        assert hom_choice.node_id == 1
        # can-het sees the dominant CE: node 0's fast GPU is idle.
        assert het_choice.node_id == 0

    def test_places_capable_only(self):
        overlay, grid, agg, env = build_world(standard_specs())
        hom = CanHomMatchmaker(overlay, grid, agg, np.random.default_rng(0))
        job = gpu_job(gpu_cores=32)
        node = hom.place(job)
        assert node is not None and node.capable(job)


class TestCentral:
    def test_free_fastest_dominant_clock(self):
        overlay, grid, agg, env = build_world(standard_specs())
        central = CentralMatchmaker(grid)
        node = central.place(gpu_job(gpu_cores=32))
        assert node.node_id == 4  # fastest GPU clock among free nodes

    def test_acceptable_when_no_free(self):
        overlay, grid, agg, env = build_world(standard_specs())
        central = CentralMatchmaker(grid)
        for g in grid.values():  # make every node non-free
            g.submit(cpu_job(cores=1, duration=1e6))
        job = gpu_job(gpu_cores=32)
        node = central.place(job)
        assert node.is_acceptable(job)
        assert node.node_id == 4

    def test_min_score_when_all_busy(self):
        overlay, grid, agg, env = build_world(standard_specs())
        central = CentralMatchmaker(grid)
        for nid in (3, 4, 5):
            grid[nid].submit(gpu_job(gpu_cores=64, duration=1e6))
        grid[4].submit(gpu_job(gpu_cores=64, duration=1e6))
        node = central.place(gpu_job(gpu_cores=32))
        # eq1 scores: node3 1/1.0; node4 2/2.5; node5 1/0.8 -> node4 wins
        assert node.node_id == 4

    def test_none_when_no_capable(self):
        overlay, grid, agg, env = build_world(standard_specs())
        central = CentralMatchmaker(grid)
        assert central.place(gpu_job(slot_index=0, gpu_cores=9999)) is None

    def test_dead_nodes_skipped(self):
        overlay, grid, agg, env = build_world(standard_specs())
        central = CentralMatchmaker(grid)
        grid[4].fail()
        node = central.place(gpu_job(gpu_cores=32))
        assert node.node_id != 4


class TestFallbackSearch:
    def test_rare_dual_gpu_job_found_by_fallback(self):
        """A job needing two GPU types can only run on one machine in the
        grid; the push walk rarely meets it, the expanding-ring search must."""
        from repro.model.job import CERequirement, Job
        from repro.model.ce import CPU_SLOT

        specs = [
            make_node_spec(i, cpu=make_cpu(clock=1.0 + 0.1 * i, cores=2))
            for i in range(8)
        ]
        specs.append(
            make_node_spec(
                8,
                cpu=make_cpu(clock=1.1, cores=4),
                gpus=[make_gpu(0, clock=1.5), make_gpu(1, clock=1.0)],
            )
        )
        overlay, grid, agg, env = build_world(specs, gpu_slots=2)
        job = Job(
            requirements={
                "gpu0": CERequirement(cores=64),
                "gpu1": CERequirement(cores=64),
                CPU_SLOT: CERequirement(cores=1),
            },
            base_duration=100.0,
        )
        for seed in range(5):
            mm = het_matchmaker(overlay, grid, agg, seed=seed)
            node = mm.place(job)
            assert node is not None and node.node_id == 8

    def test_fallback_counted_in_stats(self):
        from repro.model.job import CERequirement, Job
        from repro.model.ce import CPU_SLOT

        specs = [
            make_node_spec(i, cpu=make_cpu(clock=1.0 + 0.1 * i, cores=2))
            for i in range(6)
        ]
        specs.append(
            make_node_spec(6, cpu=make_cpu(cores=2), gpus=[make_gpu(0)])
        )
        overlay, grid, agg, env = build_world(specs, gpu_slots=1)
        # saturate the lone GPU node so it is never acceptable
        grid[6].submit(gpu_job(gpu_cores=64, duration=1e6))
        agg.run_rounds(2)
        mm = het_matchmaker(overlay, grid, agg, seed=0)
        before = mm.stats.fallback_searches
        node = mm.place(gpu_job(gpu_cores=32))
        assert node is not None and node.node_id == 6
        # the walk may or may not have needed the fallback depending on the
        # route; but placement must never fail while a capable node exists
        assert mm.stats.unplaced == 0
        assert mm.stats.fallback_searches >= before
