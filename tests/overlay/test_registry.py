"""Substrate registry: conformance, engine gating, substrate-parametric sims."""

import pytest

from repro.can.heartbeat import HeartbeatScheme, ProtocolConfig
from repro.can.space import ResourceSpace
from repro.overlay import (
    MaintenanceProtocol,
    OverlaySubstrate,
    SubstrateDescriptor,
    available_substrates,
    create_overlay,
    get_substrate,
    register_substrate,
)


def test_builtins_are_listed():
    names = available_substrates()
    assert "can" in names
    assert "chord" in names


def test_unknown_substrate_names_the_alternatives():
    with pytest.raises(ValueError, match="can.*chord|chord.*can"):
        get_substrate("pastry")


@pytest.mark.parametrize("name", ["can", "chord"])
def test_descriptor_builds_conformant_objects(name):
    """Both substrates satisfy the structural protocols end to end."""
    sub = get_substrate(name)
    space = ResourceSpace(gpu_slots=1)
    overlay = sub.make_overlay(space)
    assert isinstance(overlay, OverlaySubstrate)
    cfg = ProtocolConfig(scheme=HeartbeatScheme.VANILLA, period=60.0)
    protocol = sub.make_protocol(overlay, cfg)
    assert isinstance(protocol, MaintenanceProtocol)
    # the full protocol surface works through the interface alone
    protocol.bootstrap(0, [0.5] * space.dims)
    protocol.join(1, [0.25] * space.dims, now=0.0)
    protocol.run_round(now=60.0)
    assert overlay.size == 2
    assert set(overlay.alive_ids()) == {0, 1}
    assert overlay.locate_owner([0.5] * space.dims) in (0, 1)
    overlay.check_invariants()
    path = sub.route(overlay, 0, [0.25] * space.dims)
    assert path[0] == 0
    result = sub.route_on_beliefs(protocol, 0, [0.25] * space.dims)
    assert result.delivered


@pytest.mark.parametrize("name", ["can", "chord"])
def test_create_overlay_shorthand(name):
    space = ResourceSpace(gpu_slots=1)
    overlay = create_overlay(name, space)
    assert isinstance(overlay, OverlaySubstrate)
    assert overlay.size == 0 or overlay.size >= 0


def test_engine_gating():
    can = get_substrate("can")
    chord = get_substrate("chord")
    can.check_engine("object")
    can.check_engine("array")
    chord.check_engine("object")
    with pytest.raises(ValueError, match="no heartbeat engine"):
        chord.check_engine("array")
    with pytest.raises(ValueError, match="no heartbeat engine"):
        can.check_engine("simd")


def test_register_substrate_overrides_and_restores():
    original = get_substrate("can")
    fake = SubstrateDescriptor(
        name="can",
        make_overlay=original.make_overlay,
        make_protocol=original.make_protocol,
        route=original.route,
        route_on_beliefs=original.route_on_beliefs,
        engines=("object",),
    )
    try:
        register_substrate(fake)
        assert get_substrate("can") is fake
    finally:
        register_substrate(original)
    assert get_substrate("can") is original


@pytest.mark.parametrize("substrate", ["can", "chord"])
def test_churn_simulation_runs_on_both_substrates(substrate):
    from repro.gridsim.churn import ChurnConfig, ChurnSimulation
    from repro.gridsim.invariants import check_churn_invariants

    cfg = ChurnConfig(
        initial_nodes=24,
        gpu_slots=1,
        scheme=HeartbeatScheme.ADAPTIVE,
        heartbeat_period=60.0,
        event_gap_mean=30.0,
        duration=1_800.0,
        seed=5,
        substrate=substrate,
        invariant_check_every=3,
    )
    sim = ChurnSimulation(cfg)
    result = sim.run()
    assert result.substrate == substrate
    check_churn_invariants(sim)
    assert result.final_population > 0


@pytest.mark.parametrize("substrate", ["can", "chord"])
def test_matchmaking_simulation_runs_on_both_substrates(substrate):
    from repro.gridsim import GridSimulation, MatchmakingConfig
    from repro.gridsim.invariants import check_matchmaking_accounting
    from repro.workload import TINY_LOAD

    cfg = MatchmakingConfig(TINY_LOAD, scheme="can-het", substrate=substrate)
    result = GridSimulation(cfg).run()
    assert result.substrate == substrate
    assert result.jobs_submitted == TINY_LOAD.jobs
    check_matchmaking_accounting(result)
    assert result.started > 0


def test_substrate_config_validation():
    from repro.gridsim.churn import ChurnConfig

    with pytest.raises(ValueError, match="unknown substrate"):
        ChurnConfig(initial_nodes=10, substrate="kademlia")
    with pytest.raises(ValueError, match="no heartbeat engine"):
        ChurnConfig(initial_nodes=10, substrate="chord", engine="array")
