"""CAN behind the substrate interface reproduces its goldens byte-identically.

The registry refactor moved every simulation onto
:func:`repro.overlay.get_substrate` factories.  This pin asserts the move
is observationally invisible for CAN: a seeded fig7-shaped churn run built
through the interface produces the exact committed accounting fingerprint —
message counts, byte totals, events, population, broken-links series and
the JSONL trace hash.
"""

import json

import pytest

from repro.overlay import get_substrate
from tests.can.hb_golden import GOLDEN_PATH, SCHEMES, run_case

with open(GOLDEN_PATH) as fh:
    GOLDENS = json.load(fh)


def test_churn_simulation_resolves_can_through_registry():
    from repro.gridsim import ChurnConfig, ChurnSimulation

    sim = ChurnSimulation(ChurnConfig(initial_nodes=8, gpu_slots=1))
    descriptor = get_substrate("can")
    assert sim.substrate is descriptor
    assert isinstance(sim.overlay, type(descriptor.make_overlay(sim.space)))


@pytest.mark.parametrize(
    "scheme", SCHEMES, ids=[s.value for s in SCHEMES]
)
def test_fig7_fingerprint_survives_the_substrate_interface(scheme):
    """run_case drives ChurnSimulation, which now constructs its overlay and
    protocol through the substrate registry — the fig7 golden must not move
    by a single byte."""
    got = run_case("fig7", scheme)
    want = GOLDENS[f"fig7.{scheme.value}"]
    for field in want:
        assert got[field] == want[field], f"{field} drifted through the interface"
    assert got == want
