"""Unit tests for job-stream generation."""

import numpy as np
import pytest

from repro.model.ce import CPU_SLOT
from repro.workload.jobs import JobDistribution, arrival_times, generate_jobs
from repro.workload.nodes import generate_node_specs


@pytest.fixture
def nodes(rng):
    return generate_node_specs(100, 2, rng)


class TestArrivalTimes:
    def test_monotone_increasing(self, rng):
        times = arrival_times(200, 3.0, rng)
        assert (np.diff(times) > 0).all()

    def test_mean_interarrival(self, rng):
        times = arrival_times(5000, 3.0, rng)
        assert np.diff(times).mean() == pytest.approx(3.0, rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            arrival_times(0, 3.0, rng)
        with pytest.raises(ValueError):
            arrival_times(10, 0.0, rng)


class TestGenerateJobs:
    def test_every_job_satisfiable(self, nodes, rng):
        jobs = generate_jobs(200, nodes, 2, 3.0, rng)
        assert len(jobs) == 200
        for job in jobs:
            assert any(
                _satisfies(spec, job.requirements) for spec in nodes
            ), f"{job} unsatisfiable"

    def test_every_job_uses_cpu(self, nodes, rng):
        for job in generate_jobs(100, nodes, 2, 3.0, rng):
            assert CPU_SLOT in job.requirements

    def test_gpu_fraction_respected(self, nodes, rng):
        dist = JobDistribution(gpu_job_fraction=0.5)
        jobs = generate_jobs(400, nodes, 2, 3.0, rng, dist)
        gpu_jobs = sum(1 for j in jobs if j.dominant_slot != CPU_SLOT)
        assert 0.35 < gpu_jobs / len(jobs) < 0.65

    def test_zero_gpu_slots_means_cpu_only(self, rng):
        cpu_nodes = generate_node_specs(50, 0, rng)
        jobs = generate_jobs(100, cpu_nodes, 0, 3.0, rng)
        assert all(set(j.requirements) == {CPU_SLOT} for j in jobs)

    def test_durations_in_paper_range(self, nodes, rng):
        """Section V-A: expected 1 hour, uniform in [0.5 h, 1.5 h]."""
        jobs = generate_jobs(300, nodes, 2, 3.0, rng)
        durations = np.array([j.base_duration for j in jobs])
        assert durations.min() >= 1800.0
        assert durations.max() <= 5400.0
        assert durations.mean() == pytest.approx(3600.0, rel=0.05)

    def test_constraint_ratio_controls_specification(self, nodes):
        def spec_count(ratio, seed=11):
            rng = np.random.default_rng(seed)
            dist = JobDistribution(constraint_ratio=ratio, gpu_job_fraction=0.0)
            jobs = generate_jobs(300, nodes, 2, 3.0, rng, dist)
            total = 0
            for j in jobs:
                req = j.requirements[CPU_SLOT]
                total += sum(
                    1
                    for v in (req.clock, req.memory, req.disk)
                    if v > 0
                ) + (1 if req.cores > 1 else 0)
            return total

        assert spec_count(0.8) > spec_count(0.4) > spec_count(0.0)

    def test_zero_ratio_yields_unconstrained_jobs(self, nodes, rng):
        dist = JobDistribution(constraint_ratio=0.0, gpu_job_fraction=0.0)
        for job in generate_jobs(50, nodes, 2, 3.0, rng, dist):
            req = job.requirements[CPU_SLOT]
            assert req.clock == req.memory == req.disk == 0.0
            assert req.cores == 1

    def test_impossible_distribution_raises(self, rng):
        weak = generate_node_specs(3, 0, rng)
        from repro.workload.distributions import Tiered

        impossible = JobDistribution(
            gpu_job_fraction=0.0,
            constraint_ratio=1.0,
            cpu_req_clock=Tiered(tiers=((1.0, 50.0, 60.0),)),
        )
        with pytest.raises(RuntimeError):
            generate_jobs(10, weak, 0, 3.0, rng, impossible, max_resample=5)

    def test_submit_times_assigned(self, nodes, rng):
        jobs = generate_jobs(50, nodes, 2, 2.0, rng)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        assert times[0] > 0


def _satisfies(spec, reqs):
    for slot, req in reqs.items():
        ce = spec.ce_spec(slot)
        if ce is None:
            return False
        if (
            ce.clock < req.clock
            or ce.memory < req.memory
            or ce.disk < req.disk
            or ce.cores < req.cores
        ):
            return False
    return True


class TestSecondaryGpuRequirements:
    def test_high_ratio_produces_dual_gpu_jobs(self, nodes):
        rng = np.random.default_rng(4)
        dist = JobDistribution(constraint_ratio=0.8, gpu_job_fraction=1.0)
        jobs = generate_jobs(400, nodes, 2, 3.0, rng, dist)
        dual = sum(1 for j in jobs if len(j.requirements) == 3)
        assert dual > 10  # ~20% of GPU jobs at ratio 0.8

    def test_ratio_scales_dual_gpu_frequency(self, nodes):
        def dual_count(ratio):
            rng = np.random.default_rng(4)
            dist = JobDistribution(constraint_ratio=ratio, gpu_job_fraction=1.0)
            jobs = generate_jobs(400, nodes, 2, 3.0, rng, dist)
            return sum(1 for j in jobs if len(j.requirements) == 3)

        assert dual_count(0.8) > dual_count(0.2)

    def test_single_gpu_slot_never_dual(self, rng):
        single = generate_node_specs(60, 1, rng)
        dist = JobDistribution(constraint_ratio=1.0, gpu_job_fraction=1.0)
        jobs = generate_jobs(100, single, 1, 3.0, rng, dist)
        assert all(len(j.requirements) <= 2 for j in jobs)

    def test_dual_gpu_jobs_satisfiable(self, nodes, rng):
        dist = JobDistribution(constraint_ratio=0.9, gpu_job_fraction=1.0)
        jobs = generate_jobs(200, nodes, 2, 3.0, rng, dist)
        for job in jobs:
            assert any(_satisfies(s, job.requirements) for s in nodes)
