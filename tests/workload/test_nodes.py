"""Unit tests for heterogeneous node generation."""

import numpy as np
import pytest

from repro.model.ce import CPU_SLOT
from repro.workload.nodes import NodeDistribution, generate_node_specs


class TestGenerateNodeSpecs:
    def test_count_and_ids(self, rng):
        specs = generate_node_specs(50, 2, rng, first_id=100)
        assert len(specs) == 50
        assert [s.node_id for s in specs] == list(range(100, 150))

    def test_every_node_has_cpu(self, rng):
        for spec in generate_node_specs(40, 2, rng):
            assert spec.ce_spec(CPU_SLOT) is not None

    def test_core_counts_match_paper(self, rng):
        """Section V-A: single-/multi-core CPU with 1, 2, 4 or 8 cores."""
        cores = {
            s.cpu.cores for s in generate_node_specs(300, 2, rng)
        }
        assert cores <= {1, 2, 4, 8}
        assert len(cores) >= 3  # the mix is actually mixed

    def test_up_to_two_gpu_types(self, rng):
        specs = generate_node_specs(300, 2, rng)
        gpu_counts = [len(s.ces) - 1 for s in specs]
        assert max(gpu_counts) <= 2
        assert any(c == 0 for c in gpu_counts)
        assert any(c == 1 for c in gpu_counts)
        assert any(c == 2 for c in gpu_counts)

    def test_gpus_are_dedicated(self, rng):
        for spec in generate_node_specs(100, 2, rng):
            for ce in spec.ces:
                if ce.slot != CPU_SLOT:
                    assert ce.dedicated

    def test_zero_gpu_slots(self, rng):
        specs = generate_node_specs(30, 0, rng)
        assert all(len(s.ces) == 1 for s in specs)

    def test_capability_skew_is_low_heavy(self, rng):
        """Most nodes low-capability, few high (Section V-A)."""
        clocks = np.array(
            [s.cpu.clock for s in generate_node_specs(500, 0, rng)]
        )
        assert np.median(clocks) < clocks.mean() + 0.5
        assert (clocks < 1.5).mean() > 0.4
        assert (clocks > 2.5).mean() < 0.25

    def test_deterministic(self):
        a = generate_node_specs(20, 2, np.random.default_rng(5))
        b = generate_node_specs(20, 2, np.random.default_rng(5))
        assert a == b

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_node_specs(0, 2, rng)
        with pytest.raises(ValueError):
            generate_node_specs(10, -1, rng)
