"""Unit tests for workload sampling primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import Tiered, WeightedChoice


class TestTiered:
    def test_validation(self):
        with pytest.raises(ValueError):
            Tiered(tiers=())
        with pytest.raises(ValueError):
            Tiered(tiers=((0.0, 1, 2),))
        with pytest.raises(ValueError):
            Tiered(tiers=((1.0, 2, 1),))

    def test_samples_within_bounds(self, rng):
        dist = Tiered(tiers=((0.7, 1.0, 2.0), (0.3, 5.0, 9.0)))
        samples = [dist.sample(rng) for _ in range(500)]
        for s in samples:
            assert (1.0 <= s <= 2.0) or (5.0 <= s <= 9.0)
        assert dist.min_value == 1.0
        assert dist.max_value == 9.0

    def test_weights_respected(self, rng):
        dist = Tiered(tiers=((0.9, 0.0, 1.0), (0.1, 10.0, 11.0)))
        samples = np.array([dist.sample(rng) for _ in range(2000)])
        low_fraction = (samples < 5).mean()
        assert 0.85 < low_fraction < 0.95

    def test_degenerate_tier(self, rng):
        dist = Tiered(tiers=((1.0, 3.0, 3.0),))
        assert dist.sample(rng) == 3.0


class TestWeightedChoice:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedChoice(values=(), weights=())
        with pytest.raises(ValueError):
            WeightedChoice(values=(1, 2), weights=(1,))
        with pytest.raises(ValueError):
            WeightedChoice(values=(1,), weights=(0,))

    def test_samples_are_members(self, rng):
        choice = WeightedChoice(values=(1, 2, 4, 8), weights=(4, 3, 2, 1))
        for _ in range(200):
            assert choice.sample(rng) in (1, 2, 4, 8)

    def test_skew(self, rng):
        choice = WeightedChoice(values=(0, 1), weights=(9, 1))
        samples = np.array([choice.sample(rng) for _ in range(2000)])
        assert samples.mean() < 0.2

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_deterministic_per_seed(self, seed):
        choice = WeightedChoice(values=(1, 2, 3), weights=(1, 1, 1))
        a = [choice.sample(np.random.default_rng(seed)) for _ in range(5)]
        b = [choice.sample(np.random.default_rng(seed)) for _ in range(5)]
        assert a == b
