"""Gateway + client over a real socket, under a heavily dilated clock."""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.obs import MetricsRegistry
from repro.service import (
    AsyncioClock,
    Gateway,
    GridService,
    JobStatus,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    open_ledger,
)
from repro.service.replay import record_trace, replay_trace
from repro.workload.presets import TINY_LOAD
from repro.workload.trace import load_jobs

DILATION = 2_000.0


def run_gateway(scenario, metrics=None, **config_kwargs):
    """Host a gateway on an ephemeral port; run ``scenario(client, service)``
    in a worker thread (the blocking client must stay off the loop)."""

    async def main():
        loop = asyncio.get_running_loop()
        clock = AsyncioClock(loop=loop, dilation=DILATION)
        ledger = open_ledger(None, clock=clock)
        config = ServiceConfig(preset=TINY_LOAD, **config_kwargs)
        service = GridService(config, ledger, clock, metrics=metrics)
        gateway = Gateway(service, metrics=metrics)
        await gateway.start()
        try:
            client = ServiceClient(gateway.url, timeout=30.0)
            return await asyncio.to_thread(scenario, client, service)
        finally:
            await gateway.stop()

    return asyncio.run(main())


def raw_get(host, port, target, headers=None):
    """One HTTP GET over a bare socket; returns (head, body) as text."""
    request = f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
    for name, value in (headers or {}).items():
        request += f"{name}: {value}\r\n"
    request += "\r\n"
    with socket.create_connection((host, port), timeout=10.0) as raw:
        raw.sendall(request.encode("latin-1"))
        chunks = []
        while True:
            data = raw.recv(65536)
            if not data:
                break
            chunks.append(data)
    head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
    return head.decode("latin-1"), body.decode()


@pytest.fixture(scope="module")
def trace_jobs(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("wl") / "workload.jsonl")
    record_trace(TINY_LOAD, path)
    return load_jobs(path)


class TestEndToEnd:
    def test_replay_drains_to_completed(self, trace_jobs):
        def scenario(client, service):
            summary = replay_trace(client, trace_jobs[:20], timeout=60.0)
            health = client.health()
            return summary, health

        summary, health = run_gateway(scenario)
        assert summary["terminal"] == {"COMPLETED": 20}
        assert health["jobs"] == {"COMPLETED": 20}
        assert health["population"] == TINY_LOAD.nodes

    def test_status_and_listing(self, trace_jobs):
        def scenario(client, service):
            job_id = client.submit(trace_jobs[0])
            view = client.status(job_id)
            assert view.job_id == job_id
            assert not view.terminal or view.status is JobStatus.COMPLETED
            client.wait([job_id], timeout=30.0)
            done = client.jobs(JobStatus.COMPLETED)
            assert [v.job_id for v in done] == [job_id]
            assert client.jobs(JobStatus.RUNNING) == []
            return client.status(job_id)

        final = run_gateway(scenario)
        assert final.status is JobStatus.COMPLETED
        assert final.node_id is not None

    def test_metrics_exposes_latency_and_census(self, trace_jobs):
        def scenario(client, service):
            ids = [client.submit(j) for j in trace_jobs[:5]]
            client.wait(ids, timeout=30.0)
            return client.metrics()

        metrics = run_gateway(scenario)
        assert metrics["jobs"] == {"COMPLETED": 5}
        assert metrics["queue_depth"] == 0

    def test_metrics_prometheus_scrape(self, trace_jobs):
        """Accept: text/plain gets the exposition; plain GET stays JSON."""

        def scenario(client, service):
            ids = [client.submit(j) for j in trace_jobs[:3]]
            client.wait(ids, timeout=30.0)
            scraped = raw_get(
                client.host,
                client.port,
                "/metrics",
                {"Accept": "text/plain"},
            )
            explicit = raw_get(client.host, client.port, "/metrics?format=prom")
            return scraped, explicit, client.metrics()

        (head, body), (_, body2), json_payload = run_gateway(
            scenario, metrics=MetricsRegistry()
        )
        assert "200 OK" in head
        assert "text/plain; version=0.0.4" in head
        assert '# TYPE repro_service_jobs gauge' in body
        assert 'repro_service_jobs{status="COMPLETED"} 3' in body
        # the request-latency sketch renders as a summary with quantiles
        assert "# TYPE repro_service_request_latency summary" in body
        assert 'repro_service_request_latency{quantile="0.5"}' in body
        assert "repro_service_requests_total" in body
        # ?format=prom negotiates text without any Accept header
        assert "repro_service_queue_depth_current" in body2
        # the JSON default keeps its shape, now with monitor snapshots
        assert json_payload["jobs"] == {"COMPLETED": 3}
        assert json_payload["monitors"]["service.request_latency"][
            "kind"
        ] == "quantile_sketch"

    def test_chaos_fail_node_recovers(self, trace_jobs):
        def scenario(client, service):
            ids = [client.submit(j) for j in trace_jobs[:15]]
            # crash whichever node is carrying live work
            for view in map(client.status, ids):
                if view.status is JobStatus.RUNNING and view.node_id is not None:
                    lost = client.fail_node(view.node_id)
                    break
            else:
                lost = []
            views = client.wait(ids, timeout=60.0)
            return lost, views

        lost, views = run_gateway(scenario)
        assert all(v.terminal for v in views.values())
        for job_id in lost:
            assert views[job_id].status in (
                JobStatus.COMPLETED,
                JobStatus.ABANDONED,
            )


class TestHttpErrors:
    def test_unknown_job_is_404(self, trace_jobs):
        def scenario(client, service):
            with pytest.raises(ServiceError) as excinfo:
                client.status(987654)
            return excinfo.value.status

        assert run_gateway(scenario) == 404

    def test_cancel_completed_is_409(self, trace_jobs):
        def scenario(client, service):
            job_id = client.submit(trace_jobs[0])
            client.wait([job_id], timeout=30.0)
            with pytest.raises(ServiceError) as excinfo:
                client.cancel(job_id)
            return excinfo.value.status

        assert run_gateway(scenario) == 409

    def test_bad_spec_is_400(self, trace_jobs):
        def scenario(client, service):
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/jobs", {"nonsense": True})
            status_bad_spec = excinfo.value.status
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/no/such/route")
            return status_bad_spec, excinfo.value.status

        assert run_gateway(scenario) == (400, 404)

    def test_torn_request_does_not_kill_the_server(self, trace_jobs):
        def scenario(client, service):
            with socket.create_connection(
                (client.host, client.port), timeout=5.0
            ) as raw:
                raw.sendall(b"GARBAGE\r\n\r\n")
                raw.recv(1024)
            # the server must still answer real requests afterwards
            return client.health()["status"]

        assert run_gateway(scenario) == "ok"

    def test_unknown_status_filter_is_400(self, trace_jobs):
        def scenario(client, service):
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/jobs?status=bogus")
            return excinfo.value.status

        assert run_gateway(scenario) == 400
