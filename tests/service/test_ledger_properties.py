"""Property test: arbitrary interleavings keep the ledger's accounting whole.

Each job follows one of the lifecycle scripts a live service can produce
(clean run, retry-then-run, crash-and-recover, abandon, cancel…).
Hypothesis interleaves the scripts' steps arbitrarily — the serialized
order jobs' transitions can reach the ledger in — and after *every* step
the ledger must still partition its jobs exactly, with the terminal
census matching a :class:`MatchmakingResult`-style bucket count:
``placed + unplaced/abandoned + cancelled + in-flight == submitted``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.ledger import (
    TERMINAL_STATES,
    JobLedger,
    JobStatus,
    MemoryBackend,
)

SPEC = {
    "job_id": None,
    "submit_time": 0.0,
    "base_duration": 60.0,
    "requirements": {
        "cpu": {"cores": 1, "clock": 1.0, "memory": 1.0, "disk": 1.0}
    },
}

#: lifecycle scripts mirroring the service's real code paths
SCRIPTS = [
    # clean placement and execution
    [JobStatus.MATCHED, JobStatus.RUNNING, JobStatus.COMPLETED],
    # no capacity at submit, then placed
    [JobStatus.RETRYING, JobStatus.MATCHED, JobStatus.RUNNING, JobStatus.COMPLETED],
    # lost to a node crash, recovered on another node
    [
        JobStatus.MATCHED,
        JobStatus.RUNNING,
        JobStatus.FAILED,
        JobStatus.RETRYING,
        JobStatus.MATCHED,
        JobStatus.RUNNING,
        JobStatus.COMPLETED,
    ],
    # lost, retry budget exhausted
    [JobStatus.MATCHED, JobStatus.FAILED, JobStatus.RETRYING, JobStatus.ABANDONED],
    # never placeable
    [JobStatus.RETRYING, JobStatus.ABANDONED],
    # user cancels while queued
    [JobStatus.MATCHED, JobStatus.CANCELLED],
    # user cancels before placement
    [JobStatus.CANCELLED],
    # still in flight when we stop looking
    [JobStatus.MATCHED, JobStatus.RUNNING],
    [JobStatus.RETRYING],
]


def check_accounting(ledger: JobLedger, submitted: int) -> None:
    counts = ledger.counts()
    assert sum(counts.values()) == submitted
    placed = counts.get(JobStatus.COMPLETED, 0)
    abandoned = counts.get(JobStatus.ABANDONED, 0)
    cancelled = counts.get(JobStatus.CANCELLED, 0)
    in_flight = len(ledger.in_flight())
    # the MatchmakingResult identity, phrased over ledger buckets
    assert placed + abandoned + cancelled + in_flight == submitted
    # in-flight is exactly the non-terminal complement
    assert in_flight == submitted - sum(
        counts.get(s, 0) for s in TERMINAL_STATES
    )


@settings(max_examples=60, deadline=None)
@given(
    scripts=st.lists(
        st.sampled_from(range(len(SCRIPTS))), min_size=1, max_size=12
    ),
    data=st.data(),
)
def test_interleaved_lifecycles_preserve_accounting(scripts, data):
    ledger = JobLedger(MemoryBackend())
    remaining = {}
    for index in scripts:
        record = ledger.submit(SPEC, now=0.0)
        remaining[record.job_id] = list(SCRIPTS[index])
    submitted = len(remaining)
    check_accounting(ledger, submitted)

    step = 0
    while any(remaining.values()):
        live = [jid for jid, steps in remaining.items() if steps]
        job_id = data.draw(st.sampled_from(live), label="next job")
        status = remaining[job_id].pop(0)
        step += 1
        ledger.transition(job_id, status, now=float(step))
        check_accounting(ledger, submitted)

    # completed jobs completed exactly once; every expected final state holds
    for job_id in remaining:
        record = ledger.record(job_id)
        assert ledger.completions(job_id) <= 1
        if record.status is JobStatus.COMPLETED:
            assert ledger.completions(job_id) == 1
