"""Restart survival: orphan recovery after abrupt death, in-process and kill -9.

The in-process test drives two successive :class:`GridService` instances
over the same sqlite file under a dilated ``AsyncioClock`` — the wall-clock
analogue of ``tests/service/test_core.py::TestRestartRecovery``.  The
subprocess test is the acceptance criterion verbatim: ``kill -9`` a serving
gateway mid-workload, restart it on the same ledger, and prove the replay
completes with accounting intact and zero duplicate executions.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.gridsim.invariants import check_service_accounting
from repro.service import (
    AsyncioClock,
    Gateway,
    GridService,
    JobLedger,
    JobStatus,
    ServiceClient,
    ServiceConfig,
    SqliteBackend,
    TERMINAL_STATES,
)
from repro.service.replay import record_trace
from repro.workload.presets import TINY_LOAD
from repro.workload.trace import load_jobs

DILATION = 2_000.0
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("wl") / "workload.jsonl")
    record_trace(TINY_LOAD, path)
    return path


def ledger_census(db_path):
    """Read a ledger's status census without a service attached."""
    ledger = JobLedger(SqliteBackend(db_path))
    try:
        counts = {s.value: n for s, n in ledger.counts().items() if n}
        in_flight = len(ledger.in_flight())
        completions = {
            r.job_id: ledger.completions(r.job_id) for r in ledger.records()
        }
    finally:
        ledger.close()
    return counts, in_flight, completions


class TestInProcessRestart:
    def test_orphans_drain_after_restart_on_dilated_clock(
        self, tmp_path, trace_path
    ):
        db = str(tmp_path / "ledger.sqlite")
        jobs = load_jobs(trace_path)[:20]

        async def first_life():
            loop = asyncio.get_running_loop()
            clock = AsyncioClock(loop=loop, dilation=DILATION)
            ledger = JobLedger(SqliteBackend(db), clock=clock)
            service = GridService(
                ServiceConfig(preset=TINY_LOAD), ledger, clock
            )
            gateway = Gateway(service)
            await gateway.start()
            client = ServiceClient(gateway.url, timeout=30.0)
            ids = await asyncio.to_thread(
                lambda: [client.submit(j) for j in jobs]
            )
            # give the engine a moment so some jobs are MATCHED/RUNNING,
            # then drop everything without a clean stop — no transitions
            # are written; the sqlite file is left mid-flight
            await asyncio.sleep(0.2)
            in_flight = len(ledger.in_flight())
            gateway._server.close()
            ledger.close()
            return ids, in_flight

        ids, in_flight = asyncio.run(first_life())
        assert in_flight > 0, "first life drained before the crash point"

        async def second_life():
            loop = asyncio.get_running_loop()
            ledger = JobLedger(SqliteBackend(db))
            origin = max(
                (r.updated_at for r in ledger.records()), default=0.0
            )
            clock = AsyncioClock(
                loop=loop, dilation=DILATION, origin=origin
            )
            ledger.clock = clock
            service = GridService(
                ServiceConfig(preset=TINY_LOAD), ledger, clock
            )
            gateway = Gateway(service)
            await gateway.start()  # start() runs recover()
            client = ServiceClient(gateway.url, timeout=30.0)
            try:
                views = await asyncio.to_thread(
                    client.wait, ids, 60.0
                )
                check_service_accounting(service, final=True)
                completions = {i: service.ledger.completions(i) for i in ids}
                return views, completions
            finally:
                await gateway.stop()
                ledger.close()

        views, completions = asyncio.run(second_life())
        assert set(views) == set(ids)
        assert all(v.terminal for v in views.values())
        # clock origin resumed past the first life's persisted timestamps,
        # so no terminal record can predate its own submission
        for view in views.values():
            assert view.updated_at >= view.submitted_at
        # the headline invariant: zero duplicate executions across restart
        for job_id, count in completions.items():
            assert count <= 1
            if views[job_id].status is JobStatus.COMPLETED:
                assert count == 1


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_server(db, port, dilation=300.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--db",
            db,
            "--port",
            str(port),
            "--dilation",
            str(dilation),
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    url = f"http://127.0.0.1:{port}"
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server died on startup (rc={proc.returncode})")
        try:
            with urllib.request.urlopen(f"{url}/health", timeout=1.0) as resp:
                if json.load(resp)["status"] == "ok":
                    return proc, url
        except OSError:
            time.sleep(0.1)
    proc.kill()
    raise RuntimeError("server did not come up within 20s")


class TestKillDashNine:
    def test_sigkill_mid_workload_then_restart_completes(
        self, tmp_path, trace_path
    ):
        db = str(tmp_path / "ledger.sqlite")
        port = free_port()
        jobs = load_jobs(trace_path)[:30]

        proc, url = spawn_server(db, port)
        try:
            client = ServiceClient(url, timeout=30.0)
            ids = [client.submit(j) for j in jobs]
        finally:
            # no drain, no shutdown hooks: the hard-kill acceptance case
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10.0)

        counts, in_flight, _ = ledger_census(db)
        assert sum(counts.values()) == len(ids)
        assert in_flight > 0, "kill landed after the workload drained"

        proc, url = spawn_server(db, free_port())
        try:
            client = ServiceClient(url, timeout=30.0)
            views = client.wait(ids, timeout=90.0)
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10.0)

        assert all(v.terminal for v in views.values())
        counts, in_flight, completions = ledger_census(db)
        assert in_flight == 0
        assert sum(counts.values()) == len(ids)
        terminal = sum(counts.get(s.value, 0) for s in TERMINAL_STATES)
        assert terminal == len(ids)
        # zero duplicate executions: at most one RUNNING->COMPLETED edge
        # per job across both server lives
        for job_id in ids:
            assert completions[job_id] <= 1
            if views[job_id].status is JobStatus.COMPLETED:
                assert completions[job_id] == 1
