"""GridService under the DES clock: placement, retries, crashes, restarts."""

from __future__ import annotations

import pytest

from repro.gridsim.invariants import check_service_accounting
from repro.gridsim.recovery import RetryPolicy
from repro.service.core import CancelError, GridService, ServiceConfig
from repro.service.ledger import JobLedger, JobStatus, SqliteBackend, open_ledger
from repro.sim.clock import SimClock
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry
from repro.workload.jobs import JobDistribution, generate_jobs
from repro.workload.nodes import generate_node_specs
from repro.workload.presets import TINY_LOAD
from repro.workload.trace import job_to_dict

HORIZON = 500_000.0


def preset_specs(jobs=20):
    rngs = RngRegistry(TINY_LOAD.seed)
    specs = generate_node_specs(
        TINY_LOAD.nodes, TINY_LOAD.gpu_slots, rngs.stream("nodes")
    )
    stream = generate_jobs(
        jobs,
        specs,
        TINY_LOAD.gpu_slots,
        TINY_LOAD.mean_interarrival,
        rngs.stream("jobs"),
        JobDistribution().with_constraint_ratio(TINY_LOAD.constraint_ratio),
    )
    return [job_to_dict(job) for job in stream]


def build_service(ledger=None, **config_kwargs):
    env = Environment()
    clock = SimClock(env)
    if ledger is None:
        ledger = open_ledger(None, clock=clock)
    else:
        ledger.clock = clock
    config = ServiceConfig(preset=TINY_LOAD, **config_kwargs)
    service = GridService(config, ledger, clock)
    return env, service


IMPOSSIBLE = {
    "job_id": None,
    "submit_time": 0.0,
    "base_duration": 10.0,
    # no node has a 10 GHz CPU in any preset's population
    "requirements": {
        "cpu": {"cores": 1, "clock": 10_000.0, "memory": 0.0, "disk": 0.0}
    },
}


class TestHappyPath:
    def test_workload_drains_to_completed(self):
        env, service = build_service()
        service.start()
        ids = [service.submit(spec) for spec in preset_specs(25)]
        env.run(until=HORIZON)
        counts = service.ledger.counts()
        assert counts[JobStatus.COMPLETED] == 25
        assert service.quiesced()
        check_service_accounting(service, final=True)
        # every id audit-trails exactly one completion
        for job_id in ids:
            assert service.ledger.completions(job_id) == 1

    def test_status_flow_is_ledgered(self):
        env, service = build_service()
        service.start()
        job_id = service.submit(preset_specs(1)[0])
        assert service.ledger.record(job_id).status in (
            JobStatus.MATCHED,
            JobStatus.RUNNING,
        )
        env.run(until=HORIZON)
        assert service.ledger.record(job_id).status is JobStatus.COMPLETED

    def test_health_snapshot(self):
        env, service = build_service()
        service.start()
        service.submit(preset_specs(1)[0])
        health = service.health()
        assert health["population"] == TINY_LOAD.nodes
        assert health["status"] == "ok"
        assert sum(health["jobs"].values()) == 1


class TestRetriesAndAbandonment:
    def test_impossible_job_is_abandoned_after_budget(self):
        env, service = build_service(
            retry=RetryPolicy(max_attempts=3, jitter=0.0)
        )
        service.start()
        job_id = service.submit(dict(IMPOSSIBLE))
        assert service.ledger.record(job_id).status is JobStatus.RETRYING
        env.run(until=HORIZON)
        record = service.ledger.record(job_id)
        assert record.status is JobStatus.ABANDONED
        assert record.attempts == 3
        check_service_accounting(service, final=True)

    def test_cancel_retrying_job(self):
        env, service = build_service()
        service.start()
        job_id = service.submit(dict(IMPOSSIBLE))
        service.cancel(job_id)
        assert service.ledger.record(job_id).status is JobStatus.CANCELLED
        env.run(until=HORIZON)  # the cancelled retry timer must not fire
        assert service.ledger.record(job_id).status is JobStatus.CANCELLED
        check_service_accounting(service, final=True)

    def test_cancel_running_job_refused(self):
        env, service = build_service()
        service.start()
        job_id = service.submit(preset_specs(1)[0])
        env.run(until=env.now + 1.0)
        assert service.ledger.record(job_id).status is JobStatus.RUNNING
        with pytest.raises(CancelError):
            service.cancel(job_id)

    def test_cancel_completed_job_refused(self):
        env, service = build_service()
        service.start()
        job_id = service.submit(preset_specs(1)[0])
        env.run(until=HORIZON)
        with pytest.raises(CancelError):
            service.cancel(job_id)


class TestNodeCrash:
    def test_lost_jobs_recover_through_heartbeat_detection(self):
        env, service = build_service()
        service.start()
        ids = [service.submit(spec) for spec in preset_specs(30)]
        env.run(until=env.now + 1.0)
        # crash the node carrying the most live jobs
        busiest = max(
            service.grid_nodes.values(),
            key=lambda n: n.queued_jobs() + n.running_jobs(),
        )
        lost = service.fail_node(busiest.node_id)
        assert lost, "expected in-flight jobs on the busiest node"
        for job_id in lost:
            assert service.ledger.record(job_id).status is JobStatus.FAILED
        env.run(until=HORIZON)
        # every job resolved terminally: re-placed and completed, or
        # abandoned if the crashed node was its only capable host
        counts = service.ledger.counts()
        completed = counts.get(JobStatus.COMPLETED, 0)
        abandoned = counts.get(JobStatus.ABANDONED, 0)
        assert completed + abandoned == len(ids)
        assert completed >= len(ids) - len(lost)
        assert service.tracker.balances()
        assert service.tracker.resubmissions + service.tracker.abandonments >= len(lost)
        for job_id in ids:
            assert service.ledger.completions(job_id) <= 1
        check_service_accounting(service, final=True)

    def test_crash_without_heartbeat_detects_inline(self):
        env, service = build_service(heartbeat=False)
        service.start()
        [service.submit(spec) for spec in preset_specs(10)]
        env.run(until=env.now + 1.0)
        victim = max(
            service.grid_nodes.values(),
            key=lambda n: n.queued_jobs() + n.running_jobs(),
        )
        service.fail_node(victim.node_id)
        env.run(until=HORIZON)
        assert service.ledger.counts()[JobStatus.COMPLETED] == 10
        check_service_accounting(service, final=True)


class TestRestartRecovery:
    def test_orphans_recovered_from_persistent_ledger(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")

        env1, service1 = build_service(JobLedger(SqliteBackend(path)))
        service1.start()
        ids = [service1.submit(spec) for spec in preset_specs(20)]
        env1.run(until=env1.now + 300.0)  # mid-flight: jobs queued + running
        in_flight = service1.ledger.in_flight()
        assert in_flight, "kill landed too late to be interesting"
        service1.ledger.close()  # simulate an abrupt process death

        env2, service2 = build_service(JobLedger(SqliteBackend(path)))
        service2.start()  # start() runs recover()
        orphans = [
            r.job_id
            for r in (service2.ledger.record(i) for i in ids)
            if r.status is not JobStatus.COMPLETED
        ]
        assert orphans, "restart should have found in-flight jobs"
        env2.run(until=HORIZON)

        counts = service2.ledger.counts()
        assert sum(counts.values()) == len(ids)
        terminal = (
            counts.get(JobStatus.COMPLETED, 0)
            + counts.get(JobStatus.ABANDONED, 0)
            + counts.get(JobStatus.CANCELLED, 0)
        )
        assert terminal == len(ids)
        # restart recovery must never duplicate an execution
        for job_id in ids:
            assert service2.ledger.completions(job_id) <= 1
        assert service2.tracker.balances()
        check_service_accounting(service2, final=True)

    def test_recover_counts_only_in_flight(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        env1, service1 = build_service(JobLedger(SqliteBackend(path)))
        service1.start()
        ids = [service1.submit(spec) for spec in preset_specs(5)]
        env1.run(until=HORIZON)  # drain completely
        assert service1.quiesced()
        service1.ledger.close()

        env2, service2 = build_service(JobLedger(SqliteBackend(path)))
        assert service2.recover() == 0  # nothing in flight, nothing re-enters
        for job_id in ids:
            assert service2.ledger.completions(job_id) == 1
