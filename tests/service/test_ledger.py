"""JobLedger state machine and backend persistence."""

from __future__ import annotations

import pytest

from repro.service.ledger import (
    LEGAL_TRANSITIONS,
    TERMINAL_STATES,
    IllegalTransition,
    JobLedger,
    JobStatus,
    MemoryBackend,
    SqliteBackend,
    open_ledger,
)

SPEC = {
    "job_id": None,
    "submit_time": 0.0,
    "base_duration": 60.0,
    "requirements": {
        "cpu": {"cores": 1, "clock": 1.0, "memory": 1.0, "disk": 1.0}
    },
}

#: a shortest transition path from SUBMITTED into every status
PATHS = {
    JobStatus.SUBMITTED: [],
    JobStatus.MATCHED: [JobStatus.MATCHED],
    JobStatus.RUNNING: [JobStatus.MATCHED, JobStatus.RUNNING],
    JobStatus.COMPLETED: [
        JobStatus.MATCHED,
        JobStatus.RUNNING,
        JobStatus.COMPLETED,
    ],
    JobStatus.FAILED: [JobStatus.MATCHED, JobStatus.FAILED],
    JobStatus.RETRYING: [JobStatus.RETRYING],
    JobStatus.ABANDONED: [
        JobStatus.MATCHED,
        JobStatus.FAILED,
        JobStatus.ABANDONED,
    ],
    JobStatus.CANCELLED: [JobStatus.CANCELLED],
}


@pytest.fixture(params=["memory", "sqlite"])
def ledger(request, tmp_path):
    if request.param == "memory":
        led = JobLedger(MemoryBackend())
    else:
        led = JobLedger(SqliteBackend(str(tmp_path / "ledger.sqlite")))
    yield led
    led.close()


def bring_to(ledger: JobLedger, status: JobStatus) -> int:
    record = ledger.submit(SPEC, now=0.0)
    for step in PATHS[status]:
        ledger.transition(record.job_id, step, now=1.0)
    assert ledger.record(record.job_id).status is status
    return record.job_id


class TestStateMachine:
    def test_submit_starts_submitted(self, ledger):
        record = ledger.submit(SPEC, now=3.0)
        assert record.status is JobStatus.SUBMITTED
        assert record.submitted_at == 3.0
        assert not record.terminal

    @pytest.mark.parametrize(
        "frm,to",
        [(f, t) for f, tos in LEGAL_TRANSITIONS.items() for t in tos],
        ids=lambda s: s.value if isinstance(s, JobStatus) else s,
    )
    def test_every_legal_transition(self, ledger, frm, to):
        job_id = bring_to(ledger, frm)
        updated = ledger.transition(job_id, to, now=5.0)
        assert updated.status is to
        assert updated.updated_at == 5.0

    @pytest.mark.parametrize(
        "frm,to",
        [
            (f, t)
            for f in JobStatus
            for t in JobStatus
            if t not in LEGAL_TRANSITIONS[f]
        ],
        ids=lambda s: s.value if isinstance(s, JobStatus) else s,
    )
    def test_every_illegal_transition_raises(self, ledger, frm, to):
        job_id = bring_to(ledger, frm)
        with pytest.raises(IllegalTransition) as excinfo:
            ledger.transition(job_id, to, now=5.0)
        assert excinfo.value.frm is frm
        assert excinfo.value.to is to
        # the failed transition changed nothing
        assert ledger.record(job_id).status is frm

    def test_terminal_states_have_no_exits(self):
        for status in TERMINAL_STATES:
            assert LEGAL_TRANSITIONS[status] == frozenset()

    def test_every_status_is_reachable(self):
        assert set(PATHS) == set(JobStatus)

    def test_unknown_job_raises_keyerror(self, ledger):
        with pytest.raises(KeyError):
            ledger.transition(999, JobStatus.MATCHED)
        with pytest.raises(KeyError):
            ledger.record(999)


class TestRecordFields:
    def test_node_id_kept_unless_overridden(self, ledger):
        job_id = bring_to(ledger, JobStatus.SUBMITTED)
        ledger.transition(job_id, JobStatus.MATCHED, now=1.0, node_id=17)
        running = ledger.transition(job_id, JobStatus.RUNNING, now=2.0)
        assert running.node_id == 17  # default: keep
        failed = ledger.transition(
            job_id, JobStatus.FAILED, now=3.0, node_id=None
        )
        assert failed.node_id is None  # explicit clear

    def test_attempts_and_detail(self, ledger):
        job_id = bring_to(ledger, JobStatus.SUBMITTED)
        updated = ledger.transition(
            job_id,
            JobStatus.RETRYING,
            now=1.0,
            attempts=3,
            detail="no capacity",
        )
        assert updated.attempts == 3
        assert updated.detail == "no capacity"

    def test_counts_partition_the_jobs(self, ledger):
        for status in (
            JobStatus.COMPLETED,
            JobStatus.COMPLETED,
            JobStatus.RUNNING,
            JobStatus.CANCELLED,
        ):
            bring_to(ledger, status)
        counts = ledger.counts()
        assert counts[JobStatus.COMPLETED] == 2
        assert counts[JobStatus.RUNNING] == 1
        assert counts[JobStatus.CANCELLED] == 1
        assert sum(counts.values()) == 4
        assert len(ledger.in_flight()) == 1  # only the RUNNING one

    def test_records_filter_by_status(self, ledger):
        bring_to(ledger, JobStatus.RUNNING)
        bring_to(ledger, JobStatus.COMPLETED)
        running = ledger.records(JobStatus.RUNNING)
        assert len(running) == 1
        assert running[0].status is JobStatus.RUNNING

    def test_completions_audit(self, ledger):
        done = bring_to(ledger, JobStatus.COMPLETED)
        live = bring_to(ledger, JobStatus.RUNNING)
        assert ledger.completions(done) == 1
        assert ledger.completions(live) == 0


class TestSqlitePersistence:
    def test_records_survive_reopen(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        led = JobLedger(SqliteBackend(path))
        done = bring_to(led, JobStatus.COMPLETED)
        orphan = bring_to(led, JobStatus.RUNNING)
        led.close()

        led2 = JobLedger(SqliteBackend(path))
        assert led2.record(done).status is JobStatus.COMPLETED
        rec = led2.record(orphan)
        assert rec.status is JobStatus.RUNNING
        assert rec.spec["base_duration"] == SPEC["base_duration"]
        assert [r.job_id for r in led2.in_flight()] == [orphan]
        # transition audit history survives too
        assert led2.completions(done) == 1
        led2.close()

    def test_job_ids_keep_increasing_after_reopen(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        led = JobLedger(SqliteBackend(path))
        first = led.submit(SPEC, now=0.0).job_id
        led.close()
        led2 = JobLedger(SqliteBackend(path))
        second = led2.submit(SPEC, now=1.0).job_id
        assert second > first
        led2.close()

    def test_wal_mode_is_active(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        backend = SqliteBackend(path)
        mode = backend._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"
        backend.close()

    def test_illegal_transition_not_persisted(self, tmp_path):
        path = str(tmp_path / "ledger.sqlite")
        led = JobLedger(SqliteBackend(path))
        job_id = bring_to(led, JobStatus.COMPLETED)
        with pytest.raises(IllegalTransition):
            led.transition(job_id, JobStatus.RUNNING)
        led.close()
        led2 = JobLedger(SqliteBackend(path))
        assert led2.record(job_id).status is JobStatus.COMPLETED
        led2.close()


def test_open_ledger_dispatches_backend(tmp_path):
    mem = open_ledger(None)
    assert isinstance(mem.backend, MemoryBackend)
    mem.close()
    disk = open_ledger(str(tmp_path / "led.sqlite"))
    assert isinstance(disk.backend, SqliteBackend)
    disk.close()
