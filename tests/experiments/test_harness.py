"""Integration tests for the figure-regeneration harness (tiny configs)."""

import os

import pytest

from repro.can.heartbeat import HeartbeatScheme
from repro.experiments import ablations, fig5, fig6, fig7, fig8, recovery
from repro.experiments.__main__ import main as cli_main
from repro.gridsim import ChurnSimulation
from repro.workload import TINY_LOAD


@pytest.fixture(scope="module")
def fig5_results():
    return fig5.run(
        preset=TINY_LOAD, interarrivals=(75.0,), schemes=("can-het", "central")
    )


class TestFig5:
    def test_structure(self, fig5_results):
        assert set(fig5_results) == {75.0}
        assert set(fig5_results[75.0]) == {"can-het", "central"}

    def test_report_and_csv(self, fig5_results, tmp_path):
        text = fig5.report(fig5_results, str(tmp_path))
        assert "Figure 5" in text
        assert "can-het" in text and "central" in text
        assert os.path.exists(tmp_path / "fig5_wait_time_cdf.csv")


class TestFig6:
    def test_run_and_report(self, tmp_path):
        results = fig6.run(
            preset=TINY_LOAD, ratios=(0.4,), schemes=("can-het",)
        )
        text = fig6.report(results, str(tmp_path))
        assert "constraint ratio 40%" in text
        assert os.path.exists(tmp_path / "fig6_wait_time_cdf.csv")


class TestFig7:
    def test_config_shapes(self):
        cfg = fig7.fig7_config(HeartbeatScheme.VANILLA, fast=True)
        assert cfg.dims == 11
        assert cfg.event_gap_mean < cfg.heartbeat_period  # high churn
        full = fig7.fig7_config(HeartbeatScheme.COMPACT, fast=False)
        assert full.initial_nodes >= 250
        assert full.duration >= 15_000

    def test_report(self, tmp_path):
        results = {}
        for scheme in HeartbeatScheme:
            cfg = fig7.fig7_config(scheme, fast=True, seed=1)
            from dataclasses import replace

            cfg = replace(cfg, initial_nodes=30, duration=1200.0)
            results[scheme.value] = ChurnSimulation(cfg).run()
        text = fig7.report(results, str(tmp_path))
        assert "Figure 7" in text and "vanilla" in text
        assert os.path.exists(tmp_path / "fig7_broken_links.csv")


class TestFig8:
    def test_run_and_report(self, tmp_path):
        results = fig8.run(fast=True, node_sweep=(25,), gpu_slot_sweep=(0, 1))
        assert len(results) == 2 * 3  # dims x schemes
        dims = {key[2] for key in results}
        assert dims == {5, 8}
        text = fig8.report(results, str(tmp_path))
        assert "Figure 8(a)" in text and "Figure 8(b)" in text
        assert os.path.exists(tmp_path / "fig8_scalability.csv")

    def test_fig8_config_slow_churn(self):
        cfg = fig8.fig8_config(HeartbeatScheme.VANILLA, 500, 2)
        assert cfg.event_gap_mean > cfg.heartbeat_period


class TestAblations:
    def test_single_ablation(self, tmp_path):
        results = ablations.run(
            preset=TINY_LOAD, ablations=("baseline", "acceptable-node")
        )
        text = ablations.report(results, str(tmp_path))
        assert "acceptable-node" in text
        assert os.path.exists(tmp_path / "ablations.csv")

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ValueError):
            ablations.run(preset=TINY_LOAD, ablations=("nonsense",))


class TestRecovery:
    def test_config_shapes(self):
        fast = recovery.recovery_config(HeartbeatScheme.VANILLA, fast=True)
        assert fast.detection_mode == "protocol"
        assert fast.faults.message_loss == recovery.MESSAGE_LOSS
        full = recovery.recovery_config(HeartbeatScheme.COMPACT, fast=False)
        assert full.matchmaking.preset.jobs > fast.matchmaking.preset.jobs
        assert full.heartbeat_scheme is HeartbeatScheme.COMPACT

    def test_run_and_report(self, tmp_path):
        results = recovery.run(fast=True)
        assert set(results) == {s.value for s in HeartbeatScheme}
        for res in results.values():
            assert res.detection_latencies.size > 0
        text = recovery.report(results, str(tmp_path))
        assert "detection" in text or "detect" in text
        assert os.path.exists(tmp_path / "recovery_latencies.csv")


class TestCli:
    def test_help(self, capsys):
        assert cli_main([]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert cli_main(["nope"]) == 2
