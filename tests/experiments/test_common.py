"""Unit tests for experiment-harness plumbing and public API surface."""

import os

import pytest

from repro.experiments.common import (
    SCHEMES,
    WAIT_GRID,
    experiment_argparser,
    results_path,
    timed,
)


class TestCommon:
    def test_argparser_flags(self):
        parser = experiment_argparser("desc")
        args = parser.parse_args(["--fast", "--out", "o", "--seed", "7"])
        assert args.fast and args.out == "o" and args.seed == 7
        defaults = parser.parse_args([])
        assert not defaults.fast and defaults.out == "results"
        assert defaults.seed is None

    def test_results_path_creates_dir(self, tmp_path):
        p = results_path(str(tmp_path / "sub"), "x.csv")
        assert os.path.isdir(tmp_path / "sub")
        assert p.endswith("x.csv")

    def test_timed_passes_through(self, capsys):
        assert timed("label", lambda a, b: a + b, 1, 2) == 3

    def test_wait_grid_matches_paper_axis(self):
        assert WAIT_GRID[0] == 0.0
        assert WAIT_GRID[-1] == 50_000.0  # Figures 5/6 x-axis limit
        assert list(WAIT_GRID) == sorted(WAIT_GRID)

    def test_schemes(self):
        assert SCHEMES == ("can-het", "can-hom", "central")


class TestPublicApi:
    def test_top_level_namespaces(self):
        import repro

        for name in repro.__all__:
            if name != "__version__":
                assert getattr(repro, name) is not None

    def test_all_exports_resolve(self):
        import repro.analysis as analysis
        import repro.can as can
        import repro.gridsim as gridsim
        import repro.model as model
        import repro.sched as sched
        import repro.sim as sim
        import repro.workload as workload

        for module in (analysis, can, gridsim, model, sched, sim, workload):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
