"""Unit tests for the EXPERIMENTS.md report generator."""

import os

import pytest

from repro.analysis import write_csv
from repro.experiments import report


@pytest.fixture
def results_dir(tmp_path):
    d = str(tmp_path / "results")
    write_csv(
        os.path.join(d, "fig5_wait_time_cdf.csv"),
        ["interarrival_s", "scheme", "wait_threshold_s", "cdf_percent"],
        [
            (2.0, "can-het", 0.0, 81.9),
            (2.0, "can-het", 1000.0, 86.5),
            (2.0, "central", 0.0, 86.0),
            (2.0, "central", 1000.0, 89.0),
        ],
    )
    write_csv(
        os.path.join(d, "fig7_broken_links.csv"),
        ["scheme", "time_s", "broken_links"],
        [("vanilla", t, 2.0) for t in range(8)]
        + [("compact", t, 40.0) for t in range(8)],
    )
    write_csv(
        os.path.join(d, "fig8_scalability.csv"),
        ["scheme", "nodes", "dims", "msgs_per_node_min", "kb_per_node_min"],
        [
            ("vanilla", 500, 5, 17.0, 65.0),
            ("vanilla", 500, 14, 48.0, 1058.0),
            ("compact", 500, 5, 17.0, 10.0),
            ("compact", 500, 14, 48.0, 68.0),
        ],
    )
    return d


class TestBuildTables:
    def test_builds_available_tables(self, results_dir):
        tables = report.build_tables(results_dir)
        assert set(tables) == {
            "FIG5_TABLE",
            "FIG7_TABLE",
            "FIG8A_TABLE",
            "FIG8B_TABLE",
        }
        assert "can-het" in tables["FIG5_TABLE"]
        assert "81.90" in tables["FIG5_TABLE"]

    def test_fig7_relative_factor(self, results_dir):
        t = report.build_tables(results_dir)["FIG7_TABLE"]
        assert "20.00×" in t  # compact = 40 / vanilla = 2

    def test_fig8_slope_fit(self, results_dir):
        t = report.build_tables(results_dir)["FIG8B_TABLE"]
        # vanilla 65 -> 1058 over d 5 -> 14 is slope ~2.7; compact ~1.9
        assert "2.7" in t

    def test_empty_dir(self, tmp_path):
        assert report.build_tables(str(tmp_path)) == {}


class TestRenderInto:
    def test_inserts_and_replaces(self, results_dir):
        tables = report.build_tables(results_dir)
        doc = "intro\n\n<!-- FIG5_TABLE -->\n\nafter\n"
        once = report.render_into(doc, tables)
        assert "| can-het |" in once
        assert once.count("<!-- FIG5_TABLE -->") == 1
        # idempotent: rendering again replaces, not duplicates
        twice = report.render_into(once, tables)
        assert twice == once

    def test_unknown_placeholder_untouched(self, results_dir):
        tables = report.build_tables(results_dir)
        doc = "<!-- SOMETHING_ELSE -->\n"
        assert report.render_into(doc, tables) == doc


class TestMain:
    def test_cli_roundtrip(self, results_dir, tmp_path):
        md = tmp_path / "EXP.md"
        md.write_text("# doc\n\n<!-- FIG7_TABLE -->\n\nend\n")
        rc = report.main(["--results", results_dir, "--file", str(md)])
        assert rc == 0
        assert "vanilla" in md.read_text()

    def test_cli_no_results(self, tmp_path):
        rc = report.main(
            ["--results", str(tmp_path), "--file", str(tmp_path / "x.md")]
        )
        assert rc == 1
