"""Smoke-render every checked-in figure from ``results/*.csv``.

Pins the rendering layer (``ascii_plot`` / ``format_table``) against the
real artifacts the experiments commit: each figure's CSV must still parse,
plot to a canvas of the requested shape, and survive a round trip to disk.
"""

import csv
import pathlib

import pytest

from repro.analysis.plotting import ascii_plot
from repro.analysis.tables import format_table

RESULTS = pathlib.Path(__file__).resolve().parents[2] / "results"

WIDTH, HEIGHT = 72, 20


def read_rows(name):
    path = RESULTS / name
    if not path.exists():
        pytest.skip(f"{name} not checked in")
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert rows, f"{name} is empty"
    return rows


def series_by(rows, key, x_col, y_col):
    """Group rows into ``{key value: (xs, ys)}`` plot series."""
    out = {}
    for row in rows:
        xs, ys = out.setdefault(str(row[key]), ([], []))
        xs.append(float(row[x_col]))
        ys.append(float(row[y_col]))
    return out


def assert_plot_shape(text, series):
    lines = text.splitlines()
    canvas = [line for line in lines if "|" in line]
    assert len(canvas) == HEIGHT
    assert all(len(line.split("|", 1)[1]) == WIDTH for line in canvas)
    # every series appears in the legend and leaves marks on the canvas
    for name in series:
        assert name in lines[-1]
    body = "".join(line.split("|", 1)[1] for line in canvas)
    assert body.strip(), "canvas is blank"


@pytest.mark.parametrize(
    "csv_name,key,x_col,y_col",
    [
        ("fig5_wait_time_cdf.csv", "scheme", "wait_threshold_s", "cdf_percent"),
        ("fig6_wait_time_cdf.csv", "scheme", "wait_threshold_s", "cdf_percent"),
        ("fig7_broken_links.csv", "scheme", "time_s", "broken_links"),
        ("fig8_scalability.csv", "scheme", "nodes", "msgs_per_node_min"),
    ],
)
def test_render_each_figure_to_tmp_dir(tmp_path, csv_name, key, x_col, y_col):
    rows = read_rows(csv_name)
    series = series_by(rows, key, x_col, y_col)
    assert len(series) >= 2, "figure should compare at least two schemes"
    text = ascii_plot(
        series,
        width=WIDTH,
        height=HEIGHT,
        title=csv_name,
        xlabel=x_col,
        ylabel=y_col,
    )
    assert_plot_shape(text, series)
    out = tmp_path / (csv_name.replace(".csv", ".txt"))
    out.write_text(text + "\n")
    assert out.read_text().splitlines()[0] == csv_name


def test_render_ablations_table(tmp_path):
    rows = read_rows("ablations.csv")
    headers = list(rows[0].keys())
    table = format_table(
        headers,
        [[row[h] for h in headers] for row in rows],
        title="Ablations",
    )
    lines = table.splitlines()
    assert lines[0] == "Ablations"
    assert set(lines[2]) <= {"-", " "}  # header rule
    assert len(lines) == 3 + len(rows)
    # column count is preserved on every body row
    assert all(len(line.split()) == len(headers) for line in lines[3:])
    out = tmp_path / "ablations.txt"
    out.write_text(table + "\n")
    assert out.stat().st_size > 0


def test_fig5_cdf_values_are_percentages():
    rows = read_rows("fig5_wait_time_cdf.csv")
    values = [float(row["cdf_percent"]) for row in rows]
    assert all(0.0 <= v <= 100.0 for v in values)


def test_fig8_rates_positive():
    rows = read_rows("fig8_scalability.csv")
    assert all(float(row["msgs_per_node_min"]) > 0 for row in rows)
