"""Atomicity and schema guarantees of the CSV/JSON writers."""

import csv
import json
import os

import pytest

from repro.analysis import atomic_write_text, write_csv, write_json


class TestAtomicWriteText:
    def test_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "out.txt")
        assert atomic_write_text(path, "hello") == path
        assert open(path).read() == "hello"

    def test_replaces_existing_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert open(path).read() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_leaves_target_untouched(self, tmp_path, monkeypatch):
        """If the rename step dies, the old file survives and no temp stays."""
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "precious")

        def broken_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            atomic_write_text(path, "half-written")
        monkeypatch.undo()
        assert open(path).read() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "deep" / "out.csv")
        write_csv(path, ["a", "b"], [(1, 2), (3, 4)])
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_row_width_mismatch_rejected_before_touching_file(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(path, ["a", "b"], [(1, 2)])
        with pytest.raises(ValueError):
            write_csv(path, ["a", "b"], [(1, 2), (3,)])
        with open(path, newline="") as fh:
            assert list(csv.reader(fh)) == [["a", "b"], ["1", "2"]]


class TestWriteJson:
    def test_sorted_pretty_round_trip(self, tmp_path):
        path = str(tmp_path / "m.json")
        write_json(path, {"b": 1, "a": {"z": [1, 2]}})
        raw = open(path).read()
        assert raw.endswith("\n")
        assert raw.index('"a"') < raw.index('"b"')
        assert json.loads(raw) == {"b": 1, "a": {"z": [1, 2]}}

    def test_non_json_values_stringified(self, tmp_path):
        path = str(tmp_path / "m.json")
        write_json(path, {"when": complex(1, 2)})
        assert json.loads(open(path).read())["when"] == "(1+2j)"
