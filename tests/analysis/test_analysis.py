"""Unit tests for reporting helpers: tables, plots, CSV export."""

import csv
import os

import pytest

from repro.analysis.export import results_dir, write_csv
from repro.analysis.plotting import ascii_plot
from repro.analysis.tables import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 22.125]], precision=2
        )
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1.50" in out and "22.12" in out

    def test_title(self):
        out = format_table(["x"], [["y"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_large_and_tiny_floats_use_scientific(self):
        out = format_table(["v"], [[1.5e9], [2.5e-7]])
        assert "e+" in out and "e-" in out

    def test_nan(self):
        out = format_table(["v"], [[float("nan")]])
        assert "nan" in out

    def test_alignment(self):
        out = format_table(["col"], [["a"], ["bbb"]])
        rows = out.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])


class TestAsciiPlot:
    def test_renders_series_and_legend(self):
        out = ascii_plot(
            {"one": ([0, 1, 2], [0, 1, 4]), "two": ([0, 1, 2], [4, 1, 0])},
            width=30,
            height=8,
            title="T",
            xlabel="x",
            ylabel="y",
        )
        assert out.splitlines()[0] == "T"
        assert "o=one" in out and "x=two" in out
        assert "x: x   y: y" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": ([], [])})

    def test_y_bounds_clamp(self):
        out = ascii_plot(
            {"s": ([0, 1], [50, 150])}, y_min=80.0, y_max=100.0, height=5
        )
        assert "100" in out and "80" in out

    def test_constant_series(self):
        out = ascii_plot({"s": ([0, 1], [5, 5])})
        assert "o" in out

    def test_non_finite_points_skipped(self):
        out = ascii_plot({"s": ([0, 1, 2], [1, float("nan"), 2])})
        assert "o" in out


class TestExport:
    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "sub" / "out.csv")
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_row_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "x.csv"), ["a"], [[1, 2]])

    def test_results_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        d = results_dir("resultados")
        assert os.path.isdir(d)
