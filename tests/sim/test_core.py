"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEnvironmentBasics:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(5.0).now == 5.0

    def test_timeout_advances_clock(self, env):
        done = []

        def proc(env):
            yield env.timeout(3.5)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [3.5]

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_run_until_stops_at_limit(self, env):
        log = []

        def proc(env):
            for _ in range(10):
                yield env.timeout(1.0)
                log.append(env.now)

        env.process(proc(env))
        env.run(until=4.5)
        assert log == [1.0, 2.0, 3.0, 4.0]
        assert env.now == 4.5

    def test_run_until_past_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_run_continues_after_until(self, env):
        log = []

        def proc(env):
            for _ in range(3):
                yield env.timeout(2.0)
                log.append(env.now)

        env.process(proc(env))
        env.run(until=3.0)
        assert log == [2.0]
        env.run()
        assert log == [2.0, 4.0, 6.0]

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_step_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_stop_from_callback(self, env):
        env.schedule_callback(1.0, lambda: env.stop("halted"))
        env.schedule_callback(2.0, lambda: pytest.fail("must not run"))
        assert env.run() == "halted"
        assert env.now == 1.0


class TestEventOrdering:
    def test_same_time_fifo(self, env):
        order = []
        for i in range(5):
            env.schedule_callback(1.0, lambda i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_ordering(self, env):
        order = []
        for delay in (3.0, 1.0, 2.0):
            env.schedule_callback(delay, lambda d=delay: order.append(d))
        env.run()
        assert order == [1.0, 2.0, 3.0]

    def test_deterministic_replay(self):
        def trace():
            env = Environment()
            log = []

            def worker(env, name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))
                yield env.timeout(delay)
                log.append((env.now, name))

            for i in range(5):
                env.process(worker(env, f"w{i}", 1.0 + i * 0.5))
            env.run()
            return log

        assert trace() == trace()


class TestEvents:
    def test_succeed_delivers_value(self, env):
        ev = env.event()
        got = []

        def proc(env, ev):
            got.append((yield ev))

        env.process(proc(env, ev))
        env.schedule_callback(2.0, lambda: ev.succeed(42))
        env.run()
        assert got == [42]

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_raises_in_process(self, env):
        caught = []

        def proc(env, ev):
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        ev = env.event()
        env.process(proc(env, ev))
        env.schedule_callback(1.0, lambda: ev.fail(RuntimeError("boom")))
        env.run()
        assert caught == ["boom"]

    def test_yield_already_processed_event(self, env):
        ev = env.timeout(0.5, value="early")
        got = []

        def proc(env):
            yield env.timeout(2.0)
            got.append((yield ev))  # fired long ago

        env.process(proc(env))
        env.run()
        assert got == ["early"]


class TestProcesses:
    def test_return_value_becomes_event_value(self, env):
        def child(env):
            yield env.timeout(1.0)
            return "result"

        def parent(env):
            value = yield env.process(child(env))
            parent_got.append(value)

        parent_got = []
        env.process(parent(env))
        env.run()
        assert parent_got == ["result"]

    def test_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise ValueError("child died")

        caught = []

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                caught.append(str(exc))

        env.process(parent(env))
        env.run()
        assert caught == ["child died"]

    def test_non_event_yield_fails_process(self, env):
        def bad(env):
            yield 42

        proc = env.process(bad(env))
        env.run()
        assert not proc.ok
        assert isinstance(proc.value, SimulationError)

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_interrupt(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
                log.append("finished")
            except Interrupt as intr:
                log.append(("interrupted", intr.cause, env.now))

        proc = env.process(sleeper(env))
        env.schedule_callback(5.0, lambda: proc.interrupt("wake"))
        env.run()
        assert log == [("interrupted", "wake", 5.0)]

    def test_interrupt_terminated_raises(self, env):
        def quick(env):
            yield env.timeout(1.0)

        proc = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_is_alive(self, env):
        def quick(env):
            yield env.timeout(1.0)

        proc = env.process(quick(env))
        assert proc.is_alive
        env.run()
        assert not proc.is_alive


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        done = []

        def proc(env):
            yield env.all_of([env.timeout(1.0), env.timeout(3.0)])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [3.0]

    def test_any_of_fires_on_first(self, env):
        done = []

        def proc(env):
            yield env.any_of([env.timeout(5.0), env.timeout(2.0)])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [2.0]

    def test_all_of_empty_fires_immediately(self, env):
        done = []

        def proc(env):
            yield env.all_of([])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [0.0]

    def test_mixed_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            env.all_of([env.timeout(1.0), other.timeout(1.0)])
