"""The Clock seam: both backends drive the same protocol code identically."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.aclock import AsyncioClock
from repro.sim.clock import CallbackHandle, Clock, SimClock
from repro.sim.core import Environment

from ..conftest import cpu_job, make_grid_node

#: model seconds per wall second in the asyncio backend's tests — high
#: enough that a 100-model-second scenario runs in ~50 ms of wall time
DILATION = 2_000.0


class SimDriver:
    """DES backend: advancing is running the kernel to a virtual time."""

    name = "sim"

    def __init__(self):
        self.env = Environment()
        self.clock = SimClock(self.env)

    def advance(self, model_seconds: float) -> None:
        self.env.run(until=self.env.now + model_seconds)

    def close(self) -> None:
        pass


class AsyncioDriver:
    """Wall-clock backend: advancing is sleeping dilated wall time."""

    name = "asyncio"

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.clock = AsyncioClock(loop=self.loop, dilation=DILATION)

    def advance(self, model_seconds: float) -> None:
        # +25% slack absorbs scheduler latency; assertions below are
        # written to hold under that slack on both backends
        self.loop.run_until_complete(
            asyncio.sleep(model_seconds * 1.25 / DILATION)
        )

    def close(self) -> None:
        self.loop.close()


@pytest.fixture(params=[SimDriver, AsyncioDriver], ids=["sim", "asyncio"])
def driver(request):
    d = request.param()
    yield d
    d.close()


class TestClockContract:
    def test_now_starts_near_zero_and_advances(self, driver):
        # "near zero" must tolerate scheduler latency between the clock's
        # construction and this read: at dilation 2000 even a millisecond
        # of wall time is 2 model seconds, so bound by a fraction of the
        # 100-model-second advance rather than an absolute sliver
        start = driver.clock.now
        assert start < 20.0
        driver.advance(100.0)
        assert driver.clock.now >= start + 100.0

    def test_one_shot_fires_once_after_delay(self, driver):
        fired = []
        driver.clock.schedule_callback(50.0, lambda: fired.append(driver.clock.now))
        driver.advance(20.0)
        assert fired == []
        driver.advance(80.0)
        assert len(fired) == 1
        assert fired[0] >= 50.0
        driver.advance(100.0)
        assert len(fired) == 1

    def test_cancel_prevents_firing(self, driver):
        fired = []
        handle = driver.clock.schedule_callback(50.0, lambda: fired.append(1))
        assert isinstance(handle, CallbackHandle)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled
        handle.cancel()  # idempotent
        driver.advance(200.0)
        assert fired == []

    def test_call_every_repeats_until_cancelled(self, driver):
        fired = []
        handle = driver.clock.call_every(30.0, lambda: fired.append(1))
        driver.advance(100.0)
        assert len(fired) >= 3
        handle.cancel()
        seen = len(fired)
        driver.advance(100.0)
        assert len(fired) == seen

    def test_call_every_start_delay(self, driver):
        fired = []
        driver.clock.call_every(1_000.0, lambda: fired.append(1), start_delay=10.0)
        driver.advance(50.0)
        assert len(fired) == 1

    def test_call_every_rejects_bad_period(self, driver):
        with pytest.raises(ValueError):
            driver.clock.call_every(0.0, lambda: None)

    def test_grid_node_runs_jobs_on_either_backend(self, driver):
        """The job engine is protocol code: unchanged under both clocks."""
        finished = []
        node = make_grid_node(
            driver.clock,
            on_job_finished=lambda n, j: finished.append(j.job_id),
        )
        node.submit(cpu_job(duration=40.0, job_id=7))
        driver.advance(10.0)
        assert finished == []
        assert node.running_jobs() == 1
        driver.advance(60.0)
        assert finished == [7]
        assert node.is_free()


def test_asyncio_clock_validates_dilation():
    with pytest.raises(ValueError):
        AsyncioClock(loop=asyncio.new_event_loop(), dilation=0.0)


def test_asyncio_clock_origin_offsets_model_time():
    loop = asyncio.new_event_loop()
    try:
        clock = AsyncioClock(loop=loop, dilation=1.0, origin=1234.5)
        assert clock.now >= 1234.5
    finally:
        loop.close()


def test_environment_satisfies_the_seam_shape():
    """GridNode and friends accept a bare Environment: same surface."""
    env = Environment()
    assert hasattr(env, "now") and callable(env.schedule_callback)
    clock = SimClock(env)
    assert isinstance(clock, Clock)


def test_protocol_modules_stay_asyncio_free():
    """The acceptance guard: heartbeat/matchmaking/recovery code imports
    no asyncio and branches on no clock backend — the seam is the only
    thing they see."""
    import repro.can.heartbeat
    import repro.gridsim.recovery
    import repro.model.node
    import repro.sched.base
    import repro.sched.can_het
    import repro.sched.can_hom
    import repro.sched.central
    import repro.sim.clock

    import ast

    for module in [
        repro.can.heartbeat,
        repro.gridsim.recovery,
        repro.model.node,
        repro.sched.base,
        repro.sched.can_het,
        repro.sched.can_hom,
        repro.sched.central,
        repro.sim.clock,
    ]:
        tree = ast.parse(open(module.__file__).read())
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Import):
                names = [alias.name for alias in stmt.names]
            elif isinstance(stmt, ast.ImportFrom):
                names = [stmt.module or ""]
            else:
                continue
            for name in names:
                assert not name.startswith("asyncio"), (
                    f"{module.__name__} imports asyncio"
                )
                assert "service" not in name, (
                    f"{module.__name__} imports the wall-clock layer"
                )
