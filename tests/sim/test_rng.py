"""Unit tests for named random streams."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("jobs").random(10)
        b = RngRegistry(42).stream("jobs").random(10)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        reg = RngRegistry(42)
        a = reg.stream("jobs").random(10)
        b = reg.stream("nodes").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("jobs").random(10)
        b = RngRegistry(2).stream("jobs").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("x") is reg.stream("x")

    def test_stream_independence_from_draw_order(self):
        # drawing from one stream must not shift another
        r1 = RngRegistry(7)
        r1.stream("a").random(1000)
        b1 = r1.stream("b").random(5)
        r2 = RngRegistry(7)
        b2 = r2.stream("b").random(5)
        assert np.array_equal(b1, b2)

    def test_spawn_derives_new_registry(self):
        parent = RngRegistry(3)
        child1 = parent.spawn(1)
        child2 = parent.spawn(2)
        assert child1.seed != child2.seed
        a = child1.stream("x").random(4)
        b = child2.stream("x").random(4)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")
        with pytest.raises(ValueError):
            RngRegistry(0).stream("")

    def test_iter_lists_created_streams(self):
        reg = RngRegistry(0)
        reg.stream("one")
        reg.stream("two")
        assert sorted(reg) == ["one", "two"]
