"""Property-based tests for the measurement primitives' edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.monitor import Counter, TimeSeries, TimeWeighted

finite_times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
finite_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestTimeWeightedProperties:
    def test_empty_mean_is_current_value(self):
        """With no elapsed time the mean degenerates to the current value."""
        tw = TimeWeighted()
        assert tw.mean(0.0) == 0.0
        tw = TimeWeighted(time=5.0, value=3.0)
        assert tw.mean(5.0) == 3.0

    @given(value=finite_values, start=finite_times)
    def test_zero_span_mean_never_divides_by_zero(self, value, start):
        tw = TimeWeighted(time=start, value=value)
        assert tw.mean(start) == value

    @given(
        start=finite_times,
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                finite_values,
            ),
            min_size=1,
            max_size=20,
        ),
        tail=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_mean_bounded_by_observed_values(self, start, steps, tail):
        """A time-weighted mean never escapes [min, max] of the signal."""
        tw = TimeWeighted(time=start, value=steps[0][1])
        seen = [steps[0][1]]
        t = start
        for gap, value in steps:
            t += gap
            tw.update(t, value)
            seen.append(value)
        mean = tw.mean(t + tail)
        tol = 1e-6 * max(1.0, max(abs(v) for v in seen))
        assert min(seen) - tol <= mean <= max(seen) + tol

    @given(t=finite_times, earlier=st.floats(min_value=1e-3, max_value=1e3))
    def test_time_going_backwards_rejected(self, t, earlier):
        tw = TimeWeighted(time=t, value=1.0)
        with pytest.raises(ValueError):
            tw.update(t - earlier, 2.0)
        with pytest.raises(ValueError):
            tw.mean(t - earlier)

    def test_constant_signal_mean_is_that_constant(self):
        tw = TimeWeighted(time=0.0, value=4.0)
        tw.update(10.0, 4.0)
        tw.update(25.0, 4.0)
        assert tw.mean(100.0) == pytest.approx(4.0)


class TestTimeSeriesProperties:
    def test_empty_series_edges(self):
        ts = TimeSeries("x")
        assert len(ts) == 0
        with pytest.raises(IndexError):
            ts.last()
        with pytest.raises(ValueError):
            ts.window_mean(0.0, 1.0)

    @given(
        times=st.lists(finite_times, min_size=2, max_size=20, unique=True),
    )
    def test_out_of_order_records_rejected(self, times):
        """Any non-sorted arrival order must raise, leaving order intact."""
        times = sorted(times)
        ts = TimeSeries("x")
        for t in times:
            ts.record(t, 0.0)
        with pytest.raises(ValueError):
            ts.record(times[-1] - (times[-1] - times[0]) / 2 - 1e-9, 0.0)
        assert list(ts.times) == times  # the bad sample was not appended

    @given(
        samples=st.lists(
            st.tuples(finite_times, finite_values), min_size=1, max_size=30
        )
    )
    @settings(max_examples=60)
    def test_sorted_ingest_round_trips(self, samples):
        samples = sorted(samples, key=lambda p: p[0])
        ts = TimeSeries("x")
        for t, v in samples:
            ts.record(t, v)
        assert len(ts) == len(samples)
        assert ts.last() == (samples[-1][0], samples[-1][1])
        assert np.all(np.diff(ts.times) >= 0)

    def test_equal_timestamps_allowed(self):
        ts = TimeSeries("x")
        ts.record(1.0, 1.0)
        ts.record(1.0, 2.0)
        assert ts.rows() == [(1.0, 1.0), (1.0, 2.0)]


class TestCounterProperties:
    @given(
        adds=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            ),
            max_size=30,
        )
    )
    def test_total_equals_sum_of_adds(self, adds):
        c = Counter()
        for key, amount in adds:
            c.add(key, amount)
        assert c.total() == pytest.approx(sum(a for _, a in adds))

    def test_negative_add_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.add("x", -1.0)
