"""Unit tests for waitable stores and resources."""

import pytest

from repro.sim.core import SimulationError
from repro.sim.queues import FifoStore, PriorityStore, Resource


class TestFifoStore:
    def test_put_then_get(self, env):
        store = FifoStore(env)
        store.put("a")
        store.put("b")
        got = []

        def consumer(env, store):
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(consumer(env, store))
        env.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self, env):
        store = FifoStore(env)
        got = []

        def consumer(env, store):
            got.append(((yield store.get()), env.now))

        def producer(env, store):
            yield env.timeout(4.0)
            store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [("late", 4.0)]

    def test_try_get(self, env):
        store = FifoStore(env)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1
        assert store.try_get() is None

    def test_capacity_blocks_put(self, env):
        store = FifoStore(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("x")
            log.append(("x", env.now))
            yield store.put("y")
            log.append(("y", env.now))

        def consumer(env, store):
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert log == [("x", 0.0), ("y", 3.0)]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            FifoStore(env, capacity=0)

    def test_items_snapshot(self, env):
        store = FifoStore(env)
        for i in range(3):
            store.put(i)
        assert store.items == [0, 1, 2]
        assert len(store) == 3


class TestPriorityStore:
    def test_orders_by_value(self, env):
        store = PriorityStore(env)
        for v in (5, 1, 3):
            store.put(v)
        got = []

        def consumer(env, store):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env, store))
        env.run()
        assert got == [1, 3, 5]

    def test_blocking_get(self, env):
        store = PriorityStore(env)
        got = []

        def consumer(env, store):
            got.append((yield store.get()))

        env.process(consumer(env, store))
        env.schedule_callback(1.0, lambda: store.put(9))
        env.run()
        assert got == [9]

    def test_try_get(self, env):
        store = PriorityStore(env)
        assert store.try_get() is None
        store.put(2)
        store.put(1)
        assert store.try_get() == 1


class TestResource:
    def test_grants_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        ev1 = res.request()
        ev2 = res.request()
        assert ev1.triggered and ev2.triggered
        assert res.available == 0

    def test_waiter_fifo_order(self, env):
        res = Resource(env, capacity=2)
        log = []

        def worker(env, res, name, amount, hold):
            yield res.request(amount)
            log.append((name, env.now))
            yield env.timeout(hold)
            res.release(amount)

        env.process(worker(env, res, "a", 2, 5.0))
        env.process(worker(env, res, "big", 2, 1.0))
        env.process(worker(env, res, "small", 1, 1.0))
        env.run()
        # 'small' must not overtake 'big' even though one unit was free
        assert log == [("a", 0.0), ("big", 5.0), ("small", 6.0)]

    def test_release_too_much(self, env):
        res = Resource(env, capacity=1)
        res.request()
        res.release()
        with pytest.raises(SimulationError):
            res.release()

    def test_oversized_request_rejected(self, env):
        res = Resource(env, capacity=2)
        with pytest.raises(SimulationError):
            res.request(3)

    def test_invalid_args(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)
        res = Resource(env, capacity=1)
        with pytest.raises(ValueError):
            res.request(0)
        with pytest.raises(ValueError):
            res.release(0)
