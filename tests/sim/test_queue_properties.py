"""Property-based tests: stores behave like their Python-list models."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Environment
from repro.sim.queues import FifoStore, PriorityStore


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.integers(-100, 100)),
            st.tuples(st.just("get"), st.just(0)),
        ),
        max_size=40,
    )
)
def test_fifo_store_matches_deque_model(ops):
    env = Environment()
    store = FifoStore(env)
    model = deque()
    for op, value in ops:
        if op == "put":
            store.put(value)
            model.append(value)
        else:
            got = store.try_get()
            expected = model.popleft() if model else None
            assert got == expected
    assert store.items == list(model)


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.integers(-100, 100)),
            st.tuples(st.just("get"), st.just(0)),
        ),
        max_size=40,
    )
)
def test_priority_store_matches_sorted_model(ops):
    env = Environment()
    store = PriorityStore(env)
    model = []
    for op, value in ops:
        if op == "put":
            store.put(value)
            model.append(value)
            model.sort()
        else:
            got = store.try_get()
            expected = model.pop(0) if model else None
            assert got == expected
    assert store.items == model


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
)
def test_events_fire_in_time_order(delays):
    env = Environment()
    fired = []
    for d in delays:
        env.schedule_callback(d, lambda d=d: fired.append(d))
    env.run()
    assert fired == sorted(fired)
    assert env.now == max(delays)
