"""Unit tests for measurement helpers."""

import numpy as np
import pytest

from repro.sim.monitor import Counter, TimeSeries, TimeWeighted


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("msgs")
        c.add("msgs", 2)
        assert c.get("msgs") == 3
        assert c.get("other") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add("x", -1)

    def test_total_and_reset(self):
        c = Counter()
        c.add("a", 1)
        c.add("b", 2)
        assert c.total() == 3
        c.reset()
        assert c.total() == 0
        assert c.as_dict() == {}


class TestTimeSeries:
    def test_record_and_export(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert np.array_equal(ts.times, [0.0, 1.0])
        assert np.array_equal(ts.values, [1.0, 2.0])
        assert ts.rows() == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 0.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 0.0)

    def test_last(self):
        ts = TimeSeries()
        with pytest.raises(IndexError):
            ts.last()
        ts.record(1.0, 9.0)
        assert ts.last() == (1.0, 9.0)

    def test_window_mean(self):
        ts = TimeSeries()
        for t, v in [(0, 10), (1, 20), (2, 30), (3, 40)]:
            ts.record(t, v)
        assert ts.window_mean(1, 2) == 25.0
        with pytest.raises(ValueError):
            ts.window_mean(10, 20)
        with pytest.raises(ValueError):
            ts.window_mean(2, 1)


class TestTimeWeighted:
    def test_piecewise_mean(self):
        tw = TimeWeighted(0.0, 0.0)
        tw.update(10.0, 4.0)  # value 0 for 10s
        tw.update(20.0, 0.0)  # value 4 for 10s
        assert tw.mean(20.0) == pytest.approx(2.0)

    def test_mean_extends_current_value(self):
        tw = TimeWeighted(0.0, 2.0)
        assert tw.mean(10.0) == pytest.approx(2.0)

    def test_time_backwards_rejected(self):
        tw = TimeWeighted(5.0, 0.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 1.0)
        with pytest.raises(ValueError):
            tw.mean(0.0)

    def test_current(self):
        tw = TimeWeighted(0.0, 1.5)
        assert tw.current == 1.5
        tw.update(1.0, 2.5)
        assert tw.current == 2.5
