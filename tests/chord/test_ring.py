"""Ground-truth ChordRing: membership, arcs, derived structure, errors."""

import random
from bisect import bisect_left

import pytest

from repro.can.space import ResourceSpace
from repro.chord.keyspace import RING_SIZE
from repro.chord.ring import ChordError, ChordRing


def make_ring(n=24, seed=3, succ=4, space=None):
    space = space or ResourceSpace(gpu_slots=2)
    ring = ChordRing(space, successor_list_size=succ)
    rng = random.Random(seed)
    for nid in range(n):
        ring.add_node(nid, [rng.random() for _ in range(space.dims)])
    return ring, rng


def brute_owner(ring, key):
    keys = sorted(m.key for m in ring.members.values())
    i = bisect_left(keys, key)
    k = keys[0] if i == len(keys) else keys[i]
    return next(m.node_id for m in ring.members.values() if m.key == k)


def test_bootstrap_and_join_results():
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space)
    first = ring.add_node(0, [0.5] * space.dims)
    assert first.splitter_id is None
    second = ring.add_node(1, [0.25] * space.dims)
    assert second.splitter_id == 0  # only prior member owns every arc
    assert ring.size == 2
    ring.check_invariants()


def test_invariants_hold_through_membership_churn():
    ring, rng = make_ring(n=30)
    ring.check_invariants()
    for nid in (3, 11, 19):
        ring.graceful_leave(nid)
        ring.check_invariants()
    for nid in (5, 23):
        ring.fail(nid)
        ring.check_invariants()
        assert nid in ring.dead_ids()
    for nid in (5, 23):
        ring.claim_zones(nid)
        ring.check_invariants()
    assert ring.dead_ids() == set()
    assert ring.size == 25


def test_locate_owner_matches_brute_force():
    ring, rng = make_ring(n=40, seed=9)
    for _ in range(100):
        point = [rng.random() for _ in range(ring.space.dims)]
        key = ring.keyspace.point_key(point)
        assert ring.locate_owner(point) == brute_owner(ring, key)


def test_successor_list_and_predecessor_follow_ring_order():
    ring, _ = make_ring(n=12, succ=4)
    order = [ring._by_key[k] for k in ring._ring]
    n = len(order)
    for i, nid in enumerate(order):
        expect = tuple(order[(i + 1 + j) % n] for j in range(4))
        assert ring.successor_list(nid) == expect
        assert ring.predecessor(nid) == order[(i - 1) % n]


def test_fingers_are_successors_of_power_of_two_offsets():
    ring, _ = make_ring(n=32)
    for nid in list(ring.members)[:8]:
        key = ring.key_of(nid)
        expect, seen = [], {nid}
        for e in ring.finger_exponents:
            t = ring.successor_of_key((key + (1 << e)) % RING_SIZE)
            if t not in seen:
                seen.add(t)
                expect.append(t)
        assert ring.fingers(nid) == tuple(expect)
        # fingers + successor list + predecessor = routing neighbors
        nbrs = set(ring.successor_list(nid)) | set(expect)
        nbrs.add(ring.predecessor(nid))
        nbrs.discard(nid)
        assert ring.neighbors(nid) == nbrs


def test_neighbors_along_filters_by_coordinate():
    ring, _ = make_ring(n=20)
    nid = next(iter(ring.members))
    own = ring.coordinate(nid)
    for dim in (0, ring.space.dims - 1):
        up = ring.neighbors_along(nid, dim, +1)
        down = ring.neighbors_along(nid, dim, -1)
        assert up.isdisjoint(down)
        for other in up:
            assert ring.coordinate(other)[dim] > own[dim]
        for other in down:
            assert ring.coordinate(other)[dim] < own[dim]
    with pytest.raises(ValueError):
        ring.neighbors_along(nid, 0, 0)


def test_takeover_target_is_first_alive_successor():
    ring, _ = make_ring(n=10, succ=3)
    nid = next(iter(ring.members))
    succ = ring.successor_list(nid)
    assert ring.takeover_targets(nid) == {succ[0]}
    ring.fail(succ[0])
    assert ring.takeover_targets(nid) == {succ[1]}


def test_leave_and_claim_hand_arc_to_successor():
    ring, _ = make_ring(n=8, succ=2)
    nid = next(iter(ring.members))
    heir = ring.successor_list(nid)[0]
    key = ring.key_of(nid)
    transfers = ring.graceful_leave(nid)
    assert len(transfers) == 1
    t = transfers[0]
    assert (t.from_node, t.to_node, t.hi_key) == (nid, heir, key)
    # the heir now owns the vacated arc
    assert ring.successor_of_key(key) == heir


def test_join_into_dead_arc_is_rejected_until_claimed():
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space)
    rng = random.Random(5)
    for nid in range(6):
        ring.add_node(nid, [rng.random() for _ in range(space.dims)])
    # find a coordinate owned by a node, kill the owner, try to join there
    coord = [rng.random() for _ in range(space.dims)]
    owner = ring.locate_owner(coord)
    ring.fail(owner)
    key = ring.keyspace.node_key(99, coord)
    if ring.successor_of_key(key) == owner:  # tiebreak may shift the arc
        with pytest.raises(ChordError, match="dead node"):
            ring.add_node(99, coord)
        ring.claim_zones(owner)
        ring.add_node(99, coord)  # claimed arc accepts the join
        ring.check_invariants()


def test_error_paths():
    ring, _ = make_ring(n=4)
    nid = next(iter(ring.members))
    with pytest.raises(ChordError, match="already present"):
        ring.add_node(nid, [0.5] * ring.space.dims)
    with pytest.raises(ChordError, match="unknown node"):
        ring.key_of(10_000)
    with pytest.raises(ChordError, match="has not failed"):
        ring.claim_zones(nid)
    ring.fail(nid)
    with pytest.raises(ChordError, match="already failed"):
        ring.fail(nid)
    with pytest.raises(ChordError, match="already failed"):
        ring.graceful_leave(nid)
    with pytest.raises(ValueError):
        ChordRing(ring.space, successor_list_size=0)
    with pytest.raises(ValueError):
        ChordRing(ring.space, finger_count=65)


def test_key_collision_probe_keeps_bijection():
    """Same node re-keyed by linear probe when node_key collides."""
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space)
    coord = [0.5] * space.dims
    ring.add_node(0, coord)
    # co-located nodes rely on the id tiebreak (and the linear probe as a
    # last resort) to keep the key -> node map a bijection
    for nid in range(1, 50):
        ring.add_node(nid, coord)
    keys = [m.key for m in ring.members.values()]
    assert len(set(keys)) == len(keys)
    ring.check_invariants()
