"""Range queries: z-order box covers and owner resolution on the ring."""

import random

from repro.can.space import ResourceSpace
from repro.chord.keyspace import ChordKeyspace
from repro.chord.range_query import box_key_intervals, range_query
from repro.chord.ring import ChordRing


def in_cover(intervals, key):
    return any(iv.lo <= key <= iv.hi for iv in intervals)


def random_box(rng, dims):
    lows, highs = [], []
    for _ in range(dims):
        a, b = sorted((rng.random(), rng.random()))
        lows.append(a)
        highs.append(b)
    return lows, highs


def test_intervals_are_sorted_disjoint_and_merged():
    ks = ChordKeyspace(3)
    rng = random.Random(1)
    for _ in range(25):
        lows, highs = random_box(rng, 3)
        ivs = box_key_intervals(ks, lows, highs)
        for a, b in zip(ivs, ivs[1:]):
            assert a.hi < b.lo  # disjoint, sorted
            assert a.hi + 1 < b.lo  # adjacent ones would have been merged
        for iv in ivs:
            assert iv.lo <= iv.hi


def test_cover_contains_every_inside_point():
    """Soundness: any point inside the box has its key inside the cover."""
    rng = random.Random(2)
    for dims in (2, 4, 7):
        ks = ChordKeyspace(dims)
        for _ in range(10):
            lows, highs = random_box(rng, dims)
            ivs = box_key_intervals(ks, lows, highs)
            assert ivs
            for _ in range(50):
                point = [
                    lo + rng.random() * (hi - lo)
                    for lo, hi in zip(lows, highs)
                ]
                assert in_cover(ivs, ks.point_key(point))
                # node keys differ only in (fully covered) tiebreak bits
                assert in_cover(ivs, ks.node_key(rng.randrange(10**6), point))


def test_cover_excludes_far_outside_points():
    """The cover is tight on coarse bits: points far outside the box (a
    different top-level cell in some dimension) fall outside it."""
    ks = ChordKeyspace(2)
    ivs = box_key_intervals(ks, [0.0, 0.0], [0.2, 0.2])
    for point in ([0.9, 0.9], [0.6, 0.1], [0.1, 0.7]):
        assert not in_cover(ivs, ks.point_key(point))


def test_full_space_box_is_one_interval():
    ks = ChordKeyspace(5)
    ivs = box_key_intervals(ks, [0.0] * 5, [1.0] * 5)
    assert len(ivs) == 1
    assert ivs[0].lo == 0


def test_depth_cap_bounds_interval_count():
    ks = ChordKeyspace(6)
    rng = random.Random(3)
    for depth in (2, 4, 8):
        lows, highs = random_box(rng, 6)
        ivs = box_key_intervals(ks, lows, highs, max_split_depth=depth)
        assert len(ivs) <= 1 << depth


def test_range_query_matches_are_exact_and_owned():
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space)
    rng = random.Random(4)
    coords = {}
    for nid in range(60):
        coord = [rng.random() for _ in range(space.dims)]
        ring.add_node(nid, coord)
        coords[nid] = coord
    for _ in range(20):
        lows, highs = random_box(rng, space.dims)
        result = range_query(ring, lows, highs)
        expect = {
            nid
            for nid, c in coords.items()
            if all(lo <= x <= hi for x, lo, hi in zip(c, lows, highs))
        }
        assert set(result.matches) == expect
        # every exact match is reachable through the resolved arc owners
        assert set(result.matches) <= set(result.owners)
        for owner in result.owners:
            assert ring.is_alive(owner)


def test_range_query_skips_dead_members_in_matches():
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space)
    rng = random.Random(6)
    for nid in range(20):
        ring.add_node(nid, [rng.random() for _ in range(space.dims)])
    dead = sorted(ring.members)[:5]
    for nid in dead:
        ring.fail(nid)
    result = range_query(ring, [0.0] * space.dims, [1.0] * space.dims)
    assert not set(result.matches) & set(dead)
    assert set(result.matches) == set(ring.alive_ids())
