"""Chord maintenance protocol: convergence, detection, healing, accounting."""

import random

import pytest

from repro.can.heartbeat import HeartbeatScheme, ProtocolConfig
from repro.can.space import ResourceSpace
from repro.chord.protocol import ChordMaintenanceProtocol
from repro.chord.ring import ChordRing

PERIOD = 60.0


def build(n=20, scheme=HeartbeatScheme.VANILLA, seed=13, succ=4, **cfg_kwargs):
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space, successor_list_size=succ)
    rng = random.Random(seed)
    for nid in range(n):
        ring.add_node(nid, [rng.random() for _ in range(space.dims)])
    cfg = ProtocolConfig(scheme=scheme, period=PERIOD, **cfg_kwargs)
    proto = ChordMaintenanceProtocol(ring, cfg, rng=random.Random(seed + 1))
    proto.adopt_overlay(now=0.0)
    return ring, proto


def run_rounds(proto, count, start=1):
    for r in range(start, start + count):
        proto.run_round(now=r * PERIOD)
    return start + count


@pytest.mark.parametrize(
    "scheme",
    [HeartbeatScheme.VANILLA, HeartbeatScheme.COMPACT, HeartbeatScheme.ADAPTIVE],
)
def test_quiet_ring_stays_converged(scheme):
    """Acks keep liveness evidence fresh: zero broken links, no detections."""
    ring, proto = build(scheme=scheme)
    run_rounds(proto, 8)
    assert proto.count_broken_links() == 0
    assert proto.events["failures"] == 0
    assert proto.events["claims"] == 0
    for nid in ring.members:
        assert proto.believed_successors(nid) == ring.successor_list(nid)


def test_adopt_overlay_seeds_ground_truth():
    ring, proto = build(n=15)
    for nid in ring.members:
        assert proto.believed_successors(nid) == ring.successor_list(nid)
        peers = set(proto.believed_peers(nid))
        assert set(ring.successor_list(nid)) <= peers
        assert ring.predecessor(nid) in peers


@pytest.mark.parametrize(
    "scheme",
    [HeartbeatScheme.VANILLA, HeartbeatScheme.COMPACT, HeartbeatScheme.ADAPTIVE],
)
def test_crash_is_detected_and_claimed(scheme):
    ring, proto = build(scheme=scheme)
    detections = []
    proto.on_failure_detected = lambda nid, now: detections.append((nid, now))
    run_rounds(proto, 3)
    victim = next(iter(ring.members))
    fail_time = 3 * PERIOD + 1.0
    proto.fail(victim, now=fail_time)
    run_rounds(proto, 8, start=4)
    assert proto.events["failures"] == 1
    assert proto.events["claims"] == 1
    assert victim not in ring.members  # arc merged into the heir
    assert victim not in proto.nodes
    assert proto._fail_times == {}
    assert [nid for nid, _ in detections] == [victim]
    # detected after the timeout elapsed, within a couple of rounds of it
    latency = detections[0][1] - fail_time
    assert proto.config.failure_timeout <= latency
    assert latency <= proto.config.failure_timeout + 2 * PERIOD
    ring.check_invariants()


def test_graceful_leave_hands_off_without_failure_events():
    ring, proto = build()
    run_rounds(proto, 2)
    leaver = next(iter(ring.members))
    proto.graceful_leave(leaver, now=2 * PERIOD + 1.0)
    run_rounds(proto, 4, start=3)
    assert proto.events["leaves"] == 1
    assert proto.events["failures"] == 0
    assert leaver not in ring.members
    assert leaver not in proto.nodes
    # nobody still believes in the leaver
    for nid in proto.nodes:
        assert leaver not in proto.believed_peers(nid)
    assert proto.count_broken_links() == 0


def test_join_through_protocol_integrates_newcomer():
    ring, proto = build(n=10)
    run_rounds(proto, 2)
    rng = random.Random(99)
    coord = [rng.random() for _ in range(ring.space.dims)]
    assert proto.join(100, coord, now=2 * PERIOD + 1.0)
    assert 100 in ring.members
    assert 100 in proto.nodes
    assert proto.events["joins"] == 1
    run_rounds(proto, 4, start=3)
    assert proto.count_broken_links() == 0
    assert proto.believed_successors(100) == ring.successor_list(100)


def test_join_into_dead_arc_defers_until_claimed():
    ring, proto = build(n=10)
    run_rounds(proto, 2)
    rng = random.Random(7)
    now = 2 * PERIOD + 1.0
    # find a coordinate whose owner we can kill, then join at it
    coord = [rng.random() for _ in range(ring.space.dims)]
    owner = ring.locate_owner(coord)
    proto.fail(owner, now=now)
    key = ring.keyspace.node_key(200, coord)
    if ring.successor_of_key(key) != owner:
        pytest.skip("tiebreak moved the join off the dead arc")
    assert not proto.join(200, coord, now=now + 1.0)  # deferred, not lost
    assert 200 not in ring.members
    run_rounds(proto, 8, start=3)  # detection + claim + join retry
    assert 200 in ring.members
    assert 200 in proto.nodes
    assert proto.events["joins"] == 1
    ring.check_invariants()


def test_scheme_contrast_volume_and_healing():
    """Compact cuts volume but can leave substitution gaps; adaptive heals
    them for a fraction of vanilla's byte cost."""
    results = {}
    for scheme in (
        HeartbeatScheme.VANILLA,
        HeartbeatScheme.COMPACT,
        HeartbeatScheme.ADAPTIVE,
    ):
        ring, proto = build(n=30, scheme=scheme, seed=21)
        run_rounds(proto, 4)
        now_round = 5
        rng = random.Random(5)
        victims = rng.sample(sorted(ring.members), 4)
        for i, victim in enumerate(victims):
            proto.fail(victim, now=(now_round - 1) * PERIOD + 1.0 + i)
        now_round = run_rounds(proto, 12, start=now_round)
        msgs, volume = proto.stats.totals()
        results[scheme] = (proto.count_broken_links(), volume)
        assert proto.events["claims"] == 4
    assert results[HeartbeatScheme.VANILLA][0] == 0
    assert results[HeartbeatScheme.ADAPTIVE][0] == 0
    # byte volume: compact < adaptive < vanilla
    assert results[HeartbeatScheme.COMPACT][1] < results[HeartbeatScheme.VANILLA][1]
    assert results[HeartbeatScheme.ADAPTIVE][1] < results[HeartbeatScheme.VANILLA][1]
    assert (
        results[HeartbeatScheme.COMPACT][1]
        <= results[HeartbeatScheme.ADAPTIVE][1]
    )


def test_message_loss_delays_but_does_not_break_detection():
    import numpy as np

    ring, proto = build(n=12)
    run_rounds(proto, 2)
    proto.set_message_loss(0.5, np.random.default_rng(0))
    victim = next(iter(ring.members))
    proto.fail(victim, now=2 * PERIOD + 1.0)
    run_rounds(proto, 12, start=3)
    # lossy links delay evidence, but timeouts still fire and the arc is
    # eventually claimed
    assert proto.events["claims"] >= 1
    assert victim not in ring.members
    # the closed interval is accepted: 1.0 is a total blackout
    proto.set_message_loss(1.0, np.random.default_rng(0))
    assert not proto.net.is_identity
    with pytest.raises(ValueError):
        proto.set_message_loss(1.1, np.random.default_rng(0))
    with pytest.raises(ValueError):
        proto.set_message_loss(-0.1, np.random.default_rng(0))


def test_broken_links_counts_missing_truth_neighbors():
    ring, proto = build(n=10, succ=3)
    run_rounds(proto, 2)
    assert proto.count_broken_links() == 0
    # erase one node's knowledge of its first successor
    nid = next(iter(ring.members))
    succ0 = ring.successor_list(nid)[0]
    pnode = proto.nodes[nid]
    if succ0 in pnode.known:
        del pnode.known[succ0]
        pnode.epoch += 1
    assert proto.count_broken_links() >= 1
