"""Property suite: random join/leave/fail/route schedules on the ring.

Hypothesis drives arbitrary interleavings of membership operations and
lookups through :class:`ChordRing` (and, in a second suite, through the
maintenance protocol), asserting after *every* step that

* the structural invariants hold (sorted key ring, key<->node bijection,
  full-circle arc coverage, derived successor/predecessor/finger spot
  checks via ``check_invariants``);
* the successor list and predecessor match an independent brute-force
  computation over the sorted keys;
* routing from a random live start delivers to ``locate_owner`` whenever
  the owner is alive.
"""

import random
from bisect import bisect_left

from hypothesis import given, settings, strategies as st

from repro.can.heartbeat import HeartbeatScheme, ProtocolConfig
from repro.can.space import ResourceSpace
from repro.chord.protocol import ChordMaintenanceProtocol
from repro.chord.ring import ChordError, ChordRing
from repro.chord.routing import chord_route

SPACE = ResourceSpace(gpu_slots=1)

# one schedule step: (operation, entropy) — the interpreter maps entropy
# onto the currently-valid population so every drawn schedule is runnable
STEP = st.tuples(
    st.sampled_from(["join", "leave", "fail", "claim", "route"]),
    st.integers(min_value=0, max_value=2**32 - 1),
)


def brute_successor_list(ring, node_id):
    keys = sorted(ring._ring)
    n = len(keys)
    count = min(ring.successor_list_size, n - 1)
    i = bisect_left(keys, ring.key_of(node_id))
    return tuple(ring._by_key[keys[(i + 1 + j) % n]] for j in range(count))


def check_step(ring):
    ring.check_invariants()
    if not ring.members:
        return
    # brute-force cross-check of the derived structure on a sample member
    keys = sorted(ring._ring)
    nid = ring._by_key[keys[0]]
    assert ring.successor_list(nid) == brute_successor_list(ring, nid)
    if len(keys) >= 2:
        assert ring.predecessor(nid) == ring._by_key[keys[-1]]


@settings(max_examples=60, deadline=None)
@given(schedule=st.lists(STEP, min_size=1, max_size=40), seed=st.integers(0, 2**16))
def test_ring_invariants_hold_under_any_schedule(schedule, seed):
    rng = random.Random(seed)
    ring = ChordRing(SPACE, successor_list_size=3)
    next_id = 0
    for op, entropy in schedule:
        pick = random.Random(entropy)
        alive = sorted(set(ring.alive_ids()))
        dead = sorted(ring.dead_ids())
        if op == "join":
            coord = [rng.random() for _ in range(SPACE.dims)]
            try:
                ring.add_node(next_id, coord)
                next_id += 1
            except ChordError:
                pass  # join arc owned by a ghost: deferred in real runs
        elif op == "leave" and alive:
            ring.graceful_leave(pick.choice(alive))
        elif op == "fail" and alive:
            ring.fail(pick.choice(alive))
        elif op == "claim" and dead:
            ring.claim_zones(pick.choice(dead))
        elif op == "route" and alive:
            point = [rng.random() for _ in range(SPACE.dims)]
            owner = ring.locate_owner(point)
            start = pick.choice(alive)
            if ring.is_alive(owner):
                path = chord_route(ring, start, point)
                assert path[-1] == owner
        check_step(ring)


@settings(max_examples=20, deadline=None)
@given(
    schedule=st.lists(STEP, min_size=1, max_size=12),
    seed=st.integers(0, 2**16),
    scheme=st.sampled_from(list(HeartbeatScheme)),
)
def test_protocol_ledger_balances_under_any_schedule(schedule, seed, scheme):
    """Drive the maintenance protocol: membership ledgers stay balanced and
    ground-truth invariants hold after every round."""
    rng = random.Random(seed)
    ring = ChordRing(SPACE, successor_list_size=3)
    cfg = ProtocolConfig(scheme=scheme, period=60.0)
    proto = ChordMaintenanceProtocol(ring, cfg, rng=random.Random(seed + 1))
    proto.bootstrap(0, [rng.random() for _ in range(SPACE.dims)])
    next_id, now = 1, 0.0
    for op, entropy in schedule:
        pick = random.Random(entropy)
        now += cfg.period
        alive = sorted(set(ring.alive_ids()) - {0})
        if op == "join":
            proto.join(next_id, [rng.random() for _ in range(SPACE.dims)], now)
            next_id += 1
        elif op in ("leave", "claim") and alive:
            proto.graceful_leave(pick.choice(alive), now)
        elif op == "fail" and alive:
            proto.fail(pick.choice(alive), now)
        proto.run_round(now)
        ring.check_invariants()
        ev = proto.events
        members = 1 + ev["joins"] - ev["leaves"] - ev["claims"]
        assert len(ring.members) == members
        assert len(ring.alive_ids()) == members - (ev["failures"] - ev["claims"])
        assert set(proto.nodes) == set(ring.members)
        assert set(proto._fail_times) == ring.dead_ids()
    # run quiet rounds until every outstanding failure is claimed
    for _ in range(12):
        if not ring.dead_ids() and not proto._pending_joins:
            break
        now += cfg.period
        proto.run_round(now)
    assert ring.dead_ids() == set()
    ring.check_invariants()
