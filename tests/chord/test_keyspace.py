"""Morton keyspace: quantisation, interleave locality, key layout."""

import random

import pytest

from repro.chord.keyspace import (
    COORD_BITS,
    RING_BITS,
    RING_SIZE,
    TIEBREAK_BITS,
    ChordKeyspace,
)


def test_bit_budget_partitions_coord_bits():
    for dims in (1, 2, 3, 4, 11, 17, 48):
        ks = ChordKeyspace(dims)
        assert sum(ks.bits) == COORD_BITS
        # round-robin spare bits: early dims get at most one extra bit
        assert max(ks.bits) - min(ks.bits) <= 1
        assert list(ks.bits) == sorted(ks.bits, reverse=True)
        assert len(ks.schedule) == COORD_BITS


def test_dims_validation():
    with pytest.raises(ValueError):
        ChordKeyspace(0)
    with pytest.raises(ValueError):
        ChordKeyspace(COORD_BITS + 1)
    with pytest.raises(ValueError):
        ChordKeyspace(3).quantize((0.1, 0.2))


def test_quantize_clamps_out_of_range():
    ks = ChordKeyspace(2)
    lo = ks.quantize((-5.0, -0.001))
    hi = ks.quantize((1.0, 7.3))
    assert lo == (0, 0)
    assert hi == tuple((1 << b) - 1 for b in ks.bits)


def test_interleave_monotone_per_dimension():
    """Fixing all other dims, the z-code grows with each coordinate."""
    rng = random.Random(7)
    for dims in (1, 2, 4, 11):
        ks = ChordKeyspace(dims)
        for _ in range(50):
            cells = [rng.randrange(1 << b) for b in ks.bits]
            d = rng.randrange(dims)
            codes = []
            for v in sorted({0, cells[d], (1 << ks.bits[d]) - 1}):
                c = list(cells)
                c[d] = v
                codes.append(ks.interleave(c))
            assert codes == sorted(codes)


def test_point_key_layout():
    ks = ChordKeyspace(4)
    key = ks.point_key((0.3, 0.7, 0.1, 0.9))
    # tiebreak bits are zero: the smallest key of the coordinate cell
    assert key & ((1 << TIEBREAK_BITS) - 1) == 0
    assert 0 <= key < RING_SIZE
    assert key >> TIEBREAK_BITS == ks.interleave(ks.quantize((0.3, 0.7, 0.1, 0.9)))


def test_node_key_tiebreak_distinguishes_colocated_nodes():
    ks = ChordKeyspace(4)
    coord = (0.5, 0.5, 0.5, 0.5)
    keys = {ks.node_key(nid, coord) for nid in range(100)}
    assert len(keys) == 100  # splitmix64 tiebreak separates identical coords
    lo, hi = ks.cell_key_range(ks.quantize(coord))
    for k in keys:
        assert lo <= k <= hi
    # the point key is the cell floor, so every co-located node succeeds it
    assert ks.point_key(coord) == lo


def test_cell_key_range_tiles_the_ring():
    """Adjacent cells produce adjacent, disjoint key intervals."""
    ks = ChordKeyspace(1)
    prev_hi = -1
    for cell in range(256):  # consecutive cells -> consecutive intervals
        lo, hi = ks.cell_key_range((cell,))
        assert prev_hi == -1 or lo == prev_hi + 1
        assert hi - lo + 1 == 1 << TIEBREAK_BITS
        prev_hi = hi


def test_ring_constants_consistent():
    assert RING_BITS == COORD_BITS + TIEBREAK_BITS
    assert RING_SIZE == 1 << RING_BITS
