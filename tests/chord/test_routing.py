"""Chord routing: delivery, hop growth, dead-finger handling, beliefs."""

import math
import random

import pytest

from repro.can.heartbeat import HeartbeatScheme, ProtocolConfig
from repro.can.space import ResourceSpace
from repro.chord.protocol import ChordMaintenanceProtocol
from repro.chord.ring import ChordError, ChordRing
from repro.chord.routing import chord_route, chord_route_on_beliefs

from tests.chord.test_ring import make_ring


def test_route_delivers_to_owner_from_every_start():
    ring, rng = make_ring(n=25, seed=11)
    point = [rng.random() for _ in range(ring.space.dims)]
    owner = ring.locate_owner(point)
    for start in ring.members:
        path = chord_route(ring, start, point)
        assert path[0] == start
        assert path[-1] == owner
        assert len(path) == len(set(path))  # no revisits


def test_route_hops_scale_logarithmically():
    """Mean hops stay within a small multiple of log2(n)."""
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space)
    rng = random.Random(2)
    n = 256
    for nid in range(n):
        ring.add_node(nid, [rng.random() for _ in range(space.dims)])
    hops = []
    for _ in range(200):
        start = rng.randrange(n)
        point = [rng.random() for _ in range(space.dims)]
        hops.append(len(chord_route(ring, start, point)) - 1)
    mean = sum(hops) / len(hops)
    assert mean <= 2.0 * math.log2(n)
    assert max(hops) <= 4.0 * math.log2(n)


def test_route_skips_dead_members():
    ring, rng = make_ring(n=20, seed=4)
    point = [rng.random() for _ in range(ring.space.dims)]
    owner = ring.locate_owner(point)
    victims = [nid for nid in ring.members if nid != owner][:6]
    for nid in victims:
        ring.fail(nid)
    start = next(
        nid for nid in ring.members if nid not in victims and nid != owner
    )
    path = chord_route(ring, start, point)
    assert path[-1] == owner
    assert not set(path[1:]) & set(victims)


def test_route_to_ghost_owner_raises():
    ring, rng = make_ring(n=10, seed=6)
    point = [rng.random() for _ in range(ring.space.dims)]
    owner = ring.locate_owner(point)
    ring.fail(owner)
    start = next(nid for nid in ring.members if nid != owner)
    with pytest.raises(ChordError):
        chord_route(ring, start, point)


def warmed_protocol(n=20, seed=8, rounds=6):
    ring, rng = make_ring(n=n, seed=seed)
    cfg = ProtocolConfig(scheme=HeartbeatScheme.VANILLA, period=60.0)
    proto = ChordMaintenanceProtocol(ring, cfg, rng=random.Random(seed))
    proto.adopt_overlay(now=0.0)
    for r in range(1, rounds + 1):
        proto.run_round(now=r * cfg.period)
    return ring, proto, rng


def test_belief_route_matches_truth_on_converged_ring():
    ring, proto, rng = warmed_protocol()
    for _ in range(40):
        start = rng.choice(list(ring.members))
        point = [rng.random() for _ in range(ring.space.dims)]
        result = chord_route_on_beliefs(proto, start, point)
        assert result.delivered
        assert result.path[-1] == ring.locate_owner(point)
        assert result.hops == len(result.path) - 1


def test_belief_route_fails_when_beliefs_are_emptied():
    ring, proto, rng = warmed_protocol(n=8)
    start = next(iter(ring.members))
    # wipe the start node's beliefs: it knows nobody, so no hop exists
    pnode = proto.nodes[start]
    pnode.known.clear()
    pnode.epoch += 1
    point = [rng.random() for _ in range(ring.space.dims)]
    if ring.locate_owner(point) != start:
        result = chord_route_on_beliefs(proto, start, point)
        assert not result.delivered
