"""Tests for the retry policy, recovery tracker, and resubmission path."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridsim import (
    CrashBurst,
    FaultPlan,
    FaultyGridConfig,
    FaultyGridSimulation,
    MatchmakingConfig,
    RecoveryTracker,
    RetryPolicy,
    check_matchmaking_accounting,
)
from repro.model.job import CERequirement, Job
from repro.workload import TINY_LOAD


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(
            base_delay=100.0, backoff_factor=2.0, max_delay=500.0, jitter=0.0
        )
        assert p.delay(1) == 100.0
        assert p.delay(2) == 200.0
        assert p.delay(3) == 400.0
        assert p.delay(4) == 500.0  # capped
        assert p.delay(10) == 500.0

    def test_flat_policy(self):
        p = RetryPolicy(base_delay=300.0, backoff_factor=1.0, jitter=0.0)
        assert p.delay(1) == p.delay(5) == 300.0

    def test_jitter_bounds_and_determinism(self):
        p = RetryPolicy(base_delay=100.0, backoff_factor=1.0, jitter=0.2)
        draws_a = [p.delay(1, np.random.default_rng(7)) for _ in range(5)]
        draws_b = [p.delay(1, np.random.default_rng(7)) for _ in range(5)]
        assert draws_a == draws_b  # seeded -> reproducible
        for d in draws_a:
            assert 80.0 <= d <= 120.0
        # no rng -> deterministic base value even with jitter configured
        assert p.delay(1) == 100.0

    def test_exhaustion(self):
        p = RetryPolicy(max_attempts=3)
        assert not p.exhausted(3)
        assert p.exhausted(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(ring_budget=0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


def _job(job_id):
    return Job(
        requirements={"ce0": CERequirement()},
        base_duration=1.0,
        job_id=job_id,
    )


class TestRecoveryTracker:
    def test_lifecycle_and_latencies(self):
        t = RecoveryTracker()
        t.node_crashed(7, now=100.0)
        t.job_lost(_job(1), 7, now=100.0)
        t.job_lost(_job(2), 7, now=100.0)
        assert t.awaiting_detection_count() == 2
        latency, released = t.node_detected(7, now=350.0)
        assert latency == 250.0
        assert [j.job_id for j in released] == [1, 2]
        assert t.awaiting_detection_count() == 0
        assert t.begin_attempt(1) == 1
        t.job_resubmitted(1, now=400.0)
        assert t.resubmission_latencies == [300.0]
        assert t.begin_attempt(2) == 1
        assert t.begin_attempt(2) == 2
        t.job_abandoned(2)
        assert not t.has_pending()
        assert t.balances()
        assert t.losses == 2 and t.resubmissions == 1 and t.abandonments == 1

    def test_detection_is_idempotent(self):
        t = RecoveryTracker()
        t.node_crashed(3, now=0.0)
        lat, _ = t.node_detected(3, now=10.0)
        assert lat == 10.0
        lat2, released = t.node_detected(3, now=20.0)
        assert lat2 is None and released == []
        assert t.detection_latencies == [10.0]

    def test_unknown_node_detection_is_noop(self):
        t = RecoveryTracker()
        assert t.node_detected(99, now=5.0) == (None, [])

    def test_balance_reflects_pending(self):
        t = RecoveryTracker()
        t.node_crashed(1, 0.0)
        t.job_lost(_job(1), 1, 0.0)
        assert t.balances()  # 1 lost == 0 + 0 + 1 pending
        t.losses += 1  # simulate a leak
        assert not t.balances()


def _quiet_config(**kwargs):
    """A faulty-grid config with background churn effectively disabled."""
    kwargs.setdefault("mean_time_between_failures", 1e9)
    kwargs.setdefault("mean_time_between_joins", 1e9)
    return FaultyGridConfig(
        MatchmakingConfig(replace(TINY_LOAD, jobs=40)), **kwargs
    )


class TestResubmissionTransitions:
    """Seeded transition tests: backoff gaps and the abandon budget."""

    def _run_with_unplaceable_retries(self, policy):
        cfg = _quiet_config(
            detection_mode="fixed", detection_delay=50.0, retry=policy
        )
        sim = FaultyGridSimulation(cfg)
        attempt_times = {}  # job_id -> times place() was asked post-crash
        real_place = sim.matchmaker.place
        state = {"broken": False}

        def place(job):
            if state["broken"]:
                if job.job_id in sim.tracker.pending:  # a recovery retry
                    attempt_times.setdefault(job.job_id, []).append(
                        sim.env.now
                    )
                return None  # fresh arrivals simply go unplaced
            return real_place(job)

        sim.matchmaker.place = place

        def crash_first_busy_node():
            state["broken"] = True
            for nid in sorted(sim.grid_nodes):
                if not sim.grid_nodes[nid].is_free():
                    sim._fail_node(nid)
                    return
            raise AssertionError("no busy node to crash")

        sim.env.schedule_callback(400.0, crash_first_busy_node)
        return sim, sim.run(), attempt_times

    def test_backoff_gaps_then_abandon(self):
        policy = RetryPolicy(
            base_delay=100.0,
            backoff_factor=2.0,
            max_delay=10_000.0,
            jitter=0.0,
            max_attempts=3,
            ring_fallback=False,
        )
        sim, res, attempt_times = self._run_with_unplaceable_retries(policy)
        assert res.jobs_lost > 0
        # every lost job burned its full budget and was abandoned
        assert res.jobs_abandoned == res.jobs_lost
        assert res.jobs_resubmitted == 0
        for times in attempt_times.values():
            assert len(times) == 3  # max_attempts placement tries
            gaps = np.diff(times)
            assert list(gaps) == [100.0, 200.0]  # exponential, jitter-free
        # detection preceded the first attempt by exactly the fixed delay
        first_attempt = min(t for ts in attempt_times.values() for t in ts)
        assert first_attempt == pytest.approx(400.0 + 50.0)
        assert res.base.summary() is not None
        check_matchmaking_accounting(res.base)

    def test_abandoned_jobs_enter_the_result_buckets(self):
        policy = RetryPolicy(jitter=0.0, max_attempts=2, ring_fallback=False)
        sim, res, _ = self._run_with_unplaceable_retries(policy)
        base = res.base
        assert base.abandoned_jobs == res.jobs_abandoned > 0
        assert (
            base.wait_times.size
            + base.unplaced_jobs
            + base.lost_jobs
            + base.abandoned_jobs
            == base.jobs_submitted
        )


class TestLedgerProperty:
    """Hypothesis: the churn ledger balances under random crash schedules."""

    @given(
        bursts=st.lists(
            st.tuples(
                st.floats(min_value=100.0, max_value=3000.0),
                st.integers(min_value=1, max_value=3),
                st.booleans(),
            ),
            min_size=1,
            max_size=3,
        ),
        mode=st.sampled_from(["protocol", "fixed"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_ledger_balances_under_random_crashes(self, bursts, mode):
        plan = FaultPlan(
            bursts=tuple(
                CrashBurst(at=t, count=c, correlated=corr)
                for t, c, corr in bursts
            )
        )
        preset = replace(TINY_LOAD, nodes=24, jobs=60, mean_interarrival=40.0)
        cfg = FaultyGridConfig(
            MatchmakingConfig(preset),
            mean_time_between_failures=500.0,
            mean_time_between_joins=500.0,
            detection_mode=mode,
            faults=plan,
            invariant_check_every=3,  # audits mid-run and post-run
        )
        res = FaultyGridSimulation(cfg).run()
        assert res.jobs_lost == res.jobs_resubmitted + res.jobs_abandoned
        check_matchmaking_accounting(res.base)
