"""Tests for matchmaking under churn (the faulty-grid extension)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import (
    FaultPlan,
    FaultyGridConfig,
    FaultyGridSimulation,
    MatchmakingConfig,
    RetryPolicy,
    check_matchmaking_accounting,
)
from repro.gridsim.recovery import PendingRecovery
from repro.workload import TINY_LOAD


def config(scheme="can-het", mtbf=600.0, mtbj=600.0, **kwargs):
    return FaultyGridConfig(
        MatchmakingConfig(TINY_LOAD, scheme=scheme),
        mean_time_between_failures=mtbf,
        mean_time_between_joins=mtbj,
        **kwargs,
    )


class TestFaultyGrid:
    @pytest.mark.parametrize("scheme", ["can-het", "can-hom", "central"])
    def test_smoke_all_schemes(self, scheme):
        res = FaultyGridSimulation(config(scheme)).run()
        assert res.failures > 0
        assert res.base.wait_times.size > 0

    def test_lost_jobs_are_resubmitted(self):
        res = FaultyGridSimulation(config()).run()
        assert res.jobs_lost > 0
        assert res.jobs_resubmitted + res.jobs_abandoned == res.jobs_lost

    def test_resubmitted_jobs_complete(self):
        sim = FaultyGridSimulation(config())
        res = sim.run()
        incomplete = [
            j
            for j in sim.jobs
            if j.finish_time is None and j.run_node_id is not None
        ]
        assert not incomplete  # everything placed eventually finished

    def test_population_floor_respected(self):
        cfg = config(mtbf=50.0, mtbj=5000.0, min_population_fraction=0.6)
        sim = FaultyGridSimulation(cfg)
        res = sim.run()
        assert res.final_population >= int(TINY_LOAD.nodes * 0.6)

    def test_overlay_invariants_after_churny_run(self):
        sim = FaultyGridSimulation(config(mtbf=300.0, mtbj=300.0))
        sim.run()
        sim.overlay.check_invariants()

    def test_joins_extend_population(self):
        cfg = config(mtbf=5000.0, mtbj=150.0)
        res = FaultyGridSimulation(cfg).run()
        assert res.joins > 0
        assert res.final_population > TINY_LOAD.nodes

    def test_summary_merges_ledger(self):
        s = FaultyGridSimulation(config()).run().summary()
        assert "jobs_lost" in s and "mean_wait" in s
        assert "detection_latency_mean" in s

    def test_deterministic(self):
        sims = [FaultyGridSimulation(config()) for _ in range(2)]
        a, b = (s.run() for s in sims)
        assert a.summary() == b.summary()
        assert np.array_equal(a.detection_latencies, b.detection_latencies)
        assert np.array_equal(
            a.resubmission_latencies, b.resubmission_latencies
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            config(mtbf=0.0)
        with pytest.raises(ValueError):
            config(min_population_fraction=0.0)
        with pytest.raises(ValueError):
            config(retry=RetryPolicy(max_attempts=0))
        with pytest.raises(ValueError):
            config(detection_mode="psychic")
        with pytest.raises(ValueError):
            config(invariant_check_every=-1)


class TestProtocolDetection:
    """Protocol mode: detection emerges from heartbeat timeouts."""

    def test_detection_latency_emerges_from_timeouts(self):
        cfg = config(mtbf=300.0, mtbj=300.0)
        sim = FaultyGridSimulation(cfg)
        res = sim.run()
        timeout = TINY_LOAD.heartbeat_period * cfg.failure_timeout_periods
        d = res.detection_latencies
        assert d.size > 0
        # no magic constant: latencies spread over real timeout dynamics,
        # bounded by timeout + one round (believers' evidence is at most
        # one period old when the crash happens)
        assert np.all(d > 0)
        assert np.all(d <= timeout + TINY_LOAD.heartbeat_period + 1e-6)
        assert np.unique(d).size > 1

    def test_fixed_mode_latency_is_the_constant(self):
        cfg = config(detection_mode="fixed", detection_delay=150.0)
        res = FaultyGridSimulation(cfg).run()
        assert res.detection_latencies.size > 0
        assert np.allclose(res.detection_latencies, 150.0)

    def test_schemes_detect_at_different_latencies_under_loss(self):
        means = {}
        for scheme in HeartbeatScheme:
            cfg = config(
                mtbf=300.0,
                mtbj=300.0,
                heartbeat_scheme=scheme,
                faults=FaultPlan(message_loss=0.2),
            )
            res = FaultyGridSimulation(cfg).run()
            assert res.detection_latencies.size > 0
            means[scheme.value] = float(res.detection_latencies.mean())
        assert len(set(means.values())) > 1, means
        # Vanilla's full-table gossip forwards third-party freshness
        # evidence, so under loss it times a genuinely-dead neighbor out
        # *later* than compact, whose heartbeats carry no such evidence.
        assert means["vanilla"] > means["compact"]

    def test_accounting_identity_holds(self):
        for mode in ("protocol", "fixed"):
            res = FaultyGridSimulation(
                config(mtbf=200.0, detection_mode=mode)
            ).run()
            check_matchmaking_accounting(res.base)

    def test_invariant_checks_during_and_after_run(self):
        # tier-1 smoke: the checker audits every few heartbeat rounds and
        # once post-run on a short seeded faulty-grid run
        preset = replace(TINY_LOAD, jobs=80)
        cfg = FaultyGridConfig(
            MatchmakingConfig(preset),
            mean_time_between_failures=250.0,
            mean_time_between_joins=250.0,
            invariant_check_every=2,
        )
        res = FaultyGridSimulation(cfg).run()
        assert res.failures > 0

    def test_work_remaining_counts_jobs_awaiting_detection(self):
        # Regression: jobs lost but not yet *detected* (no attempts on
        # record) used to be invisible, letting aggregation/churn
        # processes stop early.
        sim = FaultyGridSimulation(config())
        sim.run()
        assert not sim._work_remaining()
        job = sim.jobs[0]
        sim.tracker.pending[job.job_id] = PendingRecovery(
            job, node_id=-1, lost_at=0.0, attempts=0
        )
        assert sim._work_remaining()
        del sim.tracker.pending[job.job_id]
        assert not sim._work_remaining()
