"""Tests for matchmaking under churn (the faulty-grid extension)."""

import pytest

from repro.gridsim import (
    FaultyGridConfig,
    FaultyGridSimulation,
    MatchmakingConfig,
)
from repro.workload import TINY_LOAD


def config(scheme="can-het", mtbf=600.0, mtbj=600.0, **kwargs):
    return FaultyGridConfig(
        MatchmakingConfig(TINY_LOAD, scheme=scheme),
        mean_time_between_failures=mtbf,
        mean_time_between_joins=mtbj,
        **kwargs,
    )


class TestFaultyGrid:
    @pytest.mark.parametrize("scheme", ["can-het", "can-hom", "central"])
    def test_smoke_all_schemes(self, scheme):
        res = FaultyGridSimulation(config(scheme)).run()
        assert res.failures > 0
        assert res.base.wait_times.size > 0

    def test_lost_jobs_are_resubmitted(self):
        res = FaultyGridSimulation(config()).run()
        assert res.jobs_lost > 0
        assert res.jobs_resubmitted + res.jobs_abandoned >= res.jobs_lost * 0.9

    def test_resubmitted_jobs_complete(self):
        sim = FaultyGridSimulation(config())
        res = sim.run()
        incomplete = [
            j
            for j in sim.jobs
            if j.finish_time is None and j.run_node_id is not None
        ]
        assert not incomplete  # everything placed eventually finished

    def test_population_floor_respected(self):
        cfg = config(mtbf=50.0, mtbj=5000.0, min_population_fraction=0.6)
        sim = FaultyGridSimulation(cfg)
        res = sim.run()
        assert res.final_population >= int(TINY_LOAD.nodes * 0.6)

    def test_overlay_invariants_after_churny_run(self):
        sim = FaultyGridSimulation(config(mtbf=300.0, mtbj=300.0))
        sim.run()
        sim.overlay.check_invariants()

    def test_joins_extend_population(self):
        cfg = config(mtbf=5000.0, mtbj=150.0)
        res = FaultyGridSimulation(cfg).run()
        assert res.joins > 0
        assert res.final_population > TINY_LOAD.nodes

    def test_summary_merges_ledger(self):
        s = FaultyGridSimulation(config()).run().summary()
        assert "jobs_lost" in s and "mean_wait" in s

    def test_deterministic(self):
        a = FaultyGridSimulation(config()).run().summary()
        b = FaultyGridSimulation(config()).run().summary()
        assert a == b

    def test_config_validation(self):
        with pytest.raises(ValueError):
            config(mtbf=0.0)
        with pytest.raises(ValueError):
            config(min_population_fraction=0.0)
        with pytest.raises(ValueError):
            config(max_placement_attempts=0)
