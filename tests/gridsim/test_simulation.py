"""Integration tests for the end-to-end load-balancing simulation."""

import numpy as np
import pytest

from repro.gridsim import GridSimulation, MatchmakingConfig
from repro.workload import TINY_LOAD, WorkloadPreset

TINY = TINY_LOAD


def run(scheme="can-het", preset=TINY, **kwargs):
    return GridSimulation(MatchmakingConfig(preset, scheme=scheme, **kwargs)).run()


class TestEndToEnd:
    @pytest.mark.parametrize("scheme", ["can-het", "can-hom", "central"])
    def test_all_jobs_complete(self, scheme):
        res = run(scheme)
        placed = res.jobs_submitted - res.unplaced_jobs
        assert res.jobs_submitted == TINY.jobs
        assert res.wait_times.size == placed - res.lost_jobs
        assert res.lost_jobs == 0
        assert res.unplaced_jobs <= TINY.jobs * 0.02

    def test_wait_times_non_negative(self):
        res = run()
        assert (res.wait_times >= 0).all()
        assert (res.turnarounds > 0).all()

    def test_summary_fields(self):
        s = run().summary()
        for key in ("mean_wait", "p95_wait", "zero_wait_fraction"):
            assert key in s
        assert 0.0 <= s["zero_wait_fraction"] <= 1.0

    def test_deterministic_given_seed(self):
        a = run().summary()
        b = run().summary()
        assert a == b

    def test_seed_changes_results(self):
        a = run().summary()
        b = run(preset=TINY.with_seed(999)).summary()
        assert a != b

    def test_overlay_invariants_after_build(self):
        sim = GridSimulation(MatchmakingConfig(TINY, scheme="can-het"))
        sim.overlay.check_invariants()
        assert sim.overlay.size == TINY.nodes

    def test_wait_time_excludes_matchmaking(self):
        res = run()
        # wait == start - enqueue for every completed job
        for job in GridSimulation(
            MatchmakingConfig(TINY, scheme="central")
        ).jobs[:0]:
            pass  # structural check happens inside the model tests
        assert res.sim_end_time > 0


class TestSchemeOrdering:
    def test_can_het_beats_can_hom_under_load(self):
        heavy = TINY.with_interarrival(40.0)
        het = run("can-het", heavy).summary()
        hom = run("can-hom", heavy).summary()
        assert het["mean_wait"] <= hom["mean_wait"] * 1.15

    def test_can_het_close_to_central(self):
        het = run("can-het").summary()
        central = run("central").summary()
        # decentralized within a modest factor of the global-knowledge bound
        assert het["zero_wait_fraction"] >= central["zero_wait_fraction"] - 0.15


class TestAblationFlags:
    def test_free_only_search_runs(self):
        res = run(use_acceptable_nodes=False)
        assert res.wait_times.size > 0

    def test_no_dominant_ce_runs(self):
        res = run(use_dominant_ce=False)
        assert res.wait_times.size > 0

    def test_no_virtual_dimension_runs(self):
        res = run(use_virtual_dimension=False)
        assert res.wait_times.size > 0

    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError):
            MatchmakingConfig(TINY, scheme="bogus")


class TestAccountingIdentity:
    @pytest.mark.parametrize("scheme", ["can-het", "can-hom", "central"])
    def test_buckets_partition_submitted_jobs(self, scheme):
        from repro.gridsim import check_matchmaking_accounting

        res = run(scheme)
        check_matchmaking_accounting(res)
        assert res.abandoned_jobs == 0  # nothing crashes in a plain run
        assert (
            res.wait_times.size + res.unplaced_jobs + res.lost_jobs
            == res.jobs_submitted
        )


class TestStreamedWaits:
    """stream_waits=True swaps exact arrays for constant-memory sketches."""

    @pytest.mark.parametrize("scheme", ["can-het", "central"])
    def test_cdf_matches_exact_within_one_percent(self, scheme):
        from repro.experiments.common import WAIT_GRID
        from repro.gridsim import check_matchmaking_accounting

        exact = run(scheme)
        streamed = run(scheme, stream_waits=True)
        # streaming mode collects no per-job arrays ...
        assert streamed.wait_times.size == 0
        assert streamed.turnarounds.size == 0
        # ... yet accounts for every job through the sketch count
        assert int(streamed.started) == exact.wait_times.size
        check_matchmaking_accounting(streamed)
        # the Figure 5/6 acceptance bar: sketch CDF within 1% of exact
        # at every plotted grid point
        gap = np.abs(
            streamed.wait_cdf_at(WAIT_GRID) - exact.wait_cdf_at(WAIT_GRID)
        )
        assert gap.max() <= 0.01, gap

    def test_streamed_summary_has_quantiles(self):
        streamed = run(stream_waits=True)
        exact = run()
        s, e = streamed.summary(), exact.summary()
        assert set(s) == set(e)
        assert s["jobs"] == e["jobs"]
        assert s["mean_wait"] == pytest.approx(e["mean_wait"])
        assert s["max_wait"] == e["max_wait"]  # extremes are always exact
        # quantile estimates must be actual observed waits within 1% rank
        w = np.sort(exact.wait_times)
        for key, q in (("p50_wait", 0.5), ("p95_wait", 0.95)):
            lo = np.searchsorted(w, s[key], side="left") / w.size
            hi = np.searchsorted(w, s[key], side="right") / w.size
            assert lo - 0.01 <= q <= hi + 0.01, (key, s[key], lo, hi)
