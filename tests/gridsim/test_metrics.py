"""Unit tests for experiment metrics."""

import numpy as np
import pytest

from repro.gridsim.metrics import (
    cdf_at,
    empirical_cdf,
    jains_fairness,
    queue_length_snapshot,
    wait_time_table,
)

from tests.conftest import cpu_job, make_cpu, make_grid_node


class TestCdf:
    def test_empirical_cdf(self):
        values, fractions = empirical_cdf([3, 1, 2])
        assert list(values) == [1, 2, 3]
        assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        values, fractions = empirical_cdf([])
        assert values.size == 0 and fractions.size == 0
        assert list(cdf_at([], [1, 2])) == [0.0, 0.0]

    def test_cdf_at_thresholds(self):
        fractions = cdf_at([0, 10, 20, 30], [5, 10, 100])
        assert list(fractions) == pytest.approx([0.25, 0.5, 1.0])

    def test_cdf_at_inclusive(self):
        assert cdf_at([10.0], [10.0])[0] == 1.0

    def test_wait_time_table_rows(self):
        rows = wait_time_table([0, 0, 1000, 60000], grid=(0, 1000, 50000))
        assert rows == [
            (0.0, pytest.approx(50.0)),
            (1000.0, pytest.approx(75.0)),
            (50000.0, pytest.approx(75.0)),
        ]


class TestFairness:
    def test_perfectly_balanced(self):
        assert jains_fairness([5, 5, 5]) == pytest.approx(1.0)

    def test_single_hotspot(self):
        assert jains_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_degenerate(self):
        assert jains_fairness([]) == 1.0
        assert jains_fairness([0, 0]) == 1.0


class TestQueueSnapshot:
    def test_snapshot(self, env):
        nodes = [make_grid_node(env, i, cpu=make_cpu(cores=1)) for i in range(3)]
        nodes[0].submit(cpu_job(duration=1e5))
        nodes[0].submit(cpu_job(duration=1e5))  # one queued
        snap = queue_length_snapshot(nodes)
        assert snap["max"] == 1.0
        assert snap["mean"] == pytest.approx(1 / 3)
        assert 0 < snap["fairness"] <= 1.0

    def test_empty(self):
        assert queue_length_snapshot([]) == {
            "mean": 0.0,
            "max": 0.0,
            "fairness": 1.0,
        }
