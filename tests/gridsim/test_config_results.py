"""Unit tests for configs, presets, and result containers."""

import numpy as np
import pytest

from repro.can.stats import RateSummary
from repro.gridsim.config import ChurnConfig, MatchmakingConfig
from repro.gridsim.results import ChurnResult, MatchmakingResult
from repro.sched.base import MatchmakingStats
from repro.workload import PAPER_LOAD, SMALL_LOAD, TINY_LOAD, WorkloadPreset


class TestWorkloadPreset:
    def test_paper_preset_matches_section_v(self):
        assert PAPER_LOAD.nodes == 1000
        assert PAPER_LOAD.jobs == 20_000
        assert PAPER_LOAD.gpu_slots == 2  # 11-dimensional CAN

    def test_with_methods_return_new_presets(self):
        p = SMALL_LOAD.with_interarrival(9.0)
        assert p.mean_interarrival == 9.0
        assert SMALL_LOAD.mean_interarrival != 9.0
        q = SMALL_LOAD.with_constraint_ratio(0.9)
        assert q.constraint_ratio == 0.9
        r = SMALL_LOAD.with_seed(123)
        assert r.seed == 123

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadPreset("x", nodes=0, jobs=1, gpu_slots=0,
                           mean_interarrival=1, constraint_ratio=0.5)
        with pytest.raises(ValueError):
            WorkloadPreset("x", nodes=1, jobs=1, gpu_slots=0,
                           mean_interarrival=0, constraint_ratio=0.5)
        with pytest.raises(ValueError):
            WorkloadPreset("x", nodes=1, jobs=1, gpu_slots=0,
                           mean_interarrival=1, constraint_ratio=1.5)


class TestMatchmakingConfig:
    def test_with_scheme(self):
        cfg = MatchmakingConfig(TINY_LOAD).with_scheme("central")
        assert cfg.scheme == "central"

    def test_validation(self):
        with pytest.raises(ValueError):
            MatchmakingConfig(TINY_LOAD, max_push_hops=0)
        with pytest.raises(ValueError):
            MatchmakingConfig(TINY_LOAD, aggregation_warmup_rounds=-1)


class TestChurnConfigExtra:
    def test_with_scheme(self):
        from repro.can.heartbeat import HeartbeatScheme

        cfg = ChurnConfig().with_scheme(HeartbeatScheme.COMPACT)
        assert cfg.scheme is HeartbeatScheme.COMPACT


def _mk_result(waits):
    return MatchmakingResult(
        scheme="can-het",
        preset_name="t",
        mean_interarrival=3.0,
        constraint_ratio=0.6,
        wait_times=np.asarray(waits, dtype=float),
        turnarounds=np.asarray(waits, dtype=float) + 100,
        unplaced_jobs=0,
        lost_jobs=0,
        matchmaking=MatchmakingStats(placed=len(waits)),
        sim_end_time=1000.0,
        jobs_submitted=len(waits),
    )


class TestMatchmakingResult:
    def test_summary_percentiles(self):
        s = _mk_result([0, 0, 100, 1000]).summary()
        assert s["jobs"] == 4
        assert s["zero_wait_fraction"] == pytest.approx(0.5)
        assert s["max_wait"] == 1000.0

    def test_empty_summary(self):
        assert _mk_result([]).summary() == {"jobs": 0.0}


class TestChurnResult:
    def _mk(self, values):
        return ChurnResult(
            scheme="vanilla",
            nodes=100,
            dims=11,
            broken_links_times=np.arange(len(values), dtype=float),
            broken_links_values=np.asarray(values, dtype=float),
            rates=RateSummary(1.0, 2.0, 60.0, 100.0, {}),
            events={},
            final_population=100,
        )

    def test_steady_state_tail_mean(self):
        res = self._mk([0] * 75 + [40] * 25)
        assert res.steady_state_broken_links(0.25) == pytest.approx(40.0)

    def test_final(self):
        assert self._mk([1, 2, 3]).final_broken_links == 3.0
        assert self._mk([]).final_broken_links == 0.0
        assert self._mk([]).steady_state_broken_links() == 0.0


class TestMatchmakingStats:
    def test_mean_push_hops(self):
        stats = MatchmakingStats(placed=4, total_push_hops=8)
        assert stats.mean_push_hops == 2.0
        assert MatchmakingStats().mean_push_hops == 0.0
