"""Tests for the scripted fault-injection harness."""

from dataclasses import replace

import pytest

from repro.gridsim import (
    CrashBurst,
    FaultPlan,
    FaultyGridConfig,
    FaultyGridSimulation,
    MatchmakingConfig,
)
from repro.obs import Tracer
from repro.workload import TINY_LOAD


def quiet_config(**kwargs):
    """Background churn disabled; only the scripted plan injects faults."""
    kwargs.setdefault("mean_time_between_failures", 1e9)
    kwargs.setdefault("mean_time_between_joins", 1e9)
    return FaultyGridConfig(
        MatchmakingConfig(replace(TINY_LOAD, jobs=60)), **kwargs
    )


class TestPlanValidation:
    def test_burst_validation(self):
        with pytest.raises(ValueError):
            CrashBurst(at=-1.0)
        with pytest.raises(ValueError):
            CrashBurst(at=0.0, count=0)

    def test_plan_validation_and_empty(self):
        # the closed interval is accepted: 1.0 is a total blackout
        assert FaultPlan(message_loss=1.0).message_loss == 1.0
        with pytest.raises(ValueError):
            FaultPlan(message_loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(message_loss=-0.1)
        assert FaultPlan().empty
        assert not FaultPlan(message_loss=0.1).empty
        assert not FaultPlan(bursts=(CrashBurst(at=10.0),)).empty

    def test_bursts_normalised_to_tuple(self):
        plan = FaultPlan(bursts=[CrashBurst(at=5.0), CrashBurst(at=9.0)])
        assert isinstance(plan.bursts, tuple)


class TestInjection:
    def test_burst_kills_exact_count(self):
        plan = FaultPlan(bursts=(CrashBurst(at=500.0, count=3),))
        sim = FaultyGridSimulation(quiet_config(faults=plan))
        res = sim.run()
        assert sim._injector.bursts_fired == 1
        assert sim._injector.crashes_injected == 3
        assert res.failures == 3  # background churn is off

    def test_correlated_burst_takes_a_neighborhood(self):
        plan = FaultPlan(bursts=(CrashBurst(at=500.0, count=4, correlated=True),))
        tracer = Tracer()
        victims = []
        tracer.subscribe(
            lambda ev: victims.extend(ev.fields["victims"])
            if ev.etype == "fault.burst"
            else None
        )
        sim = FaultyGridSimulation(quiet_config(faults=plan), tracer=tracer)
        neighborhoods = {
            nid: set(sim.overlay.neighbors(nid)) for nid in sim.grid_nodes
        }
        sim.run()
        assert 2 <= len(victims) <= 4
        seed = victims[0]
        assert all(v in neighborhoods[seed] for v in victims[1:])

    def test_population_floor_clips_burst(self):
        plan = FaultPlan(bursts=(CrashBurst(at=500.0, count=1000),))
        cfg = quiet_config(faults=plan, min_population_fraction=0.5)
        sim = FaultyGridSimulation(cfg)
        res = sim.run()
        floor = int(TINY_LOAD.nodes * 0.5)
        assert res.final_population >= floor
        assert sim._injector.crashes_injected == TINY_LOAD.nodes - floor

    def test_message_loss_installed_on_protocol(self):
        sim = FaultyGridSimulation(
            quiet_config(faults=FaultPlan(message_loss=0.25))
        )
        assert sim.protocol.net.is_identity  # not yet installed
        sim._injector.install()
        assert sim.protocol.net.spec.loss == 0.25

    def test_seeded_plan_replays_identically(self):
        plan = FaultPlan(
            bursts=(
                CrashBurst(at=400.0, count=2),
                CrashBurst(at=900.0, count=3, correlated=True),
            ),
            message_loss=0.1,
        )
        runs = [
            FaultyGridSimulation(quiet_config(faults=plan)).run()
            for _ in range(2)
        ]
        assert runs[0].summary() == runs[1].summary()
