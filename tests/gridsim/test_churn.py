"""Integration tests for the churn simulation."""

import pytest

from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import ChurnConfig, ChurnSimulation


def quick_config(scheme=HeartbeatScheme.VANILLA, **kwargs):
    defaults = dict(
        initial_nodes=40,
        gpu_slots=1,
        scheme=scheme,
        heartbeat_period=60.0,
        event_gap_mean=30.0,
        duration=2_400.0,
    )
    defaults.update(kwargs)
    return ChurnConfig(**defaults)


class TestChurnSimulation:
    @pytest.mark.parametrize("scheme", list(HeartbeatScheme))
    def test_smoke(self, scheme):
        res = ChurnSimulation(quick_config(scheme)).run()
        assert res.scheme == scheme.value
        assert res.final_population > 10
        assert res.broken_links_times.size > 10
        assert res.rates.messages_per_node_minute > 0

    def test_slow_graceful_churn_has_no_broken_links(self):
        """Paper: no broken links without simultaneous events."""
        cfg = quick_config(
            scheme=HeartbeatScheme.COMPACT,
            event_gap_mean=200.0,  # far slower than the heartbeat period
            leave_mode="graceful",
        )
        res = ChurnSimulation(cfg).run()
        assert res.broken_links_values.max() == 0

    def test_high_churn_compact_worst(self):
        results = {}
        for scheme in HeartbeatScheme:
            cfg = quick_config(scheme, event_gap_mean=10.0, duration=4000.0)
            results[scheme] = ChurnSimulation(cfg).run()
        compact = results[HeartbeatScheme.COMPACT].steady_state_broken_links()
        vanilla = results[HeartbeatScheme.VANILLA].steady_state_broken_links()
        adaptive = results[HeartbeatScheme.ADAPTIVE].steady_state_broken_links()
        assert compact > vanilla
        assert compact > adaptive

    def test_compact_volume_smaller_than_vanilla(self):
        vols = {}
        for scheme in (HeartbeatScheme.VANILLA, HeartbeatScheme.COMPACT):
            res = ChurnSimulation(quick_config(scheme)).run()
            vols[scheme] = res.rates.kbytes_per_node_minute
        assert vols[HeartbeatScheme.COMPACT] < vols[HeartbeatScheme.VANILLA] / 2

    def test_population_stays_near_initial(self):
        res = ChurnSimulation(quick_config()).run()
        assert 20 <= res.final_population <= 80

    def test_events_recorded(self):
        res = ChurnSimulation(quick_config()).run()
        assert res.events["joins"] >= 40  # bootstrap + churn joins
        assert res.events["failures"] > 0
        assert res.events["claims"] <= res.events["failures"]

    def test_deterministic(self):
        a = ChurnSimulation(quick_config()).run()
        b = ChurnSimulation(quick_config()).run()
        assert list(a.broken_links_values) == list(b.broken_links_values)
        assert a.rates.messages_per_node_minute == pytest.approx(
            b.rates.messages_per_node_minute
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(initial_nodes=1)
        with pytest.raises(ValueError):
            ChurnConfig(leave_mode="explode")
        with pytest.raises(ValueError):
            ChurnConfig(event_gap_mean=0)

    def test_dims_property(self):
        assert ChurnConfig(gpu_slots=0).dims == 5
        assert ChurnConfig(gpu_slots=2).dims == 11


class TestRoutingProbe:
    def test_routing_success_rate_bounds(self):
        sim = ChurnSimulation(quick_config(event_gap_mean=12.0))
        sim.run()
        rate = sim.routing_success_rate(samples=50)
        assert 0.0 <= rate <= 1.0

    def test_quiescent_routing_is_perfect(self):
        cfg = quick_config(
            event_gap_mean=500.0, leave_mode="graceful", duration=1200.0
        )
        sim = ChurnSimulation(cfg)
        sim.run()
        assert sim.routing_success_rate(samples=50) == 1.0

    def test_sample_validation(self):
        sim = ChurnSimulation(quick_config(duration=300.0))
        sim.run()
        with pytest.raises(ValueError):
            sim.routing_success_rate(samples=0)

    def test_probe_is_deterministic_across_seeded_runs(self):
        rates = []
        for _ in range(2):
            sim = ChurnSimulation(quick_config(event_gap_mean=12.0))
            sim.run()
            rates.append(sim.routing_success_rate(samples=40))
        assert rates[0] == rates[1]


class TestInvariantsAndLoss:
    @pytest.mark.parametrize("scheme", list(HeartbeatScheme))
    def test_invariants_hold_after_seeded_runs(self, scheme):
        sim = ChurnSimulation(quick_config(scheme))
        sim.run()
        sim.check_invariants()

    def test_invariants_hold_under_graceful_churn(self):
        sim = ChurnSimulation(quick_config(leave_mode="graceful"))
        sim.run()
        sim.check_invariants()

    def test_message_loss_degrades_but_stays_consistent(self):
        sim = ChurnSimulation(quick_config(message_loss=0.3))
        res = sim.run()
        sim.check_invariants()
        assert res.final_population > 10

    def test_message_loss_validation(self):
        # the closed interval is accepted: 1.0 is a total blackout
        assert quick_config(message_loss=1.0).message_loss == 1.0
        with pytest.raises(ValueError):
            quick_config(message_loss=1.1)
        with pytest.raises(ValueError):
            quick_config(message_loss=-0.1)

    def test_total_blackout_starves_all_evidence(self):
        """rate == 1.0 drops every unreliable send: nothing delivers."""
        sim = ChurnSimulation(quick_config(message_loss=1.0))
        sim.run()
        sim.check_invariants()
        net = sim.protocol.net
        assert net.attempts > 0
        assert net.delivered == 0
        assert net.drops["loss"] == net.attempts
