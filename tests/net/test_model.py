"""Unit tests for the deterministic network model (repro.net)."""

import numpy as np
import pytest

from repro.net import (
    IDENTITY,
    FlapSpec,
    LatencySpec,
    NetworkModel,
    NetworkSpec,
    PartitionSpec,
)


class TestSpecValidation:
    def test_loss_closed_interval(self):
        assert NetworkSpec(loss=0.0).identity
        assert NetworkSpec(loss=1.0).loss == 1.0  # blackout is legal
        with pytest.raises(ValueError):
            NetworkSpec(loss=1.0001)
        with pytest.raises(ValueError):
            NetworkSpec(loss=-0.1)

    def test_latency_kinds(self):
        with pytest.raises(ValueError):
            LatencySpec(kind="pareto")
        with pytest.raises(ValueError):
            LatencySpec(kind="uniform", low=2.0, high=1.0)
        with pytest.raises(ValueError):
            LatencySpec(kind="constant", low=-1.0)
        with pytest.raises(ValueError):
            LatencySpec(kind="lognormal", sigma=-0.5)

    def test_flap_validation(self):
        with pytest.raises(ValueError):
            FlapSpec(down=0.0, up=10.0)
        with pytest.raises(ValueError):
            FlapSpec(down=10.0, up=10.0, fraction=0.0)
        with pytest.raises(ValueError):
            FlapSpec(down=10.0, up=10.0, start=5.0, end=1.0)

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            PartitionSpec(start=10.0, end=5.0)

    def test_loss_needs_rng(self):
        with pytest.raises(ValueError):
            NetworkModel(NetworkSpec(loss=0.5))


class TestIdentity:
    def test_identity_bypass_no_accounting(self):
        for _ in range(5):
            assert IDENTITY.transmit(1, 2, 100.0) == 0.0
        assert IDENTITY.attempts == 0
        assert IDENTITY.delivered == 0
        assert IDENTITY.dropped == 0

    def test_non_identity_specs(self):
        assert not NetworkSpec(loss=0.1).identity
        assert not NetworkSpec(latency=LatencySpec(low=1.0)).identity
        assert not NetworkSpec(partitions=(PartitionSpec(),)).identity
        assert not NetworkSpec(flaps=(FlapSpec(down=1.0, up=1.0),)).identity


class TestLoss:
    def test_draw_pattern_matches_inline_sites(self):
        """One rng.random() per send, in send order — the historical
        behaviour of the inline ``loss_rng.random() < rate`` sites."""
        rate = 0.37
        model = NetworkSpec(loss=rate).build(np.random.default_rng(7))
        verdicts = [model.transmit(i, i + 1, 0.0) for i in range(500)]
        replay = np.random.default_rng(7)
        expected = [replay.random() < rate for _ in range(500)]
        assert [v is None for v in verdicts] == expected

    def test_blackout_drops_everything(self):
        model = NetworkSpec(loss=1.0).build(np.random.default_rng(0))
        assert all(model.transmit(0, 1, 0.0) is None for _ in range(50))
        assert model.delivered == 0
        assert model.drops["loss"] == model.attempts == 50


class TestPartitions:
    def test_asymmetric_by_default(self):
        spec = NetworkSpec(partitions=(PartitionSpec(src=(1,), dst=(2,)),))
        model = spec.build()
        assert model.transmit(1, 2, 10.0) is None  # cut direction
        assert model.transmit(2, 1, 10.0) == 0.0  # reverse still delivers

    def test_symmetric_cuts_both_directions(self):
        spec = NetworkSpec(
            partitions=(PartitionSpec(src=(1,), dst=(2,), symmetric=True),)
        )
        model = spec.build()
        assert model.transmit(1, 2, 10.0) is None
        assert model.transmit(2, 1, 10.0) is None
        assert model.transmit(1, 3, 10.0) == 0.0  # unrelated pair fine

    def test_time_window(self):
        spec = NetworkSpec(
            partitions=(PartitionSpec(src=(1,), start=100.0, end=200.0),)
        )
        model = spec.build()
        assert model.transmit(1, 2, 99.9) == 0.0
        assert model.transmit(1, 2, 100.0) is None
        assert model.transmit(1, 2, 199.9) is None
        assert model.transmit(1, 2, 200.0) == 0.0  # heals at end

    def test_wildcard_sides(self):
        blackhole = NetworkSpec(partitions=(PartitionSpec(dst=(9,)),)).build()
        assert blackhole.transmit(3, 9, 0.0) is None
        assert blackhole.transmit(4, 9, 0.0) is None
        assert blackhole.transmit(9, 3, 0.0) == 0.0  # it can still send


class TestFlaps:
    SPEC = NetworkSpec(flaps=(FlapSpec(down=240.0, up=120.0, fraction=0.5),))

    def test_deterministic_and_order_independent(self):
        a, b = self.SPEC.build(), self.SPEC.build()
        pairs = [(i, j) for i in range(6) for j in range(6) if i != j]
        times = [0.0, 90.0, 250.0, 359.0, 400.0]
        forward = [a.transmit(s, d, t) for t in times for (s, d) in pairs]
        backward = [
            b.transmit(s, d, t) for t in reversed(times) for (s, d) in reversed(pairs)
        ]
        assert forward == list(reversed(backward))

    def test_undirected_pair_shares_schedule(self):
        model = self.SPEC.build()
        for t in (0.0, 100.0, 200.0, 300.0):
            assert (model.transmit(3, 4, t) is None) == (
                model.transmit(4, 3, t) is None
            )

    def test_square_wave_cycles(self):
        """A flapped link is down for ``down`` then up for ``up``, repeating."""
        flap = FlapSpec(down=240.0, up=120.0)  # fraction=1: every link flaps
        down_at = [flap.link_down(0, 1, t, salt=0) for t in np.arange(0, 1440, 1.0)]
        # half-open down windows of integer length: exactly 240 ticks per cycle
        assert sum(down_at) == 4 * 240
        # state changes only at schedule edges: 2 per cycle (the final pair
        # of samples may straddle the window end and miss one transition)
        flips = sum(x != y for x, y in zip(down_at, down_at[1:]))
        assert flips in (7, 8)

    def test_fraction_spares_some_links(self):
        model = self.SPEC.build()
        verdicts = {
            (s, d): model.transmit(s, d, 10.0) for s in range(20) for d in range(20)
            if s < d
        }
        downs = sum(v is None for v in verdicts.values())
        assert 0 < downs < len(verdicts)  # some flap, some sat it out

    def test_window_bounds_the_storm(self):
        spec = NetworkSpec(
            flaps=(FlapSpec(down=240.0, up=0.0, start=100.0, end=500.0),)
        )
        model = spec.build()
        assert model.transmit(0, 1, 99.0) == 0.0
        assert model.transmit(0, 1, 100.0) is None  # up=0: always down inside
        assert model.transmit(0, 1, 500.0) == 0.0


class TestLatency:
    def test_cached_per_directed_pair(self):
        spec = NetworkSpec(latency=LatencySpec(kind="uniform", low=1.0, high=9.0))
        model = spec.build()
        first = model.transmit(1, 2, 0.0)
        assert 1.0 <= first < 9.0
        assert all(model.transmit(1, 2, t) == first for t in (50.0, 999.0))
        # directed: the reverse path draws its own latency
        lats = {model.transmit(s, d, 0.0) for s in range(9) for d in range(9) if s != d}
        assert len(lats) > 1

    def test_lognormal_positive_and_stable(self):
        spec = NetworkSpec(latency=LatencySpec(kind="lognormal", mu=-2.0, sigma=1.0))
        a, b = spec.build(), spec.build()
        for s in range(10):
            lat = a.transmit(s, s + 1, 0.0)
            assert lat > 0.0
            assert b.transmit(s, s + 1, 0.0) == lat  # hash-seeded, not RNG

    def test_seed_changes_link_draws(self):
        low = NetworkSpec(latency=LatencySpec(kind="uniform", high=1.0), seed=1)
        other = NetworkSpec(latency=LatencySpec(kind="uniform", high=1.0), seed=2)
        draws = [
            (low.build().transmit(i, i + 1, 0.0), other.build().transmit(i, i + 1, 0.0))
            for i in range(8)
        ]
        assert any(a != b for a, b in draws)

    def test_constant(self):
        spec = NetworkSpec(latency=LatencySpec(kind="constant", low=3.5))
        assert spec.build().transmit(0, 1, 0.0) == 3.5


class TestAccounting:
    def test_attempts_partition_delivered_and_dropped(self):
        spec = NetworkSpec(
            loss=0.2,
            partitions=(PartitionSpec(src=(0,), dst=(1,)),),
            flaps=(FlapSpec(down=100.0, up=100.0, fraction=0.4),),
        )
        model = spec.build(np.random.default_rng(3))
        rng = np.random.default_rng(4)
        for _ in range(2000):
            s, d = int(rng.integers(12)), int(rng.integers(12))
            model.transmit(s, d, float(rng.integers(1000)))
        assert model.attempts == 2000
        assert model.attempts == model.delivered + model.dropped
        assert all(v >= 0 for v in model.drops.values())
        counters = model.counters()
        assert counters["attempts"] == 2000
        assert set(counters) == {
            "attempts",
            "delivered",
            "dropped_loss",
            "dropped_partition",
            "dropped_link_down",
        }
