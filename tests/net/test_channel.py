"""Protocol-level channel behaviour: blackouts, partitions, deferral.

Every unreliable send in both maintenance protocols (CAN heartbeat, Chord
ring) goes through one ``NetworkModel`` choke point.  These tests pin the
operational consequences: total blackouts starve evidence while senders
still pay bytes, asymmetric partitions break links one-sidedly, and
slower-than-a-round latency delays delivery without forging freshness.
"""

import random

import numpy as np
import pytest

from repro.can.heartbeat import (
    HeartbeatProtocol,
    HeartbeatScheme,
    ProtocolConfig,
)
from repro.can.messages import MessageType
from repro.can.overlay import CanOverlay
from repro.can.space import ResourceSpace
from repro.chord.protocol import ChordMaintenanceProtocol
from repro.chord.ring import ChordRing
from repro.gridsim.invariants import _check_network
from repro.net import LatencySpec, NetworkSpec, PartitionSpec

PERIOD = 60.0


def build_can(n=12, scheme=HeartbeatScheme.VANILLA, seed=0, **cfg_kwargs):
    space = ResourceSpace(gpu_slots=0)
    overlay = CanOverlay(space)
    proto = HeartbeatProtocol(
        overlay, ProtocolConfig(scheme=scheme, period=PERIOD, **cfg_kwargs),
        rng=np.random.default_rng(seed),
    )
    rng = np.random.default_rng(seed)
    coords = [tuple(rng.random(space.dims) * 0.998 + 0.001) for _ in range(n)]
    proto.bootstrap(0, coords[0])
    for i in range(1, n):
        proto.join(i, coords[i], now=0.0)
    return proto


def build_chord(n=12, scheme=HeartbeatScheme.VANILLA, seed=13):
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space, successor_list_size=4)
    rng = random.Random(seed)
    for nid in range(n):
        ring.add_node(nid, [rng.random() for _ in range(space.dims)])
    proto = ChordMaintenanceProtocol(
        ring, ProtocolConfig(scheme=scheme, period=PERIOD),
        rng=random.Random(seed + 1),
    )
    proto.adopt_overlay(now=0.0)
    return ring, proto


def run_rounds(proto, count, start=1):
    for r in range(start, start + count):
        proto.run_round(now=r * PERIOD)
    return (start + count - 1) * PERIOD


class TestBlackout:
    """loss=1.0: the sender pays for every byte, nothing arrives."""

    def test_can_blackout_starves_evidence_but_bills_sender(self):
        proto = build_can(scheme=HeartbeatScheme.VANILLA)
        run_rounds(proto, 2)
        sent_before = proto.stats.count[MessageType.HEARTBEAT_FULL]
        proto.set_message_loss(1.0, np.random.default_rng(5))
        run_rounds(proto, 2, start=3)
        assert proto.stats.count[MessageType.HEARTBEAT_FULL] > sent_before
        assert proto.net.attempts > 0
        assert proto.net.delivered == 0
        assert proto.net.drops["loss"] == proto.net.attempts
        # evidence is frozen at the last pre-blackout round
        for node in proto.nodes.values():
            heards = [node.table.last_heard(i) for i in node.table.ids()]
            assert max(heards) <= 2 * PERIOD
        _check_network(proto)

    def test_can_adaptive_blackout_leaves_nobody_to_ask(self):
        """Total blackout drains every believed table simultaneously, so
        the adaptive repair loop has no peers left to broadcast to."""
        proto = build_can(scheme=HeartbeatScheme.ADAPTIVE)
        run_rounds(proto, 2)
        proto.set_message_loss(1.0, np.random.default_rng(5))
        # well past the failure timeout: every belief times out at once
        run_rounds(proto, 6, start=3)
        assert all(not node.table.ids() for node in proto.nodes.values())
        assert proto.stats.count.get(MessageType.FULL_UPDATE_REQUEST, 0) == 0
        assert proto.net.delivered == 0
        assert proto.count_broken_links() > 0
        _check_network(proto)

    def test_can_adaptive_repairs_around_a_one_sided_cut(self):
        """Silencing one node's outbound opens gaps at its believers; the
        adaptive scheme broadcasts repair requests to its surviving peers
        (delivered — only the victim's outbound is cut) and any reply the
        victim itself sends is eaten by the partition."""
        # the periodic sweep re-finds gaps that were grace-masked when the
        # suspicion fired (the victim is never claimed: it is alive)
        proto = build_can(
            scheme=HeartbeatScheme.ADAPTIVE, periodic_gap_check_every=2
        )
        run_rounds(proto, 2)
        victim = 3
        proto.set_network(
            NetworkSpec(partitions=(PartitionSpec(src=(victim,)),)).build()
        )
        run_rounds(proto, 10, start=3)
        assert proto.stats.count.get(MessageType.FULL_UPDATE_REQUEST, 0) > 0
        assert proto.stats.count.get(MessageType.FULL_UPDATE_REPLY, 0) > 0
        assert proto.net.drops["partition"] > 0
        assert proto.net.delivered > 0
        _check_network(proto)

    def test_chord_blackout_starves_evidence(self):
        ring, proto = build_chord()
        run_rounds(proto, 2)
        proto.set_message_loss(1.0, random.Random(5))
        run_rounds(proto, 2, start=3)
        assert proto.net.attempts > 0
        assert proto.net.delivered == 0
        for node in proto.nodes.values():
            assert all(t <= 2 * PERIOD for t in node.known.values())
        _check_network(proto)


class TestAsymmetricPartition:
    """Cutting A->B while B->A delivers breaks links one-sidedly."""

    def test_can_one_sided_silence(self):
        proto = build_can(scheme=HeartbeatScheme.VANILLA)
        run_rounds(proto, 2)
        victim = 3
        proto.set_network(
            NetworkSpec(
                partitions=(PartitionSpec(src=(victim,)),)
            ).build()
        )
        run_rounds(proto, 2, start=3)
        vnode = proto.nodes[victim]
        neighbors = [i for i in vnode.table.ids() if i != victim]
        assert neighbors
        for nbr in neighbors:
            # the victim still hears everyone (inbound path intact) ...
            assert vnode.table.last_heard(nbr) == 4 * PERIOD
            # ... but nobody has heard the victim since the cut
            peer = proto.nodes[nbr]
            if victim in peer.table.ids():
                assert peer.table.last_heard(victim) == 2 * PERIOD
        assert proto.net.drops["partition"] > 0
        _check_network(proto)

    def test_can_false_suspicion_is_not_a_detection(self):
        """Silenced-but-alive nodes become broken links, never detections."""
        proto = build_can(scheme=HeartbeatScheme.VANILLA)
        detections = []
        proto.on_failure_detected = lambda nid, now: detections.append(nid)
        run_rounds(proto, 2)
        victim = 3
        proto.set_network(
            NetworkSpec(partitions=(PartitionSpec(src=(victim,)),)).build()
        )
        # well past the failure timeout: believers give up on the victim
        run_rounds(proto, 6, start=3)
        assert all(
            victim not in proto.nodes[n].table.ids()
            for n in proto.nodes
            if n != victim
        )
        assert detections == []  # alive: a broken link, not a failure
        assert proto.overlay.is_alive(victim)
        _check_network(proto)

    def test_chord_one_sided_silence(self):
        ring, proto = build_chord()
        run_rounds(proto, 2)
        victim = next(iter(ring.members))
        proto.set_network(
            NetworkSpec(partitions=(PartitionSpec(src=(victim,)),)).build()
        )
        run_rounds(proto, 2, start=3)
        vnode = proto.nodes[victim]
        fresh = [t for p, t in vnode.known.items() if p != victim]
        assert max(fresh) == 4 * PERIOD  # inbound evidence still flows
        for node_id, node in proto.nodes.items():
            if node_id != victim and victim in node.known:
                assert node.known[victim] <= 2 * PERIOD
        _check_network(proto)


class TestLatencyDeferral:
    """Latency above the round period delays delivery by whole rounds and
    stamps evidence at *send* time — slow links can't forge freshness."""

    SLOW = NetworkSpec(latency=LatencySpec(kind="constant", low=1.5 * PERIOD))

    def test_can_deferred_delivery_keeps_send_time_evidence(self):
        proto = build_can(scheme=HeartbeatScheme.VANILLA)
        run_rounds(proto, 1)  # clean round: evidence == PERIOD
        proto.set_network(self.SLOW.build())
        proto.run_round(2 * PERIOD)  # sends defer to t=210
        assert proto._deferred
        for arrival, _, _, _, _, sent_at in proto._deferred:
            assert arrival == pytest.approx(sent_at + 1.5 * PERIOD)
        proto.run_round(3 * PERIOD)  # t=180: round-2 batch not yet due
        proto.run_round(4 * PERIOD)  # t=240: round-2 batch (t=210) lands
        heards = {
            node.table.last_heard(i)
            for node in proto.nodes.values()
            for i in node.table.ids()
            if i != node.node_id
        }
        # freshest evidence anywhere is the round-2 send time, not arrival
        assert max(heards) == 2 * PERIOD
        _check_network(proto)

    def test_chord_deferred_delivery_keeps_send_time_evidence(self):
        ring, proto = build_chord()
        run_rounds(proto, 1)
        proto.set_network(self.SLOW.build())
        proto.run_round(2 * PERIOD)
        assert proto._deferred
        proto.run_round(3 * PERIOD)
        proto.run_round(4 * PERIOD)
        fresh = {
            t
            for node in proto.nodes.values()
            for p, t in node.known.items()
            if p != node.node_id
        }
        assert max(fresh) == 2 * PERIOD
        _check_network(proto)

    def test_fast_latency_delivers_same_round(self):
        """Sub-period latency is invisible to round granularity."""
        quick = NetworkSpec(latency=LatencySpec(kind="constant", low=0.5))
        proto = build_can(scheme=HeartbeatScheme.VANILLA)
        proto.set_network(quick.build())
        run_rounds(proto, 2)
        assert not proto._deferred
        assert proto.count_broken_links() == 0
        for node in proto.nodes.values():
            assert all(
                node.table.last_heard(i) == 2 * PERIOD
                for i in node.table.ids()
                if i != node.node_id
            )
        _check_network(proto)
