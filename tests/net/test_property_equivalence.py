"""Property test: engines and substrates agree under hostile networks.

Drives randomly drawn network adversity (loss rate, an asymmetric or
symmetric partition, a flapping-link storm) plus random churn through:

* the CAN object engine vs the CAN array engine — the full observable
  fingerprint (message counts, byte volumes, events, detections, final
  believed tables) and the channel accounting must match exactly; and
* the Chord protocol under the same spec — its ring and channel
  invariants must hold and no *genuine* detection may be spurious.

The goldens pin loss-free runs; ``tests/can/test_engine_equivalence``
pins loss-free churn; this covers the network-adversity surface those
never reach.
"""

import itertools
import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.heartbeat import HeartbeatScheme, ProtocolConfig
from repro.can.overlay import CanOverlay
from repro.can.soa import build_protocol
from repro.can.space import ResourceSpace
from repro.chord.protocol import ChordMaintenanceProtocol
from repro.chord.ring import ChordRing
from repro.gridsim.invariants import InvariantViolation, _check_network
from repro.net import FlapSpec, NetworkSpec, PartitionSpec

INITIAL_NODES = 8
PERIOD = 60.0

op = st.tuples(
    st.sampled_from(["round", "round", "round", "join", "fail"]),
    st.integers(min_value=0, max_value=2**31 - 1),
)


@st.composite
def network_specs(draw):
    loss = draw(st.sampled_from([0.0, 0.1, 0.3]))
    partitions = ()
    if draw(st.booleans()):
        src = draw(st.integers(min_value=0, max_value=INITIAL_NODES - 1))
        dst = draw(st.integers(min_value=0, max_value=INITIAL_NODES - 1))
        partitions = (
            PartitionSpec(
                src=(src,),
                dst=(dst,) if dst != src else (),
                start=draw(st.sampled_from([0.0, 3 * PERIOD])),
                symmetric=draw(st.booleans()),
            ),
        )
    flaps = ()
    if draw(st.booleans()):
        flaps = (
            FlapSpec(
                down=draw(st.sampled_from([PERIOD, 3 * PERIOD])),
                up=draw(st.sampled_from([0.0, 2 * PERIOD])),
                fraction=draw(st.sampled_from([0.3, 1.0])),
            ),
        )
    return NetworkSpec(
        loss=loss, partitions=partitions, flaps=flaps,
        seed=draw(st.integers(min_value=0, max_value=7)),
    )


def run_can_engine(engine, scheme, spec, ops):
    space = ResourceSpace(gpu_slots=1)
    overlay = CanOverlay(space)
    proto = build_protocol(
        overlay, ProtocolConfig(scheme=scheme, period=PERIOD), engine=engine
    )
    rng = np.random.default_rng(20110926)
    ids = itertools.count()

    def coord():
        return space.clamp_point(rng.random(space.dims))

    proto.bootstrap(next(ids), coord())
    for _ in range(INITIAL_NODES - 1):
        proto.join(next(ids), coord(), now=0.0)
    proto.set_network(spec.build(np.random.default_rng(99)))
    now = 0.0
    for kind, r in ops:
        if kind == "round":
            now += PERIOD
            proto.run_round(now)
            continue
        now += 1.0
        if kind == "join":
            proto.join(next(ids), coord(), now=now)
            continue
        alive = sorted(overlay.alive_ids())
        if len(alive) <= 4:
            continue
        proto.fail(alive[r % len(alive)], now)
    for _ in range(4):
        now += PERIOD
        proto.run_round(now)
    _check_network(proto)
    return proto, overlay


def fingerprint(proto, overlay):
    return {
        "count": {t.value: c for t, c in proto.stats.count.items()},
        "bytes": {t.value: c for t, c in proto.stats.bytes.items()},
        "events": dict(proto.events),
        "detected": sorted(proto._detected_failures),
        "alive": sorted(overlay.alive_ids()),
        "broken": proto.count_broken_links(),
        "net": proto.net.counters(),
        "deferred": sorted(
            (arrival, kind, dst) for arrival, kind, dst, *_ in proto._deferred
        ),
        "tables": {
            nid: {
                rec.node_id: (rec.version, node.table.last_heard(rec.node_id))
                for rec in node.table.records()
            }
            for nid, node in proto.nodes.items()
        },
    }


def run_chord(scheme, spec, ops):
    space = ResourceSpace(gpu_slots=1)
    ring = ChordRing(space, successor_list_size=4)
    rng = random.Random(20110926)
    ids = itertools.count()
    for _ in range(INITIAL_NODES):
        ring.add_node(next(ids), [rng.random() for _ in range(space.dims)])
    proto = ChordMaintenanceProtocol(
        ring, ProtocolConfig(scheme=scheme, period=PERIOD),
        rng=random.Random(7),
    )
    proto.adopt_overlay(now=0.0)
    proto.set_network(spec.build(np.random.default_rng(99)))
    failed = set()
    now = 0.0
    for kind, r in ops:
        if kind == "round":
            now += PERIOD
            proto.run_round(now)
            continue
        now += 1.0
        if kind == "join":
            proto.join(
                next(ids), [rng.random() for _ in range(space.dims)], now=now
            )
            continue
        # members keeps failed-but-unclaimed nodes until their arc is taken
        members = sorted(set(ring.members) - failed)
        if len(members) <= 4:
            continue
        victim = members[r % len(members)]
        proto.fail(victim, now)
        failed.add(victim)
    for _ in range(4):
        now += PERIOD
        proto.run_round(now)
    return ring, proto, failed


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(op, max_size=10),
    spec=network_specs(),
    scheme=st.sampled_from(list(HeartbeatScheme)),
)
def test_engines_and_substrates_agree_under_adversity(ops, spec, scheme):
    # CAN: the array engine must shadow the object engine exactly
    obj = fingerprint(*run_can_engine("object", scheme, spec, ops))
    arr = fingerprint(*run_can_engine("array", scheme, spec, ops))
    for key in obj:
        assert obj[key] == arr[key], f"{key} diverged between engines"

    # Chord: same adversity, its own invariants must hold mid-flight
    ring, proto, failed = run_chord(scheme, spec, ops)
    try:
        _check_network(proto)
        ring.check_invariants()
    except InvariantViolation as exc:  # pragma: no cover - failure path
        raise AssertionError(f"spurious invariant failure: {exc}") from exc
    # detections are never spurious: only genuinely crashed nodes count
    assert set(proto._detected_failures) <= failed
