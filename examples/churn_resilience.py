#!/usr/bin/env python
"""Watch the three heartbeat schemes survive (or not) a churny afternoon.

Spins up one CAN per scheme, then subjects each to the same churn storm —
silent node failures and joins arriving several times per heartbeat period —
and reports broken links (stale routing state) and messaging costs.

This is a small interactive version of the paper's Figures 7 and 8.

Run:  python examples/churn_resilience.py
"""

from repro.analysis import ascii_plot, format_table
from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import ChurnConfig, ChurnSimulation


def main() -> None:
    results = {}
    routing = {}
    for scheme in HeartbeatScheme:
        cfg = ChurnConfig(
            initial_nodes=150,
            gpu_slots=2,  # 11-dimensional CAN, as in the paper
            scheme=scheme,
            heartbeat_period=60.0,
            event_gap_mean=15.0,  # ~4 events per heartbeat period
            leave_mode="fail",  # crashes, not goodbyes
            duration=8_000.0,
        )
        print(f"running {scheme.value} ...")
        sim = ChurnSimulation(cfg)
        results[scheme.value] = sim.run()
        routing[scheme.value] = sim.routing_success_rate(samples=300)

    rows = []
    for name, res in results.items():
        rows.append(
            [
                name,
                f"{res.steady_state_broken_links():.1f}",
                f"{routing[name] * 100:.1f}%",
                f"{res.rates.messages_per_node_minute:.1f}",
                f"{res.rates.kbytes_per_node_minute:.1f}",
                res.events["failures"],
                res.final_population,
            ]
        )
    print()
    print(format_table(
        [
            "scheme",
            "broken links (steady)",
            "lookup delivery",
            "msgs/node/min",
            "KB/node/min",
            "failures",
            "population",
        ],
        rows,
        title="Failure resilience vs maintenance cost under high churn",
    ))

    print()
    print(ascii_plot(
        {
            name: (res.broken_links_times, res.broken_links_values)
            for name, res in results.items()
        },
        title="Broken links over time (lower is better)",
        xlabel="simulated seconds",
        ylabel="broken links",
        height=14,
    ))

    print(
        "\nReading: vanilla pays O(d^2) bandwidth for its resilience;\n"
        "compact gets O(d) bandwidth but accumulates irreparable broken\n"
        "links; adaptive keeps compact's cost and repairs on demand."
    )


if __name__ == "__main__":
    main()
