#!/usr/bin/env python
"""Compare the three matchmakers on a GPU-heavy scientific workload.

Models the scenario from the paper's introduction: a desktop grid where many
machines carry CUDA-class GPUs and most submitted jobs are GPU-dominant
iterative scientific computations (with a CPU core driving each GPU).  The
interesting question is who notices an *idle GPU behind a busy CPU* — the
acceptable-node concept — and who steers by the *dominant CE*.

Run:  python examples/heterogeneous_cluster.py
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.gridsim import GridSimulation, MatchmakingConfig
from repro.workload import WorkloadPreset
from repro.workload.jobs import JobDistribution
from repro.workload.nodes import NodeDistribution

# A GPU-rich fleet: 70 % of nodes have the first GPU type, 40 % the second.
GPU_RICH_NODES = replace(
    NodeDistribution(), gpu_presence=(0.7, 0.4)
)

# A GPU-heavy job mix: three quarters of jobs are GPU-dominant.
GPU_HEAVY_JOBS = replace(
    JobDistribution(), gpu_job_fraction=0.75
)

PRESET = WorkloadPreset(
    name="gpu-cluster",
    nodes=150,
    jobs=1500,
    gpu_slots=2,
    mean_interarrival=18.0,  # keeps the grid busy
    constraint_ratio=0.6,
)


def main() -> None:
    rows = []
    for scheme in ("can-het", "can-hom", "central"):
        sim = GridSimulation(
            MatchmakingConfig(PRESET, scheme=scheme),
            node_dist=GPU_RICH_NODES,
            job_dist=GPU_HEAVY_JOBS,
        )
        result = sim.run()
        s = result.summary()
        rows.append(
            [
                scheme,
                f"{s['mean_wait']:.0f}",
                f"{s['p90_wait']:.0f}",
                f"{s['p95_wait']:.0f}",
                f"{s['zero_wait_fraction'] * 100:.1f}%",
                result.matchmaking.placed_on_free,
                result.matchmaking.placed_on_acceptable,
            ]
        )
    print(format_table(
        [
            "scheme",
            "mean wait (s)",
            "p90 (s)",
            "p95 (s)",
            "instant start",
            "on free node",
            "on acceptable",
        ],
        rows,
        title=(
            "GPU-heavy workload: heterogeneity-aware matchmaking vs the "
            "oblivious baseline vs an all-knowing centralized scheduler"
        ),
    ))
    print(
        "\ncan-het's edge comes from the 'on acceptable' column: placements\n"
        "on nodes whose dominant CE was idle even though the node as a\n"
        "whole looked busy — exactly what can-hom cannot see."
    )


if __name__ == "__main__":
    main()
