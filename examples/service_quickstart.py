#!/usr/bin/env python
"""Quickstart for the live service: the same grid, over HTTP.

The batch simulators drive the protocol stack (CAN overlay, heartbeats,
heterogeneity-aware matchmaker) under a discrete-event clock.  This example
runs the *identical* stack as a live service instead:

1. open a persistent sqlite job ledger;
2. start a ``GridService`` on an ``AsyncioClock`` (wall clock, dilated so
   an hour of model time passes in under two wall seconds);
3. put the asyncio JSON/REST gateway in front of it on an ephemeral port;
4. submit a recorded workload trace over HTTP with the typed client,
   crash a busy node mid-run, and watch every job reach a terminal state;
5. show that a second service on the same ledger has nothing to recover.

Run:  python examples/service_quickstart.py
"""

import asyncio
import os
import tempfile

from repro.service import (
    AsyncioClock,
    Gateway,
    GridService,
    JobStatus,
    ServiceClient,
    ServiceConfig,
    open_ledger,
)
from repro.service.replay import record_trace, replay_trace
from repro.workload import TINY_LOAD
from repro.workload.trace import load_jobs

DILATION = 2_000.0  # model seconds per wall second


def drive(client: ServiceClient) -> None:
    """Everything HTTP happens here, on a worker thread off the event loop."""
    health = client.health()
    print(f"gateway up: {health['population']} nodes, "
          f"scheme {health['scheme']}, model t={health['now']:.0f}s")

    # replay the first 20 jobs of a recorded fig5-style workload trace
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "workload.jsonl")
        record_trace(TINY_LOAD, trace)
        jobs = load_jobs(trace)[:20]
    summary = replay_trace(client, jobs, timeout=60.0)
    print(f"replayed {summary['submitted']} jobs in "
          f"{summary['wall_seconds']:.1f}s wall: {summary['terminal']}")

    # chaos: crash whichever node is running jobs; the heartbeat protocol
    # detects it and the retry policy re-places the lost work
    ids = [client.submit(job) for job in jobs[:10]]
    for view in map(client.status, ids):
        if view.status is JobStatus.RUNNING and view.node_id is not None:
            lost = client.fail_node(view.node_id)
            print(f"crashed node {view.node_id}, lost jobs {lost}")
            break
    views = client.wait(ids, timeout=60.0)
    census = {}
    for view in views.values():
        census[view.status.value] = census.get(view.status.value, 0) + 1
    print(f"after recovery: {census}")


async def main() -> None:
    loop = asyncio.get_running_loop()
    clock = AsyncioClock(loop=loop, dilation=DILATION)

    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "ledger.sqlite")
        ledger = open_ledger(db, clock=clock)
        service = GridService(ServiceConfig(preset=TINY_LOAD), ledger, clock)
        gateway = Gateway(service)  # port=0 -> ephemeral
        await gateway.start()
        print(f"listening on {gateway.url}")
        try:
            # the blocking client must not run on the gateway's loop thread
            await asyncio.to_thread(drive, ServiceClient(gateway.url))
        finally:
            await gateway.stop()
            ledger.close()

        # a fresh service on the same sqlite file finds a drained ledger:
        # recover() re-enters only non-terminal jobs, and there are none
        clock2 = AsyncioClock(loop=loop, dilation=DILATION)
        ledger2 = open_ledger(db, clock=clock2)
        service2 = GridService(ServiceConfig(preset=TINY_LOAD), ledger2, clock2)
        print(f"restart recovery re-entered {service2.recover()} jobs "
              f"(ledger already terminal)")
        ledger2.close()


if __name__ == "__main__":
    asyncio.run(main())
