#!/usr/bin/env python
"""Drive the substrate layer directly: registry, overlays, routing, kernel.

The higher-level examples use `GridSimulation`, which wires everything for
you.  This one goes a level down and uses the public pieces à la carte —
useful when embedding the library in your own experiment harness:

* resolve substrates by name from the `repro.overlay` registry and build
  the same hand-picked fleet on a CAN *and* on a Chord ring,
* inspect neighbors / take-over designations through the
  substrate-generic surface (plus each substrate's own extras),
* route a job coordinate through each substrate's own routing rule,
* run the job on the bare discrete-event kernel,
* watch a graceful leave hand ownership off on either structure.

Run:  python examples/custom_substrate.py
"""

import numpy as np

from repro.analysis import format_table
from repro.can.space import ResourceSpace
from repro.model.ce import CESpec, CPU_SLOT, gpu_slot
from repro.model.job import CERequirement, Job
from repro.model.node import GridNode, NodeSpec
from repro.overlay import available_substrates, get_substrate
from repro.sim.core import Environment


def build_fleet():
    """Six hand-picked machines: three CPU boxes, three GPU workstations."""
    mk = lambda nid, ces: NodeSpec(node_id=nid, ces=tuple(ces))
    cpu = lambda clock, cores: CESpec(
        slot=CPU_SLOT, clock=clock, memory=8, disk=250, cores=cores
    )
    gpu = lambda clock: CESpec(
        slot=gpu_slot(0), clock=clock, memory=4, cores=240, dedicated=True
    )
    return [
        mk(0, [cpu(1.0, 2)]),
        mk(1, [cpu(2.0, 4)]),
        mk(2, [cpu(3.5, 8)]),
        mk(3, [cpu(1.2, 4), gpu(1.0)]),
        mk(4, [cpu(1.5, 4), gpu(2.2)]),
        mk(5, [cpu(2.5, 8), gpu(3.0)]),
    ]


def show_overlay(name, overlay):
    """The substrate-generic view: neighbors + take-over designations."""
    rows = []
    for nid in sorted(overlay.alive_ids()):
        rows.append(
            [
                nid,
                sorted(overlay.neighbors(nid)),
                sorted(overlay.takeover_targets(nid)),
            ]
        )
    print(format_table(
        ["node", "neighbors", "take-over node(s)"],
        rows,
        title=f"The fleet on the {name!r} substrate "
              f"({overlay.space.dims} resource dimensions)",
    ))
    # substrate-specific extras live behind the generic surface
    if hasattr(overlay, "zones_of"):  # CAN: zone cover per node
        zones = {nid: len(overlay.zones_of(nid)) for nid in overlay.alive_ids()}
        print(f"CAN zone counts: {zones}")
    if hasattr(overlay, "key_of"):  # Chord: ring order by key
        order = sorted(overlay.alive_ids(), key=overlay.key_of)
        print(f"Chord ring order: {' -> '.join(map(str, order))} -> wrap")


def main() -> None:
    print(f"registered substrates: {', '.join(available_substrates())}\n")
    space = ResourceSpace(gpu_slots=1)  # 8 resource dimensions
    env = Environment()
    rng = np.random.default_rng(11)
    fleet = build_fleet()
    grid = {spec.node_id: GridNode(spec, env) for spec in fleet}
    coords = {
        spec.node_id: space.node_coordinate(spec, float(rng.random()))
        for spec in fleet
    }

    # The same GPU job routes through every substrate's own rule.
    job = Job(
        requirements={
            gpu_slot(0): CERequirement(cores=128, clock=1.5),
            CPU_SLOT: CERequirement(cores=1),
        },
        base_duration=3600.0,
    )
    target = space.job_coordinate(job, virtual=float(rng.random()))

    owner = None
    for name in ("can", "chord"):
        substrate = get_substrate(name)
        overlay = substrate.make_overlay(space)
        for nid, coord in coords.items():
            overlay.add_node(nid, coord)
        overlay.check_invariants()
        show_overlay(name, overlay)

        path = substrate.route(overlay, 5, target)
        owner = path[-1]
        print(f"job coordinate routed {' -> '.join(map(str, path))} "
              f"({len(path) - 1} hops); owner capable: "
              f"{grid[owner].capable(job)}")

        # A node leaves; ownership hands off (split history on the CAN,
        # the successor arc on the ring).
        for t in overlay.graceful_leave(owner):
            print(f"node {t.from_node} left: ownership -> node {t.to_node}")
        overlay.check_invariants()
        print("overlay invariants hold after the leave\n")

    # Pick a capable node and execute the job on the DES kernel.
    runner = next(
        grid[nid] for nid in sorted(grid) if grid[nid].capable(job)
    )
    runner.submit(job)
    env.run()
    print(
        f"job ran on node {runner.node_id}: started {job.start_time:.0f}s, "
        f"finished {job.finish_time:.0f}s "
        f"(dominant CE clock {runner.dominant_clock(job):g} -> "
        f"{job.finish_time - job.start_time:.0f}s wall)"
    )


if __name__ == "__main__":
    main()
