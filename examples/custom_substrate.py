#!/usr/bin/env python
"""Drive the substrates directly: the CAN, routing, and the DES kernel.

The higher-level examples use `GridSimulation`, which wires everything for
you.  This one goes a level down and uses the public pieces à la carte —
useful when embedding the library in your own experiment harness:

* hand-build a CAN from explicit machines,
* inspect zones / neighbors / take-over designations,
* greedy-route a job coordinate through the overlay,
* run a few processes on the bare discrete-event kernel.

Run:  python examples/custom_substrate.py
"""

import numpy as np

from repro.analysis import format_table
from repro.can.overlay import CanOverlay
from repro.can.routing import route
from repro.can.space import ResourceSpace
from repro.model.ce import CESpec, CPU_SLOT, gpu_slot
from repro.model.job import CERequirement, Job
from repro.model.node import GridNode, NodeSpec
from repro.sim.core import Environment


def build_fleet():
    """Six hand-picked machines: three CPU boxes, three GPU workstations."""
    mk = lambda nid, ces: NodeSpec(node_id=nid, ces=tuple(ces))
    cpu = lambda clock, cores: CESpec(
        slot=CPU_SLOT, clock=clock, memory=8, disk=250, cores=cores
    )
    gpu = lambda clock: CESpec(
        slot=gpu_slot(0), clock=clock, memory=4, cores=240, dedicated=True
    )
    return [
        mk(0, [cpu(1.0, 2)]),
        mk(1, [cpu(2.0, 4)]),
        mk(2, [cpu(3.5, 8)]),
        mk(3, [cpu(1.2, 4), gpu(1.0)]),
        mk(4, [cpu(1.5, 4), gpu(2.2)]),
        mk(5, [cpu(2.5, 8), gpu(3.0)]),
    ]


def main() -> None:
    space = ResourceSpace(gpu_slots=1)  # 8-dimensional CAN
    overlay = CanOverlay(space)
    env = Environment()
    rng = np.random.default_rng(11)

    grid = {}
    for spec in build_fleet():
        coord = space.node_coordinate(spec, float(rng.random()))
        overlay.add_node(spec.node_id, coord)
        grid[spec.node_id] = GridNode(spec, env)
    overlay.check_invariants()

    rows = []
    for nid in sorted(overlay.alive_ids()):
        rows.append(
            [
                nid,
                len(overlay.zones_of(nid)),
                sorted(overlay.neighbors(nid)),
                sorted(overlay.takeover_targets(nid)),
            ]
        )
    print(format_table(
        ["node", "zones", "CAN neighbors", "take-over node(s)"],
        rows,
        title=f"A hand-built {space.dims}-dimensional CAN",
    ))

    # Route a GPU job to its coordinate, then run it on the owner.
    job = Job(
        requirements={
            gpu_slot(0): CERequirement(cores=128, clock=1.5),
            CPU_SLOT: CERequirement(cores=1),
        },
        base_duration=3600.0,
    )
    target = space.job_coordinate(job, virtual=float(rng.random()))
    path = route(overlay, start_id=0, point=target)
    owner = path[-1]
    print(f"\njob coordinate routed 0 -> {' -> '.join(map(str, path))}")
    print(f"zone owner: node {owner}; capable: {grid[owner].capable(job)}")

    # Pick a capable node and execute the job on the DES kernel.
    runner = next(
        grid[nid] for nid in sorted(grid) if grid[nid].capable(job)
    )
    runner.submit(job)
    env.run()
    print(
        f"job ran on node {runner.node_id}: started {job.start_time:.0f}s, "
        f"finished {job.finish_time:.0f}s "
        f"(dominant CE clock {runner.dominant_clock(job):g} -> "
        f"{job.finish_time - job.start_time:.0f}s wall)"
    )

    # A node leaves; its zone hands off along the split history.
    transfers = overlay.graceful_leave(owner) if overlay.is_alive(owner) else []
    for t in transfers:
        print(f"node {t.from_node} left: zone -> node {t.to_node}")
    overlay.check_invariants()
    print("overlay invariants hold after the leave")


if __name__ == "__main__":
    main()
