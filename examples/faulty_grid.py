#!/usr/bin/env python
"""Scheduling while the grid burns: matchmaking quality under node churn.

The paper measures load balancing on a stable grid and failure resilience
with no workload.  Real desktop grids do both at once: machines crash with
jobs on them, the jobs are lost, detected, and resubmitted, and newly-joined
machines absorb load.  This example sweeps the failure rate and shows how
each matchmaker's wait times and lost-work ledger degrade.

Run:  python examples/faulty_grid.py
"""

from repro.analysis import format_table
from repro.gridsim import (
    FaultyGridConfig,
    FaultyGridSimulation,
    MatchmakingConfig,
)
from repro.workload import WorkloadPreset

PRESET = WorkloadPreset(
    name="faulty",
    nodes=120,
    jobs=1200,
    gpu_slots=2,
    mean_interarrival=25.0,
    constraint_ratio=0.6,
)

#: mean time between failures across the grid, in seconds
FAILURE_RATES = (1e9, 600.0, 150.0)  # none / moderate / brutal


def label(mtbf: float) -> str:
    if mtbf >= 1e9:
        return "no churn"
    return f"failure every {mtbf:.0f}s"


def main() -> None:
    rows = []
    for mtbf in FAILURE_RATES:
        for scheme in ("can-het", "central"):
            cfg = FaultyGridConfig(
                MatchmakingConfig(PRESET, scheme=scheme),
                mean_time_between_failures=mtbf,
                mean_time_between_joins=max(mtbf, 600.0) if mtbf < 1e9 else 1e9,
            )
            res = FaultyGridSimulation(cfg).run()
            s = res.summary()
            rows.append(
                [
                    label(mtbf),
                    scheme,
                    f"{s['mean_wait']:.0f}",
                    f"{s['p95_wait']:.0f}",
                    int(s["failures"]),
                    int(s["jobs_lost"]),
                    int(s["jobs_resubmitted"]),
                    int(s["jobs_abandoned"]),
                ]
            )
    print(format_table(
        [
            "churn",
            "scheme",
            "mean wait (s)",
            "p95 (s)",
            "failures",
            "jobs lost",
            "resubmitted",
            "abandoned",
        ],
        rows,
        title="Matchmaking under churn (lost jobs are detected and resubmitted)",
    ))
    print(
        "\nEven under brutal churn the decentralized matchmaker keeps pace\n"
        "with the centralized one — placement quality is limited by lost\n"
        "work and resubmission latency, not by decentralization."
    )


if __name__ == "__main__":
    main()
