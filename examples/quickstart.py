#!/usr/bin/env python
"""Quickstart: build a small heterogeneous P2P grid and schedule jobs on it.

This walks through the library's main moving parts in ~80 lines:

1. generate a heterogeneous node population (CPUs + up to two GPU types);
2. let the nodes join a CAN overlay keyed by their resource coordinates;
3. run the paper's heterogeneity-aware matchmaker (can-het) over a Poisson
   job stream;
4. print wait-time statistics and the CDF the paper's figures use.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.gridsim import GridSimulation, MatchmakingConfig, wait_time_table
from repro.workload import SMALL_LOAD


def main() -> None:
    # A preset bundles the scenario: 200 nodes, 3000 jobs, 11-d CAN
    # (CPU + two GPU types), Poisson arrivals, 60 % constraint ratio.
    preset = SMALL_LOAD
    print(f"workload: {preset.nodes} nodes, {preset.jobs} jobs, "
          f"mean inter-arrival {preset.mean_interarrival:g}s")

    # One line builds everything: node specs, CAN overlay, aggregation
    # engine, matchmaker, and the discrete-event simulation.
    sim = GridSimulation(MatchmakingConfig(preset, scheme="can-het"))

    # Peek at the substrate before running.
    print(f"CAN dimensionality: {sim.space.dims}")
    some_node = sim.grid_nodes[0]
    print(f"node 0 owns CEs: {sorted(some_node.ces)}")
    print(f"node 0 CAN neighbors: {len(sim.overlay.neighbors(0))}")

    result = sim.run()

    summary = result.summary()
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["jobs completed", f"{int(summary['jobs'])}"],
            ["unplaced", result.unplaced_jobs],
            ["mean wait (s)", f"{summary['mean_wait']:.1f}"],
            ["p95 wait (s)", f"{summary['p95_wait']:.1f}"],
            ["started instantly", f"{summary['zero_wait_fraction'] * 100:.1f}%"],
            ["mean push hops", f"{summary['mean_push_hops']:.2f}"],
        ],
        title="can-het on the small preset",
    ))

    print()
    print(format_table(
        ["wait <= (s)", "% of jobs"],
        [[f"{t:,.0f}", f"{pct:.2f}"] for t, pct in
         wait_time_table(result.wait_times)],
        title="Wait-time CDF (the paper's Figure 5/6 metric)",
    ))


if __name__ == "__main__":
    main()
