#!/usr/bin/env python
"""Sweep CAN dimensionality and watch maintenance costs scale.

Adding CE types means adding CAN dimensions (5 -> 8 -> 11 -> 14 for 0-3 GPU
slots).  This example measures what that does to per-node messaging — the
core scalability question of the paper's Section IV — for vanilla versus
compact heartbeats, and fits the growth order of each.

Run:  python examples/scalability_sweep.py
"""

import numpy as np

from repro.analysis import ascii_plot, format_table
from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import ChurnConfig, ChurnSimulation

GPU_SLOTS = (0, 1, 2, 3)
SCHEMES = (HeartbeatScheme.VANILLA, HeartbeatScheme.COMPACT)


def measure(scheme: HeartbeatScheme, gpu_slots: int):
    cfg = ChurnConfig(
        initial_nodes=120,
        gpu_slots=gpu_slots,
        scheme=scheme,
        heartbeat_period=60.0,
        event_gap_mean=120.0,  # slow churn: pure maintenance cost
        duration=1_500.0,
    )
    res = ChurnSimulation(cfg).run()
    return cfg.dims, res.rates


def main() -> None:
    rows = []
    volume_series = {}
    for scheme in SCHEMES:
        dims_list, volumes = [], []
        for g in GPU_SLOTS:
            dims, rates = measure(scheme, g)
            rows.append(
                [
                    scheme.value,
                    dims,
                    f"{rates.messages_per_node_minute:.1f}",
                    f"{rates.kbytes_per_node_minute:.1f}",
                ]
            )
            dims_list.append(dims)
            volumes.append(rates.kbytes_per_node_minute)
        volume_series[scheme.value] = (dims_list, volumes)
        # growth-order fit: log-log slope ~1 means linear, ~2 quadratic
        slope = np.polyfit(np.log(dims_list), np.log(volumes), 1)[0]
        print(f"{scheme.value}: volume ~ d^{slope:.2f}")

    print()
    print(format_table(
        ["scheme", "CAN dims", "msgs/node/min", "KB/node/min"],
        rows,
        title="Maintenance cost vs dimensionality (120 nodes, slow churn)",
    ))
    print()
    print(ascii_plot(
        volume_series,
        title="Heartbeat volume vs CAN dimensions",
        xlabel="dimensions",
        ylabel="KB/node/min",
        height=12,
    ))


if __name__ == "__main__":
    main()
