"""repro.net — deterministic network realism for the overlay protocols.

See :mod:`repro.net.model` for the channel abstraction (`NetworkModel`),
its frozen spec types, and the identity-channel contract that keeps
loss-free seeded runs byte-identical.
"""

from .model import (
    IDENTITY,
    FlapSpec,
    LatencySpec,
    NetworkModel,
    NetworkSpec,
    PartitionSpec,
)

__all__ = [
    "IDENTITY",
    "FlapSpec",
    "LatencySpec",
    "NetworkModel",
    "NetworkSpec",
    "PartitionSpec",
]
