"""Deterministic network-realism model: latency, partitions, flapping links.

Every unreliable message in the maintenance protocols traverses one
:class:`NetworkModel` — the single channel abstraction that replaced the
scattered inline ``loss_rng.random() < loss_rate`` sites.  A model is
built from a frozen :class:`NetworkSpec` (so it can live inside frozen
simulation configs) and answers exactly one question per send::

    latency = model.transmit(src, dst, now)   # None -> dropped

The design constraint throughout is *determinism with order
independence*:

* **Loss** is the only feature that consumes the shared RNG stream, and
  it draws exactly one uniform per attempted send — the same draw
  pattern as the historical inline sites, so a loss-only model replays
  old seeded runs byte-for-byte.
* **Partitions** and **flapping links** are pure functions of
  ``(src, dst, now)`` — no RNG at all.  Which links a flap storm affects
  and the phase of each link's up/down square wave come from a
  splitmix64 hash of the link pair, so two simulations that send in
  different orders still see identical link schedules.
* **Latency** is drawn per *directed* link pair from a hash-seeded
  uniform pair (never the shared stream) and cached by ``(src, dst)``,
  so a pair's latency is stable for the run and independent of when it
  is first used.

The :data:`IDENTITY` singleton is the ideal channel: protocols bypass it
entirely (no draws, no counters), which is what keeps the seeded goldens
and ``trace_sha256`` pins of loss-free runs unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "LatencySpec",
    "PartitionSpec",
    "FlapSpec",
    "NetworkSpec",
    "NetworkModel",
    "IDENTITY",
]

_INF = math.inf


# ---------------------------------------------------------------- hashing --
def _splitmix64(x: int) -> int:
    """One splitmix64 round: cheap, well-mixed 64-bit hash step."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def _mix(*parts: int) -> int:
    """Hash a tuple of ints into a 64-bit value, order-sensitive."""
    h = 0x5851F42D4C957F2D
    for p in parts:
        h = _splitmix64(h ^ (p & 0xFFFFFFFFFFFFFFFF))
    return h


def _unit(h: int) -> float:
    """Map a 64-bit hash to a uniform in [0, 1)."""
    return (h >> 11) / float(1 << 53)


# ------------------------------------------------------------------ specs --
@dataclass(frozen=True)
class LatencySpec:
    """Per-link one-way latency distribution (seconds).

    ``constant`` uses ``low``; ``uniform`` draws from [low, high);
    ``lognormal`` draws exp(mu + sigma·z) with z standard normal — the
    classic heavy-tailed WAN latency shape.
    """

    kind: str = "constant"
    low: float = 0.0
    high: float = 0.0
    mu: float = 0.0
    sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("constant", "uniform", "lognormal"):
            raise ValueError(f"unknown latency kind {self.kind!r}")
        if self.kind == "uniform" and self.high < self.low:
            raise ValueError("uniform latency needs high >= low")
        if self.low < 0.0:
            raise ValueError("latency cannot be negative")
        if self.kind == "lognormal" and self.sigma < 0.0:
            raise ValueError("lognormal sigma cannot be negative")

    def draw(self, u1: float, u2: float) -> float:
        """Latency from two unit uniforms (hash-derived, not the RNG)."""
        if self.kind == "constant":
            return self.low
        if self.kind == "uniform":
            return self.low + (self.high - self.low) * u1
        # Box-Muller; clamp u1 away from 0 so log() is finite
        z = math.sqrt(-2.0 * math.log(max(u1, 1e-12))) * math.cos(
            2.0 * math.pi * u2
        )
        return math.exp(self.mu + self.sigma * z)


@dataclass(frozen=True)
class PartitionSpec:
    """A directional cut: messages from ``src`` ids to ``dst`` ids are
    blocked during [start, end).  Asymmetric by default — A→B can be cut
    while B→A still delivers — set ``symmetric=True`` for a clean split.
    Empty ``src``/``dst`` means "every node" on that side.
    """

    src: Tuple[int, ...] = ()
    dst: Tuple[int, ...] = ()
    start: float = 0.0
    end: float = _INF
    symmetric: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", tuple(self.src))
        object.__setattr__(self, "dst", tuple(self.dst))
        if self.end < self.start:
            raise ValueError("partition needs end >= start")

    def blocks(self, src: int, dst: int, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self._matches(src, dst):
            return True
        return self.symmetric and self._matches(dst, src)

    def _matches(self, src: int, dst: int) -> bool:
        return (not self.src or src in self.src) and (
            not self.dst or dst in self.dst
        )


@dataclass(frozen=True)
class FlapSpec:
    """Flapping links: an up/down square wave over a window.

    During [start, end), a ``fraction`` of undirected link pairs flap:
    each affected link repeats ``down`` seconds unreachable then ``up``
    seconds fine, debounce-style — the link state only changes at
    schedule edges, never per message.  Which links flap and each link's
    phase offset are hashed from the (unordered) pair, so the same links
    flap with the same schedule regardless of traffic order.
    """

    down: float
    up: float
    fraction: float = 1.0
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        if self.down <= 0.0 or self.up < 0.0:
            raise ValueError("flap needs down > 0 and up >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("flap fraction must be in (0, 1]")
        if self.end < self.start:
            raise ValueError("flap needs end >= start")

    def link_down(self, src: int, dst: int, now: float, salt: int) -> bool:
        if not self.start <= now < self.end:
            return False
        a, b = (src, dst) if src <= dst else (dst, src)
        h = _mix(salt, 0xF1A9, a, b)
        if self.fraction < 1.0 and _unit(h) >= self.fraction:
            return False  # this link sat the storm out
        cycle = self.down + self.up
        phase = _unit(_splitmix64(h)) * cycle
        return (now - self.start + phase) % cycle < self.down


@dataclass(frozen=True)
class NetworkSpec:
    """Frozen description of a network model; ``build()`` makes it live.

    ``loss`` is the uniform Bernoulli drop probability (closed interval
    [0, 1]: 1.0 is a total blackout, exactly what partition tests need).
    ``seed`` salts the hash streams for link latency/flap assignment so
    two specs can differ only in which links misbehave.
    """

    loss: float = 0.0
    latency: Optional[LatencySpec] = None
    partitions: Tuple[PartitionSpec, ...] = ()
    flaps: Tuple[FlapSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "flaps", tuple(self.flaps))
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")

    @property
    def identity(self) -> bool:
        return (
            self.loss == 0.0
            and self.latency is None
            and not self.partitions
            and not self.flaps
        )

    def build(
        self, rng: Optional[np.random.Generator] = None
    ) -> "NetworkModel":
        return NetworkModel(self, rng)


# ------------------------------------------------------------------ model --
class NetworkModel:
    """Live channel: per-send verdicts plus delivery accounting.

    Counters (``attempts``, ``delivered``, ``drops`` by reason) feed the
    mid-flight invariant checkers: every attempted send must be exactly
    one of delivered or dropped.
    """

    __slots__ = (
        "spec",
        "_rng",
        "_latency_cache",
        "attempts",
        "delivered",
        "drops",
    )

    def __init__(
        self,
        spec: NetworkSpec = NetworkSpec(),
        rng: Optional[np.random.Generator] = None,
    ):
        if spec.loss > 0.0 and rng is None:
            raise ValueError("message loss needs a seeded rng")
        self.spec = spec
        self._rng = rng
        self._latency_cache: Dict[Tuple[int, int], float] = {}
        self.attempts = 0
        self.delivered = 0
        self.drops = {"loss": 0, "partition": 0, "link_down": 0}

    @property
    def is_identity(self) -> bool:
        return self.spec.identity

    @property
    def dropped(self) -> int:
        return sum(self.drops.values())

    def transmit(self, src: int, dst: int, now: float) -> Optional[float]:
        """One attempted send: None when dropped, else one-way latency.

        Verdict order: partition, link flap (both RNG-free), then the
        Bernoulli loss draw — so deterministic cuts never consume the
        shared RNG stream, and a loss-only model draws exactly one
        uniform per send (the historical inline-site behaviour).
        """
        spec = self.spec
        if spec.identity:
            return 0.0  # ideal channel: no draws, no accounting
        self.attempts += 1
        for part in spec.partitions:
            if part.blocks(src, dst, now):
                self.drops["partition"] += 1
                return None
        for flap in spec.flaps:
            if flap.link_down(src, dst, now, spec.seed):
                self.drops["link_down"] += 1
                return None
        if spec.loss > 0.0 and self._rng.random() < spec.loss:
            self.drops["loss"] += 1
            return None
        self.delivered += 1
        if spec.latency is None:
            return 0.0
        key = (src, dst)
        lat = self._latency_cache.get(key)
        if lat is None:
            h = _mix(spec.seed, 0x1A7E, src, dst)
            lat = spec.latency.draw(_unit(h), _unit(_splitmix64(h)))
            self._latency_cache[key] = lat
        return lat

    def counters(self) -> Dict[str, int]:
        """Accounting snapshot for invariants, traces, and reports."""
        out = {"attempts": self.attempts, "delivered": self.delivered}
        for reason, count in self.drops.items():
            out[f"dropped_{reason}"] = count
        return out


#: the ideal channel — shared, stateless in practice (protocols bypass it
#: before any counter could move)
IDENTITY = NetworkModel()
