"""Per-run manifests: everything needed to identify and replay a run.

A manifest is a small JSON file written next to an experiment's CSVs that
records *how* the numbers were produced: the configuration, the seeds, the
code version (``git describe``), wall-clock cost, and the event counts of
the accompanying trace.  The trace answers "what happened"; the manifest
answers "what run is this, and can I trust/reproduce it".

Schema (see DESIGN.md § Observability):

.. code-block:: json

    {
      "name": "fig7",
      "schema_version": "1.0",    // rejected by readers on major mismatch
      "config": {...},            // experiment knobs, JSON-able
      "seed": 20110926,           // null when the experiment default was used
      "git_describe": "ac1a93a",
      "python": "3.11.7",
      "started_at": "2026-08-06T12:00:00+00:00",
      "wall_seconds": 12.3,
      "event_counts": {"msg.sent": 18234, ...},
      "total_events": 20411,
      "metrics": {...},           // MetricsRegistry snapshot, optional
      "artifacts": ["fig7_broken_links.csv", "fig7_trace.jsonl"]
    }
"""

from __future__ import annotations

import dataclasses
import datetime
import platform
import subprocess
import time
from typing import Any, Dict, List, Optional

from ..analysis.export import write_json
from .schema import SCHEMA_VERSION

__all__ = ["RunManifest", "git_describe"]


def git_describe(cwd: Optional[str] = None) -> str:
    """``git describe --always --dirty`` or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


@dataclasses.dataclass
class RunManifest:
    """Mutable while the run executes; ``write`` freezes it to JSON."""

    name: str
    schema_version: str = SCHEMA_VERSION
    config: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seed: Optional[int] = None
    git_describe: str = dataclasses.field(default_factory=git_describe)
    python: str = dataclasses.field(default_factory=platform.python_version)
    started_at: str = dataclasses.field(
        default_factory=lambda: datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds")
    )
    wall_seconds: Optional[float] = None
    event_counts: Dict[str, int] = dataclasses.field(default_factory=dict)
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    artifacts: List[str] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def total_events(self) -> int:
        return sum(self.event_counts.values())

    def finish(self) -> None:
        """Stamp the wall-clock duration (idempotent once set)."""
        if self.wall_seconds is None:
            self.wall_seconds = round(time.monotonic() - self._t0, 3)

    def as_dict(self) -> Dict[str, Any]:
        d = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
        }
        d["total_events"] = self.total_events
        return d

    def write(self, path: str) -> str:
        """Atomically write the manifest JSON to ``path``."""
        self.finish()
        return write_json(path, self.as_dict())
