"""Causal spans derived from the flat trace-event stream.

The trace layer records *events* — instants with no structure.  Operators
(and the paper's latency figures) reason about *intervals*: how long did
job 17 sit in matchmaking, how much of its life was heartbeat-detection
lag after its node crashed?  This module rebuilds that causal structure
deterministically from the event stream, either live (subscribe a
:class:`SpanBuilder` to the bus) or offline over a recorded JSONL trace
(:func:`build_spans`); both paths produce identical spans.

Span taxonomy (parent rules are documented per kind in DESIGN.md):

========== ============================================= =================
kind       covers                                        parent
========== ============================================= =================
job        submit -> terminal state (the trace root)     —
matchmake  placement attempt: first push -> placed/      job, or retry
           unplaced                                      when re-searching
push       one routing hop of the job advert (instant)   matchmake
queue      placed on a CE -> execution starts            job
run        executing on the CE -> finish/lost            job
crash      the hosting node dies (instant)               job
detect     crash -> heartbeat protocol notices           job
retry      detection -> resubmission decision            job
ring       expanding-ring degraded search (instant)      retry/matchmake
========== ============================================= =================

Span ids are deterministic — ``job<id>/<kind>#<seq>`` where ``seq`` is a
per-job monotone counter — so two rebuilds of the same trace (or a live
build and an offline one) agree byte-for-byte.  The *critical path* of a
job is the time-ordered chain of the root's direct children: because
nested detail (push hops, ring probes) hangs off deeper spans, the direct
children partition the job's life into the segments the paper plots
(matchmaking, queueing, execution, detection latency, retry backoff).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import EV, TraceEvent

__all__ = [
    "Span",
    "SpanBuilder",
    "build_spans",
    "read_trace_events",
]

#: span kinds, in taxonomy order (used for stable report ordering)
SPAN_KINDS = (
    "job",
    "matchmake",
    "push",
    "queue",
    "run",
    "crash",
    "detect",
    "retry",
    "ring",
)

_KIND_ORDER = {kind: i for i, kind in enumerate(SPAN_KINDS)}


class Span:
    """One causal interval in a job's life.  ``end is None`` while open."""

    __slots__ = ("span_id", "parent_id", "job", "kind", "start", "end", "status", "attrs")

    def __init__(
        self,
        span_id: str,
        parent_id: Optional[str],
        job: int,
        kind: str,
        start: float,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.job = job
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    @property
    def is_open(self) -> bool:
        return self.end is None

    def close(self, t: float, status: str = "ok") -> None:
        if self.end is None:
            self.end = t
            self.status = status

    def as_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "job": self.job,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = "open" if self.end is None else f"{self.duration:.6g}s"
        return f"Span({self.span_id}, {dur}, {self.status})"


class _JobState:
    """Per-job builder state: the root span plus at most one open span per kind."""

    __slots__ = (
        "root",
        "seq",
        "matchmake",
        "queue",
        "run",
        "detect",
        "retry",
        "crashed_node",
    )

    def __init__(self, root: Span):
        self.root = root
        self.seq = 0
        self.matchmake: Optional[Span] = None
        self.queue: Optional[Span] = None
        self.run: Optional[Span] = None
        self.detect: Optional[Span] = None
        self.retry: Optional[Span] = None
        self.crashed_node: Optional[int] = None


class SpanBuilder:
    """Rebuild causal spans from trace events, live or offline.

    Subscribe an instance to a :class:`~repro.obs.events.Tracer`/bus
    (``tracer.subscribe(builder)``) for a live build, or feed recorded
    dicts through :meth:`add_record`.  The builder is a per-job state
    machine; events for unknown jobs open an implicit root so partial
    traces (or ones recorded before the ``grid.job_submit`` event
    existed) still yield useful trees, flagged ``implicit_root``.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._jobs: Dict[int, _JobState] = {}
        #: jobs whose crash is awaiting heartbeat detection, per node
        self._awaiting: Dict[Optional[int], List[int]] = {}
        self._handlers = {
            EV.GRID_JOB_SUBMIT: self._on_submit,
            EV.SERVICE_SUBMIT: self._on_submit,
            EV.MM_PUSH: self._on_push,
            EV.MM_PLACED: self._on_placed,
            EV.MM_UNPLACED: self._on_unplaced,
            EV.GRID_JOB_START: self._on_start,
            EV.GRID_JOB_FINISH: self._on_finish,
            EV.SERVICE_COMPLETE: self._on_finish,
            EV.GRID_JOB_UNPLACED: self._on_terminal_unplaced,
            EV.GRID_JOB_LOST: self._on_lost,
            EV.RECOVERY_DETECTED: self._on_detected,
            EV.GRID_JOB_RESUBMIT: self._on_resubmit,
            EV.GRID_JOB_ABANDONED: self._on_abandoned,
            EV.RECOVERY_FALLBACK: self._on_fallback,
            EV.SERVICE_CANCEL: self._on_cancel,
            EV.SERVICE_JOB_STATUS: self._on_job_status,
        }

    # -- ingestion ---------------------------------------------------------------
    def __call__(self, event: TraceEvent) -> None:
        """Bus-subscriber entry point."""
        self.add(event.t, event.etype, event.fields)

    def add(self, t: float, etype: str, fields: Dict[str, Any]) -> None:
        handler = self._handlers.get(etype)
        if handler is not None:
            handler(t, fields)

    def add_record(self, record: Dict[str, Any]) -> None:
        """Feed one decoded JSONL trace line (``{"t": ..., "type": ..., ...}``)."""
        etype = record.get("type")
        if etype is None or "t" not in record:
            return
        fields = {k: v for k, v in record.items() if k not in ("t", "type")}
        self.add(record["t"], etype, fields)

    def finish(self, t: Optional[float] = None) -> None:
        """Close every span still open (end of trace / shutdown).

        Open spans get status ``"open"``; with no ``t`` the span's own
        start time is used so durations never go negative.
        """
        for span in self.spans:
            if span.end is None:
                span.close(t if t is not None else span.start, "open")

    # -- span bookkeeping --------------------------------------------------------
    def _state(self, t: float, job: int) -> _JobState:
        state = self._jobs.get(job)
        if state is None:
            root = Span(f"job{job}/job#0", None, job, "job", t)
            root.attrs["implicit_root"] = True
            state = _JobState(root)
            self._jobs[job] = state
            self.spans.append(root)
        return state

    def _open(
        self,
        state: _JobState,
        kind: str,
        t: float,
        parent: Span,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        state.seq += 1
        span = Span(
            f"job{state.root.job}/{kind}#{state.seq}",
            parent.span_id,
            state.root.job,
            kind,
            t,
            attrs,
        )
        self.spans.append(span)
        return span

    def _instant(
        self,
        state: _JobState,
        kind: str,
        t: float,
        parent: Span,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        span = self._open(state, kind, t, parent, attrs)
        span.close(t)
        return span

    def _close_active(self, state: _JobState, t: float, status: str) -> None:
        """Close whatever interval the job is currently inside."""
        for name in ("matchmake", "queue", "run", "detect", "retry"):
            span = getattr(state, name)
            if span is not None:
                span.close(t, status)
                setattr(state, name, None)

    def _terminal(self, state: _JobState, t: float, status: str) -> None:
        if state.root.end is not None:
            return
        self._close_active(state, t, status)
        state.root.close(t, status)

    # -- event handlers ----------------------------------------------------------
    def _on_submit(self, t: float, fields: Dict[str, Any]) -> None:
        job = fields["job"]
        if job in self._jobs:
            return
        root = Span(f"job{job}/job#0", None, job, "job", t)
        self._jobs[job] = _JobState(root)
        self.spans.append(root)

    def _on_push(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        if state.root.end is not None:
            return
        if state.matchmake is None:
            parent = state.retry if state.retry is not None else state.root
            state.matchmake = self._open(state, "matchmake", t, parent)
        attrs = {
            k: fields[k] for k in ("frm", "to", "dim", "hop") if k in fields
        }
        self._instant(state, "push", t, state.matchmake, attrs)

    def _on_placed(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        if state.root.end is not None:
            return
        if state.matchmake is None:
            parent = state.retry if state.retry is not None else state.root
            state.matchmake = self._open(state, "matchmake", t, parent)
        attrs = {k: fields[k] for k in ("node", "hops", "score") if k in fields}
        state.matchmake.attrs.update(attrs)
        state.matchmake.close(t, "placed")
        state.matchmake = None
        self._open_queue(state, t, fields.get("node"))

    def _on_unplaced(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        if state.matchmake is not None:
            if "hops" in fields:
                state.matchmake.attrs["hops"] = fields["hops"]
            state.matchmake.close(t, "unplaced")
            state.matchmake = None

    def _open_queue(self, state: _JobState, t: float, node: Any) -> None:
        if state.queue is None and state.run is None:
            attrs = {"node": node} if node is not None else None
            state.queue = self._open(state, "queue", t, state.root, attrs)

    def _on_start(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        if state.root.end is not None:
            return
        if state.queue is not None:
            state.queue.close(t, "ok")
            state.queue = None
        if state.run is None:
            attrs = {"node": fields["node"]} if "node" in fields else None
            state.run = self._open(state, "run", t, state.root, attrs)

    def _on_finish(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        if state.run is not None:
            state.run.close(t, "ok")
            state.run = None
        self._terminal(state, t, "completed")

    def _on_terminal_unplaced(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        self._terminal(state, t, "unplaced")

    def _on_lost(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        if state.root.end is not None:
            return
        node = fields.get("node")
        self._close_active(state, t, "lost")
        self._instant(
            state, "crash", t, state.root,
            {"node": node} if node is not None else None,
        )
        state.crashed_node = node
        state.detect = self._open(
            state, "detect", t, state.root,
            {"node": node} if node is not None else None,
        )
        self._awaiting.setdefault(node, []).append(state.root.job)

    def _on_detected(self, t: float, fields: Dict[str, Any]) -> None:
        node = fields.get("node")
        waiting = self._awaiting.pop(node, [])
        # service ledgers record FAILED transitions without a node id; a
        # detection event then releases those unattributed jobs too
        waiting += self._awaiting.pop(None, [])
        for job in waiting:
            state = self._jobs.get(job)
            if state is None or state.detect is None:
                continue
            if "latency" in fields:
                state.detect.attrs["latency"] = fields["latency"]
            state.detect.close(t, "detected")
            state.detect = None
            state.retry = self._open(
                state, "retry", t, state.root,
                {"node": node} if node is not None else None,
            )

    def _on_resubmit(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        if state.retry is not None:
            if "attempt" in fields:
                state.retry.attrs["attempt"] = fields["attempt"]
            state.retry.close(t, "resubmitted")
            state.retry = None
        elif state.detect is not None:
            # resubmitted before any detection event (e.g. claim-time fallback)
            state.detect.close(t, "detected")
            state.detect = None

    def _on_abandoned(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        self._terminal(state, t, "abandoned")

    def _on_fallback(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        if state.root.end is not None:
            return
        parent = state.matchmake or state.retry or state.root
        attrs = {
            k: fields[k] for k in ("node", "candidates") if k in fields
        }
        self._instant(state, "ring", t, parent, attrs)

    def _on_cancel(self, t: float, fields: Dict[str, Any]) -> None:
        state = self._state(t, fields["job"])
        self._terminal(state, t, "cancelled")

    def _on_job_status(self, t: float, fields: Dict[str, Any]) -> None:
        """Ledger transitions from the live service (no sim-level grid.* events)."""
        to = fields.get("to")
        job = fields.get("job")
        if to is None or job is None:
            return
        state = self._state(t, job)
        if to == "RUNNING":
            self._on_start(t, {"job": job, **(
                {"node": fields["node"]} if fields.get("node") is not None else {}
            )})
        elif to == "MATCHED":
            if state.root.end is None:
                self._open_queue(state, t, fields.get("node"))
        elif to == "FAILED":
            self._on_lost(t, {"job": job, "node": fields.get("node")})
        elif to == "COMPLETED":
            self._on_finish(t, {"job": job})
        elif to == "CANCELLED":
            self._terminal(state, t, "cancelled")
        elif to == "ABANDONED":
            self._terminal(state, t, "abandoned")

    # -- queries -----------------------------------------------------------------
    def jobs(self) -> List[int]:
        return sorted(self._jobs)

    def job_spans(self, job: int) -> List[Span]:
        return [s for s in self.spans if s.job == job]

    def root(self, job: int) -> Optional[Span]:
        state = self._jobs.get(job)
        return state.root if state is not None else None

    def children(self, span: Span) -> List[Span]:
        """Direct children, in open order (== deterministic seq order)."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def critical_path(self, job: int) -> List[Span]:
        """The job's life as a time-ordered chain of top-level segments.

        Direct children of the root partition the job's wall-clock life
        (matchmaking, queueing, execution, detection, retry); nested
        detail like push hops stays below them.  Instants (crash, ring)
        are included as zero-duration markers.
        """
        root = self.root(job)
        if root is None:
            return []
        segments = self.children(root)
        segments.sort(key=lambda s: (s.start, _KIND_ORDER.get(s.kind, 99)))
        return segments

    def validate(self) -> List[str]:
        """Structural problems: orphan parents, open spans, jobs without a verdict."""
        problems: List[str] = []
        ids = {s.span_id for s in self.spans}
        for span in self.spans:
            if span.parent_id is not None and span.parent_id not in ids:
                problems.append(f"orphan span {span.span_id}: parent {span.parent_id} missing")
            if span.end is None:
                problems.append(f"open span {span.span_id} (started t={span.start:g})")
        for job, state in sorted(self._jobs.items()):
            if state.root.status in (None, "open"):
                problems.append(f"job {job} has no terminal status")
        return problems


# -- offline (JSONL) entry points ------------------------------------------------

def read_trace_events(path: str) -> Iterable[Dict[str, Any]]:
    """Yield event dicts from a JSONL trace, skipping the header line."""
    from .trace import read_trace

    for record in read_trace(path):
        yield record


def build_spans(events: Iterable[Dict[str, Any]]) -> SpanBuilder:
    """Run a :class:`SpanBuilder` over decoded event dicts and finish it."""
    builder = SpanBuilder()
    last_t: Optional[float] = None
    for record in events:
        builder.add_record(record)
        t = record.get("t")
        if t is not None and (last_t is None or t > last_t):
            last_t = t
    builder.finish(last_t)
    return builder


def build_spans_from_file(path: str) -> SpanBuilder:
    return build_spans(read_trace_events(path))


# -- rendering -------------------------------------------------------------------

def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "open"
    return f"{value:,.1f}s"


def render_spans(builder: SpanBuilder, job: Optional[int] = None) -> str:
    """Human-readable view: one job's tree, or a per-kind summary table."""
    if job is not None:
        root = builder.root(job)
        if root is None:
            return f"no spans for job {job}"
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                attrs = "  " + json.dumps(span.attrs, sort_keys=True)
            lines.append(
                f"{'  ' * depth}{span.kind:<10} {span.start:>12,.1f} -> "
                f"{_fmt_seconds(span.duration):>12}  [{span.status}]{attrs}"
            )
            for child in builder.children(span):
                walk(child, depth + 1)

        walk(root, 0)
        return "\n".join(lines)

    # summary: per-kind stats + per-job verdicts
    by_kind: Dict[str, List[float]] = {}
    open_count = 0
    for span in builder.spans:
        if span.end is None:
            open_count += 1
            continue
        by_kind.setdefault(span.kind, []).append(span.end - span.start)
    verdicts: Dict[str, int] = {}
    for j in builder.jobs():
        status = builder.root(j).status or "open"
        verdicts[status] = verdicts.get(status, 0) + 1

    lines = [f"{len(builder.jobs())} jobs, {len(builder.spans)} spans"
             + (f" ({open_count} open)" if open_count else "")]
    lines.append(f"{'kind':<10} {'count':>8} {'total':>14} {'mean':>12} {'max':>12}")
    for kind in SPAN_KINDS:
        durations = by_kind.get(kind)
        if not durations:
            continue
        total = sum(durations)
        lines.append(
            f"{kind:<10} {len(durations):>8} {total:>13,.1f}s "
            f"{total / len(durations):>11,.1f}s {max(durations):>11,.1f}s"
        )
    lines.append("")
    lines.append("job outcomes: " + ", ".join(
        f"{status}={count}" for status, count in sorted(verdicts.items())
    ))
    return "\n".join(lines)


def critical_path_summary(
    builder: SpanBuilder,
) -> List[Tuple[str, int, float, float, float]]:
    """Aggregate critical-path segments over every job.

    Returns ``(kind, segments, total, mean, max)`` rows in taxonomy
    order, computed over the direct children of each job root — the
    chain :meth:`SpanBuilder.critical_path` yields per job.
    """
    totals: Dict[str, List[float]] = {}
    for job in builder.jobs():
        for span in builder.critical_path(job):
            if span.end is None:
                continue
            totals.setdefault(span.kind, []).append(span.end - span.start)
    rows: List[Tuple[str, int, float, float, float]] = []
    for kind in SPAN_KINDS:
        durations = totals.get(kind)
        if not durations:
            continue
        rows.append((
            kind,
            len(durations),
            sum(durations),
            sum(durations) / len(durations),
            max(durations),
        ))
    return rows


def render_critical_path(builder: SpanBuilder, job: Optional[int] = None) -> str:
    """Critical-path report: one job's chain, or the fleet-wide aggregate."""
    if job is not None:
        segments = builder.critical_path(job)
        if not segments:
            return f"no spans for job {job}"
        lines = [f"job {job} critical path:"]
        for span in segments:
            attrs = f"  {json.dumps(span.attrs, sort_keys=True)}" if span.attrs else ""
            lines.append(
                f"  {span.kind:<10} {span.start:>12,.1f} "
                f"+{_fmt_seconds(span.duration):>12}  [{span.status}]{attrs}"
            )
        return "\n".join(lines)

    rows = critical_path_summary(builder)
    grand_total = sum(row[2] for row in rows) or 1.0
    lines = [
        f"{'segment':<10} {'count':>8} {'total':>14} {'mean':>12} "
        f"{'max':>12} {'share':>7}"
    ]
    for kind, count, total, mean, peak in rows:
        lines.append(
            f"{kind:<10} {count:>8} {total:>13,.1f}s {mean:>11,.1f}s "
            f"{peak:>11,.1f}s {100.0 * total / grand_total:>6.1f}%"
        )
    return "\n".join(lines)
