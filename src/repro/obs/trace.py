"""JSONL trace export and the per-run recording harness.

:class:`JsonlTraceWriter` is a bus subscriber that serialises every event
as one JSON object per line.  The first line is a schema header
(``{"schema_version": ..., "type": "trace.header"}``); readers use it to
reject traces written under an incompatible major version.  Serialisation
is canonical (sorted keys, compact separators), so a deterministic
simulation produces a byte-identical trace file — the determinism tests
diff the raw bytes.

:class:`RunRecorder` bundles what every experiment wants: a tracer wired
to a JSONL writer, plus a manifest that is finalised (event counts,
wall time, artifact list) and atomically written when the recorder closes.

Both are safe under abrupt shutdown — what an asyncio gateway killed by a
signal needs: every event is serialised and written in a *single*
``write`` call (a line is either fully present or absent, never torn),
``close`` is idempotent, and construction registers an ``atexit`` hook so
an un-closed writer still flushes its file and an un-closed recorder
still writes its manifest when the interpreter exits.
"""

from __future__ import annotations

import atexit
import gzip
import json
import os
from typing import Any, Dict, IO, List, Optional

from .events import EventBus, TraceEvent, Tracer
from .manifest import RunManifest
from .schema import SCHEMA_VERSION, check_schema_version

__all__ = ["JsonlTraceWriter", "RunRecorder", "read_trace"]

#: canonical serialisation of the header line every trace file starts with
TRACE_HEADER = json.dumps(
    {"schema_version": SCHEMA_VERSION, "type": "trace.header"},
    sort_keys=True,
    separators=(",", ":"),
)


class JsonlTraceWriter:
    """Subscribe me to a bus; I stream events to a ``.jsonl`` file.

    ``lines`` counts *events*; the schema header line is not an event.

    Paths ending in ``.jsonl.gz`` (any ``.gz`` suffix) are gzip-
    compressed.  A raw gzip stream cannot honour the one-write-per-line
    guarantee (compressed frames straddle lines), so the compressed path
    buffers complete lines in memory and writes the whole file atomically
    (temp file + ``os.replace``) on every :meth:`flush`/:meth:`close` —
    on disk the trace is always either the previous complete flush or the
    next one, never torn.
    """

    def __init__(self, path: str):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.path = path
        self.compressed = path.endswith(".gz")
        self._buffer: Optional[List[str]] = None
        self._fh: Optional[IO[str]] = None
        self._closed = False
        if self.compressed:
            self._buffer = [TRACE_HEADER + "\n"]
        else:
            self._fh = open(path, "w")
            self._fh.write(TRACE_HEADER + "\n")
        self.lines = 0
        # a writer abandoned by a crash-path shutdown still flushes
        atexit.register(self.close)

    def __call__(self, event: TraceEvent) -> None:
        if self._closed:
            raise ValueError(f"trace writer for {self.path!r} is closed")
        line = (
            json.dumps(event.as_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        if self._buffer is not None:
            self._buffer.append(line)
        else:
            # one write call per line: an interrupt between writes can drop
            # a trailing line but never leave a torn (unparseable) one
            self._fh.write(line)
        self.lines += 1

    def _write_compressed(self) -> None:
        tmp = self.path + ".tmp"
        with gzip.open(tmp, "wt") as gz:
            gz.write("".join(self._buffer))
        os.replace(tmp, self.path)

    def flush(self) -> None:
        if self._closed:
            return
        if self._buffer is not None:
            self._write_compressed()
        elif self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._buffer is not None:
            self._write_compressed()
            self._buffer = None
        elif self._fh is not None:
            self._fh.close()
            self._fh = None
        atexit.unregister(self.close)

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str):
    """Yield event dicts from a JSONL trace file.

    A leading ``trace.header`` record is version-checked and consumed, not
    yielded; header-less traces from before schema versioning still read.
    Raises :class:`ValueError` when the header's major version differs
    from ours.  ``.gz`` paths are transparently decompressed.
    """
    first = True
    opener = gzip.open(path, "rt") if path.endswith(".gz") else open(path)
    with opener as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if first:
                first = False
                if record.get("type") == "trace.header":
                    check_schema_version(
                        record.get("schema_version"), f"trace {path!r}"
                    )
                    continue
            yield record


class RunRecorder:
    """Tracer + JSONL writer + manifest for one experiment invocation.

    >>> rec = RunRecorder("results", "fig7", seed=1)     # doctest: +SKIP
    >>> sim = ChurnSimulation(cfg, tracer=rec.tracer)    # doctest: +SKIP
    >>> rec.close(config={...})                          # doctest: +SKIP

    When ``enabled`` is false every attribute still works but ``tracer``
    is ``None`` and nothing is written — callers can wire unconditionally.
    """

    def __init__(
        self,
        out_dir: str,
        name: str,
        seed: Optional[int] = None,
        enabled: bool = True,
        compress: bool = False,
    ):
        self.out_dir = out_dir
        self.name = name
        self.enabled = enabled
        self.tracer: Optional[Tracer] = None
        self.writer: Optional[JsonlTraceWriter] = None
        self.manifest = RunManifest(name=name, seed=seed)
        self._closed = False
        if enabled:
            suffix = "jsonl.gz" if compress else "jsonl"
            self.trace_path = os.path.join(out_dir, f"{name}_trace.{suffix}")
            self.manifest_path = os.path.join(out_dir, f"{name}_run.manifest.json")
            self.writer = JsonlTraceWriter(self.trace_path)
            self.tracer = Tracer(EventBus())
            self.tracer.subscribe(self.writer)
            # killed mid-run (signal unwinding, sys.exit in a handler):
            # still finalise the manifest so the trace is not orphaned
            atexit.register(self.close)
        else:
            self.trace_path = None
            self.manifest_path = None

    def run_start(self, label: str, **fields: Any) -> None:
        """Mark the start of one sub-run (e.g. one scheme) in the trace."""
        if self.tracer is not None:
            self.tracer.emit(0.0, "run.start", label=label, **fields)

    def run_end(self, label: str, t: float = 0.0, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(t, "run.end", label=label, **fields)

    def close(
        self,
        config: Optional[Dict[str, Any]] = None,
        metrics: Optional[Dict[str, Any]] = None,
        artifacts: Optional[list] = None,
    ) -> Optional[str]:
        """Flush the trace and atomically write the manifest.

        Idempotent: a second close (e.g. the ``atexit`` safety net after
        a regular close) is a no-op returning the manifest path again.
        Returns ``None`` when recording is disabled.
        """
        if not self.enabled:
            return None
        if self._closed:
            return self.manifest_path
        self._closed = True
        atexit.unregister(self.close)
        if config:
            self.manifest.config.update(config)
        if metrics:
            self.manifest.metrics.update(metrics)
        if self.writer is not None:
            self.writer.close()
        self.manifest.event_counts = dict(sorted(self.tracer.counts.items()))
        self.manifest.artifacts = sorted(
            set(
                (artifacts or [])
                + [os.path.basename(self.trace_path)]
            )
        )
        return self.manifest.write(self.manifest_path)

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
