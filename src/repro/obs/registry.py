"""A named, hierarchical registry over the ``sim.monitor`` primitives.

The simulation stack measures with three primitive monitors —
:class:`~repro.sim.monitor.Counter`, :class:`~repro.sim.monitor.TimeSeries`
and :class:`~repro.sim.monitor.TimeWeighted` — historically created ad hoc
by whichever component needed one.  :class:`MetricsRegistry` gives them a
shared namespace (``protocol.broken_links``, ``grid.jobs.lost`` …) so a run
can be snapshotted as one JSON-able tree, exported into the run manifest,
and inspected without knowing which object owns which monitor.

Two *streaming* monitor kinds join the original three:
:class:`~repro.obs.sketch.QuantileSketch` (constant-memory latency/wait
distributions — the million-job replacement for per-job sample arrays)
and :class:`~repro.obs.sketch.WindowedCounter` (sliding-window rates).

Scopes are cheap views: ``registry.scope("protocol")`` returns a child
whose names are automatically prefixed; all monitors live in the root's
flat store, keyed by their full dotted path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from ..sim.monitor import Counter, TimeSeries, TimeWeighted
from .sketch import QuantileSketch, WindowedCounter

__all__ = ["MetricsRegistry"]

Monitor = Union[Counter, TimeSeries, TimeWeighted, QuantileSketch, WindowedCounter]


class MetricsRegistry:
    """Create, adopt, and snapshot monitors under dotted names."""

    def __init__(self, _store: Optional[Dict[str, Monitor]] = None, _prefix: str = ""):
        self._store: Dict[str, Monitor] = _store if _store is not None else {}
        self._prefix = _prefix

    # -- namespace -------------------------------------------------------------
    def scope(self, name: str) -> "MetricsRegistry":
        """A child registry whose monitor names are prefixed ``name.``."""
        if not name:
            raise ValueError("scope name must be non-empty")
        return MetricsRegistry(self._store, self._full(name) + ".")

    def _full(self, name: str) -> str:
        if not name:
            raise ValueError("monitor name must be non-empty")
        return self._prefix + name

    # -- creation / adoption ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the :class:`Counter` at ``name``."""
        return self._get_or_create(name, Counter)

    def timeseries(self, name: str) -> TimeSeries:
        """Get or create the :class:`TimeSeries` at ``name``."""
        full = self._full(name)
        mon = self._store.get(full)
        if mon is None:
            mon = TimeSeries(full)
            self._store[full] = mon
        elif not isinstance(mon, TimeSeries):
            raise TypeError(f"{full!r} is a {type(mon).__name__}, not TimeSeries")
        return mon

    def timeweighted(self, name: str, time: float = 0.0, value: float = 0.0) -> TimeWeighted:
        """Get or create the :class:`TimeWeighted` at ``name``."""
        full = self._full(name)
        mon = self._store.get(full)
        if mon is None:
            mon = TimeWeighted(time, value)
            self._store[full] = mon
        elif not isinstance(mon, TimeWeighted):
            raise TypeError(f"{full!r} is a {type(mon).__name__}, not TimeWeighted")
        return mon

    def quantile_sketch(self, name: str, k: Optional[int] = None) -> QuantileSketch:
        """Get or create the streaming :class:`QuantileSketch` at ``name``."""
        full = self._full(name)
        mon = self._store.get(full)
        if mon is None:
            mon = QuantileSketch(**({"k": k} if k is not None else {}))
            self._store[full] = mon
        elif not isinstance(mon, QuantileSketch):
            raise TypeError(
                f"{full!r} is a {type(mon).__name__}, not QuantileSketch"
            )
        return mon

    def windowed_counter(
        self, name: str, window: float = 300.0, buckets: int = 60
    ) -> WindowedCounter:
        """Get or create the sliding-window :class:`WindowedCounter` at ``name``."""
        full = self._full(name)
        mon = self._store.get(full)
        if mon is None:
            mon = WindowedCounter(window=window, buckets=buckets)
            self._store[full] = mon
        elif not isinstance(mon, WindowedCounter):
            raise TypeError(
                f"{full!r} is a {type(mon).__name__}, not WindowedCounter"
            )
        return mon

    def register(self, name: str, monitor: Monitor) -> Monitor:
        """Adopt an existing monitor (e.g. a protocol's own TimeSeries)."""
        if not isinstance(
            monitor,
            (Counter, TimeSeries, TimeWeighted, QuantileSketch, WindowedCounter),
        ):
            raise TypeError(f"not a monitor: {type(monitor).__name__}")
        full = self._full(name)
        existing = self._store.get(full)
        if existing is not None and existing is not monitor:
            raise ValueError(f"{full!r} already registered")
        self._store[full] = monitor
        return monitor

    def _get_or_create(self, name: str, cls) -> Any:
        full = self._full(name)
        mon = self._store.get(full)
        if mon is None:
            mon = cls()
            self._store[full] = mon
        elif not isinstance(mon, cls):
            raise TypeError(f"{full!r} is a {type(mon).__name__}, not {cls.__name__}")
        return mon

    # -- introspection ----------------------------------------------------------
    def names(self) -> list:
        """All registered full names (sorted) visible from this scope."""
        return sorted(n for n in self._store if n.startswith(self._prefix))

    def get(self, name: str) -> Optional[Monitor]:
        return self._store.get(self._full(name))

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Dict[str, Any]]:
        """One JSON-able dict per monitor, keyed by full dotted name.

        ``now`` closes the integration window for :class:`TimeWeighted`
        means; when omitted their mean is reported as ``None``.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name in self.names():
            mon = self._store[name]
            if isinstance(mon, Counter):
                out[name] = {
                    "kind": "counter",
                    "counts": mon.as_dict(),
                    "total": mon.total(),
                }
            elif isinstance(mon, TimeSeries):
                entry: Dict[str, Any] = {"kind": "timeseries", "samples": len(mon)}
                if len(mon):
                    last_t, last_v = mon.last()
                    entry["last_time"] = last_t
                    entry["last_value"] = last_v
                    entry["mean_value"] = float(mon.values.mean())
                out[name] = entry
            elif isinstance(mon, QuantileSketch):
                out[name] = {"kind": "quantile_sketch", **mon.as_dict()}
            elif isinstance(mon, WindowedCounter):
                out[name] = {"kind": "windowed_counter", **mon.as_dict(now)}
            else:  # TimeWeighted
                out[name] = {
                    "kind": "timeweighted",
                    "current": mon.current,
                    "mean": mon.mean(now) if now is not None else None,
                }
        return out
