"""Canonical performance benchmarks and the regression compare gate.

``python -m repro.obs bench`` runs a fixed suite of reduced-scale
experiment workloads (the fig5–fig8 shapes) plus micro-benchmarks of the
hot substrate operations, each under a fresh :class:`~.profiling.Profiler`,
and writes one schema-versioned ``BENCH_<timestamp>.json`` file:

.. code-block:: json

    {
      "schema_version": "1.0",
      "kind": "bench",
      "mode": "smoke",
      "manifest": {"seed": ..., "git_describe": ..., "python": ...},
      "runs": [
        {"name": "fig5.can-het.tiny", "group": "fig5", "kind": "sim",
         "wall_seconds": 1.23,
         "metrics": {"sim_events": 1804, "events_per_sec": 1466.7},
         "profile": {"sim.dispatch.Timeout": {"calls": 402, ...}}}
      ]
    }

The committed ``results/BENCH_*.json`` files form the repo's performance
trajectory; ``python -m repro.obs compare A.json B.json`` diffs two points
of it and exits nonzero when any run or profile scope slowed down by more
than the threshold — CI runs it against the committed baseline.
"""

from __future__ import annotations

import datetime
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.export import write_json
from ..analysis.tables import format_table
from .manifest import RunManifest
from .profiling import CLOCK, Profiler
from .schema import SCHEMA_VERSION, check_schema_version

__all__ = [
    "run_bench",
    "bench_filename",
    "load_bench",
    "validate_bench_payload",
    "bench_payload_from_pytest",
    "compare_payloads",
    "compare_files",
    "render_compare",
    "BenchComparison",
]

#: default seed for bench workloads (the presets' CLUSTER 2011 seed)
DEFAULT_SEED = 20110926

#: ignore scope/run timings where both sides are below this many seconds —
#: sub-noise-floor scopes produce wild percentages that mean nothing
#: (back-to-back runs on one machine show >2x swings under ~10 ms)
MIN_SECONDS = 0.05


# --------------------------------------------------------------------------- run --
def _sim_events(env) -> int:
    """Total events ever scheduled on a kernel (its event-id counter)."""
    return int(env._eid)


def _grid_run(scheme: str, preset, seed: int, **config_kwargs):
    """One fig5/fig6-shaped matchmaking run; returns a metrics dict."""
    from ..gridsim import GridSimulation, MatchmakingConfig

    def fn(profiler: Profiler) -> Dict[str, Any]:
        config = MatchmakingConfig(
            preset.with_seed(seed), scheme=scheme, **config_kwargs
        )
        sim = GridSimulation(config, profiler=profiler)
        t0 = CLOCK()
        result = sim.run()
        wall = CLOCK() - t0
        events = _sim_events(sim.env)
        return {
            "sim_events": events,
            "events_per_sec": round(events / wall, 1) if wall > 0 else None,
            "jobs": result.jobs_submitted,
            "jobs_per_sec": (
                round(result.jobs_submitted / wall, 1) if wall > 0 else None
            ),
            "unplaced_jobs": result.unplaced_jobs,
        }

    return fn


def _churn_run(scheme, seed: int, **config_kwargs):
    """One fig7/fig8-shaped churn run; returns a metrics dict."""
    from ..gridsim import ChurnSimulation
    from ..gridsim.config import ChurnConfig

    def fn(profiler: Profiler) -> Dict[str, Any]:
        config = ChurnConfig(scheme=scheme, seed=seed, **config_kwargs)
        sim = ChurnSimulation(config, profiler=profiler)
        t0 = CLOCK()
        result = sim.run()
        wall = CLOCK() - t0
        events = _sim_events(sim.env)
        msgs, nbytes = sim.protocol.stats.totals()
        return {
            "sim_events": events,
            "events_per_sec": round(events / wall, 1) if wall > 0 else None,
            "heartbeat_msgs": msgs,
            "heartbeat_kbytes": round(nbytes / 1024.0, 2),
            "heartbeat_msgs_per_sec": (
                round(msgs / wall, 1) if wall > 0 else None
            ),
            "final_population": result.final_population,
        }

    return fn


# -- micro-benchmarks: direct calls into the hot substrate operations ----------
def _micro_route(routes: int, nodes: int, seed: int):
    from ..can.overlay import CanOverlay
    from ..can.routing import route
    from ..can.space import ResourceSpace
    from ..workload.nodes import generate_node_specs

    def fn(profiler: Profiler) -> Dict[str, Any]:
        space = ResourceSpace(gpu_slots=2)
        overlay = CanOverlay(space)
        rng = np.random.default_rng(seed)
        for spec in generate_node_specs(nodes, 2, rng):
            overlay.add_node(
                spec.node_id, space.node_coordinate(spec, float(rng.random()))
            )
        points = [tuple(rng.random(space.dims) * 0.998) for _ in range(routes)]
        t0 = CLOCK()
        for point in points:
            route(overlay, 0, point, profiler=profiler)
        return _micro_metrics(routes, CLOCK() - t0)

    return fn


def _micro_chord_route(routes: int, nodes: int, seed: int):
    """Finger-table key routing on the Chord ring (micro.route's rival)."""
    from ..can.space import ResourceSpace
    from ..chord import ChordRing, chord_route
    from ..workload.nodes import generate_node_specs

    def fn(profiler: Profiler) -> Dict[str, Any]:
        space = ResourceSpace(gpu_slots=2)
        ring = ChordRing(space)
        rng = np.random.default_rng(seed)
        for spec in generate_node_specs(nodes, 2, rng):
            ring.add_node(
                spec.node_id, space.node_coordinate(spec, float(rng.random()))
            )
        starts = [int(r) for r in rng.integers(0, nodes, routes)]
        points = [tuple(rng.random(space.dims) * 0.998) for _ in range(routes)]
        hops = 0
        t0 = CLOCK()
        for start, point in zip(starts, points):
            hops += len(chord_route(ring, start, point, profiler=profiler)) - 1
        metrics = _micro_metrics(routes, CLOCK() - t0)
        metrics["mean_hops"] = round(hops / routes, 3)
        return metrics

    return fn


def _build_protocol(scheme, nodes: int, seed: int, profiler=None, engine="object"):
    """A populated heartbeat protocol on a fresh overlay (shared harness)."""
    from ..can.heartbeat import ProtocolConfig
    from ..can.overlay import CanOverlay
    from ..can.soa import build_protocol
    from ..can.space import ResourceSpace
    from ..workload.nodes import generate_node_specs

    space = ResourceSpace(gpu_slots=2)
    overlay = CanOverlay(space)
    proto = build_protocol(
        overlay, ProtocolConfig(scheme=scheme), engine=engine,
        profiler=profiler,
    )
    rng = np.random.default_rng(seed)
    specs = generate_node_specs(nodes, 2, rng)
    proto.bootstrap(
        specs[0].node_id,
        space.node_coordinate(specs[0], float(rng.random())),
    )
    for spec in specs[1:]:
        proto.join(
            spec.node_id,
            space.node_coordinate(spec, float(rng.random())),
            now=0.0,
        )
    return proto


def _micro_heartbeat(scheme, rounds: int, nodes: int, seed: int, engine="object"):
    def fn(profiler: Profiler) -> Dict[str, Any]:
        proto = _build_protocol(
            scheme, nodes, seed, profiler=profiler, engine=engine
        )
        t0 = CLOCK()
        for i in range(rounds):
            proto.run_round(60.0 * (i + 1))
        return _micro_metrics(rounds, CLOCK() - t0)

    return fn


def _micro_table_merge(merges: int, nodes: int, seed: int):
    """Full-table merge path: re-absorb a believed neighbor's whole table.

    One warm-up round populates tables; each iteration then drops the
    receiver's processed-epoch entry for one sender (forcing the full merge
    rather than the unchanged-re-send fast path) and merges that sender's
    table again — the vanilla scheme's hottest sub-path.
    """
    from ..can.heartbeat import HeartbeatScheme

    def fn(profiler: Profiler) -> Dict[str, Any]:
        proto = _build_protocol(HeartbeatScheme.VANILLA, nodes, seed)
        proto.run_round(60.0)
        pairs = []
        for receiver_id in sorted(proto.nodes):
            receiver = proto.nodes[receiver_id]
            for sender_id in receiver.table.sorted_ids():
                sender = proto.nodes.get(sender_id)
                if sender is not None:
                    pairs.append((receiver, sender))
        done = 0
        t0 = CLOCK()
        with profiler.scope("can.table_merge"):
            while done < merges:
                for receiver, sender in pairs:
                    if done >= merges:
                        break
                    receiver.processed_epoch.pop(sender.node_id, None)
                    proto._merge_full_table(receiver, sender, 120.0)
                    done += 1
        return _micro_metrics(done, CLOCK() - t0)

    return fn


def _micro_broken_links(counts: int, nodes: int, seed: int):
    """count_broken_links under per-iteration table churn.

    Each iteration perturbs one node's believed table (remove + re-insert a
    record, invalidating that node's cached count) before recounting, so
    the benchmark measures the incremental-recount path rather than pure
    cache hits.
    """
    from ..can.heartbeat import HeartbeatScheme

    def fn(profiler: Profiler) -> Dict[str, Any]:
        proto = _build_protocol(HeartbeatScheme.VANILLA, nodes, seed)
        proto.run_round(60.0)
        ids = sorted(proto.nodes)
        t0 = CLOCK()
        with profiler.scope("can.count_broken_links"):
            for i in range(counts):
                pnode = proto.nodes[ids[i % len(ids)]]
                if len(pnode.table):
                    nid = pnode.table.sorted_ids()[0]
                    rec = pnode.table.get(nid)
                    heard = pnode.table.last_heard(nid)
                    pnode.table.remove(nid)
                    pnode.table.upsert(rec, heard, heard=True)
                proto.count_broken_links()
        return _micro_metrics(counts, CLOCK() - t0)

    return fn


def _micro_recovery(cycles: int, nodes: int, seed: int):
    """Full crash -> detection -> take-over cycles on a live protocol.

    Each iteration silently fails one node, then runs heartbeat rounds
    until some believer's timeout fires the detection callback (the
    faulty grid's recovery trigger) and the zone is reclaimed.  Measures
    the whole failure-handling path rather than one sub-operation.
    """
    from ..can.heartbeat import HeartbeatScheme

    def fn(profiler: Profiler) -> Dict[str, Any]:
        proto = _build_protocol(
            HeartbeatScheme.VANILLA, nodes, seed, profiler=profiler
        )
        period = proto.config.period
        proto.run_round(period)
        detected: List[int] = []
        proto.on_failure_detected = lambda nid, t: detected.append(nid)
        rng = np.random.default_rng(seed)
        now = period
        done = 0
        t0 = CLOCK()
        with profiler.scope("can.recovery_cycle"):
            for _ in range(cycles):
                alive = sorted(proto.overlay.alive_ids())
                if len(alive) <= 2:
                    break
                victim = int(alive[int(rng.integers(len(alive)))])
                proto.fail(victim, now)
                target = len(detected) + 1
                while len(detected) < target:
                    now += period
                    proto.run_round(now)
                done += 1
        return _micro_metrics(done, CLOCK() - t0)

    return fn


def _micro_aggregation(steps: int, nodes: int, seed: int):
    from ..can.aggregation import AggregationEngine
    from ..can.overlay import CanOverlay
    from ..can.space import ResourceSpace
    from ..model.node import GridNode
    from ..sim.core import Environment
    from ..workload.nodes import generate_node_specs

    def fn(profiler: Profiler) -> Dict[str, Any]:
        space = ResourceSpace(gpu_slots=2)
        overlay = CanOverlay(space)
        env = Environment()
        rng = np.random.default_rng(seed)
        grid = {}
        for spec in generate_node_specs(nodes, 2, rng):
            overlay.add_node(
                spec.node_id, space.node_coordinate(spec, float(rng.random()))
            )
            grid[spec.node_id] = GridNode(spec, env)
        engine = AggregationEngine(overlay, grid)
        engine.step()  # build topology caches outside the timed region
        t0 = CLOCK()
        with profiler.scope("can.aggregation.step"):
            for _ in range(steps):
                engine.step()
        return _micro_metrics(steps, CLOCK() - t0)

    return fn


def _micro_placement(scheme: str, repeats: int, seed: int):
    from ..gridsim import GridSimulation, MatchmakingConfig
    from ..workload import TINY_LOAD

    def fn(profiler: Profiler) -> Dict[str, Any]:
        sim = GridSimulation(
            MatchmakingConfig(TINY_LOAD.with_seed(seed), scheme=scheme),
            profiler=profiler,
        )
        sim.aggregation.run_rounds(3)
        jobs = sim.jobs * repeats
        t0 = CLOCK()
        for job in jobs:
            sim.matchmaker.place(job)
        return _micro_metrics(len(jobs), CLOCK() - t0)

    return fn


def _micro_ledger(jobs: int, seed: int):
    """Full job lifecycles through the sqlite WAL ledger.

    Each iteration is one complete SUBMITTED -> MATCHED -> RUNNING ->
    COMPLETED trajectory — four durable transactions — against a real
    on-disk database, so the number tracks what a gateway pays per job
    for ledger durability.
    """
    import tempfile

    from ..service.ledger import JobLedger, JobStatus, SqliteBackend

    def fn(profiler: Profiler) -> Dict[str, Any]:
        with tempfile.TemporaryDirectory() as tmp:
            ledger = JobLedger(SqliteBackend(f"{tmp}/bench_ledger.sqlite"))
            spec = {
                "job_id": None,
                "submit_time": 0.0,
                "base_duration": 60.0,
                "requirements": {
                    "cpu": {"cores": 1, "clock": 1.0, "memory": 1.0, "disk": 1.0}
                },
            }
            t0 = CLOCK()
            with profiler.scope("service.ledger_lifecycle"):
                for i in range(jobs):
                    record = ledger.submit(spec, now=float(i))
                    ledger.transition(
                        record.job_id,
                        JobStatus.MATCHED,
                        now=float(i),
                        node_id=seed % 97,
                    )
                    ledger.transition(
                        record.job_id, JobStatus.RUNNING, now=float(i)
                    )
                    ledger.transition(
                        record.job_id, JobStatus.COMPLETED, now=float(i) + 1
                    )
            wall = CLOCK() - t0
            ledger.close()
        return _micro_metrics(jobs, wall)

    return fn


def _micro_net_channel(sends: int, nodes: int, seed: int):
    """Per-send cost of the network channel's transmit verdict.

    Exercises the adversarial configuration (loss + latency + partition +
    flap — every verdict branch live) over a realistic id space, and
    reports the identity-channel bypass alongside it as ``identity_ns``:
    the price every loss-free simulation pays per send.
    """
    from ..net import (
        FlapSpec,
        LatencySpec,
        NetworkModel,
        NetworkSpec,
        PartitionSpec,
    )

    def fn(profiler: Profiler) -> Dict[str, Any]:
        rng = np.random.default_rng(seed)
        spec = NetworkSpec(
            loss=0.05,
            latency=LatencySpec(kind="lognormal", mu=-2.5, sigma=1.0),
            partitions=(
                PartitionSpec(src=(0, 1, 2), dst=(7, 8, 9), start=0.0),
            ),
            flaps=(FlapSpec(down=240.0, up=120.0, fraction=0.3),),
            seed=seed,
        )
        model = NetworkModel(spec, rng)
        pairs = rng.integers(0, nodes, size=(sends, 2)).tolist()
        transmit = model.transmit
        t0 = CLOCK()
        with profiler.scope("net.transmit"):
            for i, (src, dst) in enumerate(pairs):
                transmit(src, dst, float(i))
        wall = CLOCK() - t0
        metrics = _micro_metrics(sends, wall)
        metrics["delivered_fraction"] = round(model.delivered / sends, 4)
        identity = NetworkModel()
        t0 = CLOCK()
        for i, (src, dst) in enumerate(pairs):
            identity.transmit(src, dst, float(i))
        metrics["identity_ns"] = round((CLOCK() - t0) / sends * 1e9, 1)
        return metrics

    return fn


def _micro_sketch(inserts: int, seed: int):
    """Streaming quantile-sketch ingest: the per-sample telemetry cost.

    Feeds an exponential stream (the wait-time shape) one value at a
    time — the path every finished job pays under ``stream_waits`` — then
    reports the retained footprint alongside the usual rate numbers.
    """
    from .sketch import QuantileSketch

    def fn(profiler: Profiler) -> Dict[str, Any]:
        rng = np.random.default_rng(seed)
        values = rng.exponential(1000.0, inserts).tolist()
        sk = QuantileSketch()
        insert = sk.insert
        t0 = CLOCK()
        with profiler.scope("obs.sketch_insert"):
            for v in values:
                insert(v)
        wall = CLOCK() - t0
        metrics = _micro_metrics(inserts, wall)
        metrics["retained"] = sk.retained
        metrics["p99"] = round(sk.quantile(0.99), 2)
        return metrics

    return fn


def _micro_metrics(iterations: int, wall: float) -> Dict[str, Any]:
    return {
        "iterations": iterations,
        "per_call_us": (
            round(wall / iterations * 1e6, 2) if iterations else None
        ),
        "calls_per_sec": round(iterations / wall, 1) if wall > 0 else None,
    }


# --------------------------------------------------------------------- the suite --
def _suite(mode: str, seed: int) -> List[Tuple[str, str, str, Callable]]:
    """(name, group, kind, workload) rows for one bench invocation."""
    from ..can.heartbeat import HeartbeatScheme
    from ..workload import SMALL_LOAD, TINY_LOAD

    smoke = mode == "smoke"
    preset = TINY_LOAD if smoke else SMALL_LOAD
    schemes = ["can-het", "can-hom", "central"]
    hb_schemes = [
        HeartbeatScheme.VANILLA,
        HeartbeatScheme.COMPACT,
        HeartbeatScheme.ADAPTIVE,
    ]
    rows: List[Tuple[str, str, str, Callable]] = []

    # fig5 shape: the three matchmakers on one load level
    for scheme in schemes:
        rows.append(
            (
                f"fig5.{scheme}.{preset.name}",
                "fig5",
                "sim",
                _grid_run(scheme, preset, seed),
            )
        )
    # fig6 shape: constraint-ratio sweep point away from the default
    rows.append(
        (
            f"fig6.can-het.{preset.name}.ratio0.9",
            "fig6",
            "sim",
            _grid_run(
                "can-het", preset.with_constraint_ratio(0.9), seed
            ),
        )
    )
    # fig7 shape: high churn (events denser than the heartbeat period)
    churn = dict(
        initial_nodes=60 if smoke else 120,
        event_gap_mean=15.0,
        duration=3_000.0 if smoke else 6_000.0,
    )
    for scheme in hb_schemes:
        rows.append(
            (
                f"fig7.{scheme.value}",
                "fig7",
                "sim",
                _churn_run(scheme, seed, **churn),
            )
        )
    # fig8 shape: larger population, sparse churn (message-cost regime)
    scale = dict(
        initial_nodes=120 if smoke else 250,
        event_gap_mean=120.0,
        duration=1_200.0 if smoke else 1_800.0,
    )
    for scheme in hb_schemes:
        rows.append(
            (
                f"fig8.{scheme.value}",
                "fig8",
                "sim",
                _churn_run(scheme, seed, **scale),
            )
        )
    # substrate rival: the same fig7/fig8 shapes on the Chord ring, for
    # the CAN-vs-Chord maintenance-cost comparison in every BENCH point
    for scheme in hb_schemes:
        rows.append(
            (
                f"fig7.chord.{scheme.value}",
                "fig7-chord",
                "sim",
                _churn_run(scheme, seed, substrate="chord", **churn),
            )
        )
    rows.append(
        (
            "fig8.chord.adaptive",
            "fig8-chord",
            "sim",
            _churn_run(
                HeartbeatScheme.ADAPTIVE, seed, substrate="chord", **scale
            ),
        )
    )
    # fig8 at scale (full mode only): the object/array engine pair at 1k
    # nodes pins the speedup, and the array engine carries the 10k/100k
    # populations the object engine cannot reach in reasonable time.  The
    # 1k pair measures steady maintenance throughput (the fig8 regime —
    # events slower than the period), so its churn is sparse enough that
    # repair storms do not overlap the round kernels under comparison;
    # the 10k/100k rows keep the standard fig8 event density.
    if not smoke:
        scale_churn = dict(event_gap_mean=120.0, leave_mode="fail")
        pair_churn = dict(event_gap_mean=600.0, leave_mode="fail")
        rows += [
            (
                "fig8.1k.object",
                "fig8-scale",
                "sim",
                _churn_run(
                    HeartbeatScheme.ADAPTIVE, seed, initial_nodes=1_000,
                    duration=21_600.0, engine="object", **pair_churn,
                ),
            ),
            (
                "fig8.1k.array",
                "fig8-scale",
                "sim",
                _churn_run(
                    HeartbeatScheme.ADAPTIVE, seed, initial_nodes=1_000,
                    duration=21_600.0, engine="array", **pair_churn,
                ),
            ),
            (
                "fig8.10k",
                "fig8-scale",
                "sim",
                _churn_run(
                    HeartbeatScheme.ADAPTIVE, seed, initial_nodes=10_000,
                    duration=1_200.0, engine="array", **scale_churn,
                ),
            ),
            (
                # the 5-dim fig8 cell: at 11 dims the CAN's average degree
                # (and with it the per-join cost) grows enough that the
                # 100k bootstrap alone would run for the better part of an
                # hour — the low-dimension cell keeps the row regenerable
                "fig8.100k",
                "fig8-scale",
                "sim",
                _churn_run(
                    HeartbeatScheme.ADAPTIVE, seed, initial_nodes=100_000,
                    gpu_slots=0, duration=600.0, engine="array",
                    **scale_churn,
                ),
            ),
        ]
    # micro-benchmarks of the hot substrate operations
    routes = 200 if smoke else 1_000
    rounds = 20 if smoke else 60
    steps = 20 if smoke else 60
    repeats = 5 if smoke else 20
    overlay_nodes = 150 if smoke else 300
    rows += [
        ("micro.route", "micro", "micro", _micro_route(routes, overlay_nodes, seed)),
        (
            "micro.chord_route",
            "micro",
            "micro",
            _micro_chord_route(routes, overlay_nodes, seed),
        ),
        *(
            (
                f"micro.heartbeat_round.{s.value}",
                "micro",
                "micro",
                _micro_heartbeat(s, rounds, 100 if smoke else 200, seed),
            )
            for s in hb_schemes
        ),
        (
            # the array engine's batched per-round kernels, on a converged
            # population (pure clean-path rounds); compare against
            # micro.heartbeat_round.vanilla for the per-round speedup
            "micro.round_kernel",
            "micro",
            "micro",
            _micro_heartbeat(
                HeartbeatScheme.VANILLA,
                200 if smoke else 400,
                100 if smoke else 200,
                seed,
                engine="array",
            ),
        ),
        (
            "micro.aggregation_step",
            "micro",
            "micro",
            _micro_aggregation(steps, overlay_nodes, seed),
        ),
        (
            "micro.placement.can-het",
            "micro",
            "micro",
            _micro_placement("can-het", repeats, seed),
        ),
        (
            "micro.table_merge",
            "micro",
            "micro",
            _micro_table_merge(
                2_000 if smoke else 10_000, 100 if smoke else 200, seed
            ),
        ),
        (
            "micro.broken_links",
            "micro",
            "micro",
            _micro_broken_links(
                200 if smoke else 1_000, 100 if smoke else 200, seed
            ),
        ),
        (
            "micro.recovery",
            "micro",
            "micro",
            _micro_recovery(
                10 if smoke else 30, 100 if smoke else 200, seed
            ),
        ),
        (
            "micro.ledger",
            "micro",
            "micro",
            _micro_ledger(100 if smoke else 500, seed),
        ),
        (
            "micro.sketch",
            "micro",
            "micro",
            _micro_sketch(50_000 if smoke else 500_000, seed),
        ),
        (
            "micro.net_channel",
            "micro",
            "micro",
            _micro_net_channel(
                50_000 if smoke else 200_000, 100 if smoke else 200, seed
            ),
        ),
    ]
    return rows


def bench_filename(now: Optional[datetime.datetime] = None) -> str:
    """``BENCH_<UTC timestamp>.json``, the trajectory-point file name."""
    now = now or datetime.datetime.now(datetime.timezone.utc)
    return f"BENCH_{now.strftime('%Y%m%dT%H%M%SZ')}.json"


def run_bench(
    mode: str = "smoke",
    seed: int = DEFAULT_SEED,
    out_dir: str = "results",
    out_path: Optional[str] = None,
    progress=None,
    name_filter: Optional[str] = None,
) -> Tuple[Dict[str, Any], str]:
    """Run the suite, write ``BENCH_*.json`` atomically, return (payload, path).

    ``name_filter`` keeps only suite rows whose name contains the given
    substring (e.g. ``"micro.heartbeat"``); an exhaustive filter is an
    error rather than a silently empty benchmark.
    """
    if mode not in ("smoke", "full"):
        raise ValueError(f"unknown bench mode {mode!r}")
    suite = _suite(mode, seed)
    if name_filter:
        suite = [row for row in suite if name_filter in row[0]]
        if not suite:
            raise ValueError(
                f"--filter {name_filter!r} matches no bench scenario"
            )
    manifest = RunManifest(name=f"bench-{mode}", seed=seed)
    manifest.config = {
        "mode": mode,
        "runs": len(suite),
        **({"filter": name_filter} if name_filter else {}),
    }
    runs: List[Dict[str, Any]] = []
    for i, (name, group, kind, workload) in enumerate(suite):
        if progress is not None:
            progress.progress("bench", i, len(suite))
        # micro runs are short enough that scheduler interference dominates
        # a single sample; keep the fastest of three repetitions (the
        # standard noise-robust estimator).  Sim runs are long and costly.
        reps = 3 if kind == "micro" else 1
        best = None
        for _ in range(reps):
            profiler = Profiler()
            t0 = CLOCK()
            metrics = workload(profiler)
            wall = CLOCK() - t0
            if best is None or wall < best[0]:
                best = (wall, metrics, profiler.as_dict())
        wall, metrics, profile = best
        runs.append(
            {
                "name": name,
                "group": group,
                "kind": kind,
                "wall_seconds": round(wall, 6),
                "metrics": metrics,
                "profile": profile,
            }
        )
    if progress is not None:
        progress.progress("bench", len(suite), len(suite))
    manifest.finish()
    payload = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "mode": mode,
        "manifest": manifest.as_dict(),
        "runs": runs,
    }
    if out_path is None:
        out_path = os.path.join(out_dir, bench_filename())
    write_json(out_path, payload)
    return payload, out_path


# ----------------------------------------------------------------------- loading --
def validate_bench_payload(payload: Any, what: str = "bench payload") -> None:
    """Raise :class:`ValueError` unless ``payload`` is a readable BENCH file."""
    if not isinstance(payload, dict):
        raise ValueError(f"{what}: not a JSON object")
    check_schema_version(payload.get("schema_version"), what)
    if payload.get("kind") != "bench":
        raise ValueError(
            f"{what}: kind is {payload.get('kind')!r}, expected 'bench'"
        )
    runs = payload.get("runs")
    if not isinstance(runs, list):
        raise ValueError(f"{what}: 'runs' must be a list")
    for run in runs:
        for key in ("name", "wall_seconds", "metrics", "profile"):
            if key not in run:
                raise ValueError(
                    f"{what}: run {run.get('name', '?')!r} lacks {key!r}"
                )


def load_bench(path: str) -> Dict[str, Any]:
    """Read and validate one ``BENCH_*.json`` file."""
    with open(path) as fh:
        payload = json.load(fh)
    validate_bench_payload(payload, what=path)
    return payload


def bench_payload_from_pytest(output_json: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a pytest-benchmark ``--benchmark-json`` dict to BENCH schema.

    Each pytest benchmark becomes one ``kind: "micro"`` run whose
    ``wall_seconds`` is the mean round time, so ``compare`` gates
    pytest-benchmark results exactly like ``python -m repro.obs bench``
    output.
    """
    runs = []
    for bench in output_json.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = float(stats.get("mean", 0.0))
        runs.append(
            {
                "name": f"pytest.{bench.get('name', '?')}",
                "group": str(bench.get("group") or "pytest-benchmark"),
                "kind": "micro",
                "wall_seconds": mean,
                "metrics": {
                    "min_s": stats.get("min"),
                    "max_s": stats.get("max"),
                    "stddev_s": stats.get("stddev"),
                    "rounds": stats.get("rounds"),
                    "ops_per_sec": stats.get("ops"),
                },
                "profile": {},
            }
        )
    commit = output_json.get("commit_info") or {}
    machine = output_json.get("machine_info") or {}
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "mode": "pytest",
        "manifest": {
            "name": "bench-pytest",
            "schema_version": SCHEMA_VERSION,
            "seed": None,
            "git_describe": str(commit.get("id") or "unknown")[:12],
            "python": machine.get("python_version", "unknown"),
            "started_at": output_json.get("datetime", "unknown"),
            "wall_seconds": None,
        },
        "runs": runs,
    }


# ----------------------------------------------------------------------- compare --
@dataclass
class BenchComparison:
    """Outcome of diffing two bench payloads."""

    threshold: float
    #: (scope, old seconds, new seconds, delta percent, regressed?)
    rows: List[Tuple[str, float, float, float, bool]] = field(
        default_factory=list
    )
    only_old: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Tuple[str, float, float, float, bool]]:
        return [row for row in self.rows if row[4]]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _delta_pct(old: float, new: float) -> float:
    if old <= 0:
        return 0.0 if new <= 0 else float("inf")
    return (new - old) / old * 100.0


def compare_payloads(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = 20.0,
    min_seconds: float = MIN_SECONDS,
) -> BenchComparison:
    """Diff run wall times and per-scope cumulative profile times.

    A row regresses when the new time exceeds the old by more than
    ``threshold`` percent *and* at least one side is above the
    ``min_seconds`` noise floor.
    """
    validate_bench_payload(old, "old payload")
    validate_bench_payload(new, "new payload")
    comparison = BenchComparison(threshold=threshold)
    old_runs = {r["name"]: r for r in old["runs"]}
    new_runs = {r["name"]: r for r in new["runs"]}
    comparison.only_old = sorted(set(old_runs) - set(new_runs))
    comparison.only_new = sorted(set(new_runs) - set(old_runs))

    def add(scope: str, old_s: float, new_s: float) -> None:
        if max(old_s, new_s) < min_seconds:
            return
        delta = _delta_pct(old_s, new_s)
        comparison.rows.append(
            (scope, old_s, new_s, delta, delta > threshold)
        )

    for name in sorted(set(old_runs) & set(new_runs)):
        o, n = old_runs[name], new_runs[name]
        add(name, float(o["wall_seconds"]), float(n["wall_seconds"]))
        o_prof, n_prof = o.get("profile", {}), n.get("profile", {})
        for path in sorted(set(o_prof) & set(n_prof)):
            add(
                f"{name} :: {path}",
                float(o_prof[path]["cum_s"]),
                float(n_prof[path]["cum_s"]),
            )
    return comparison


def compare_files(
    old_path: str,
    new_path: str,
    threshold: float = 20.0,
    min_seconds: float = MIN_SECONDS,
) -> BenchComparison:
    return compare_payloads(
        load_bench(old_path),
        load_bench(new_path),
        threshold=threshold,
        min_seconds=min_seconds,
    )


def render_compare(
    comparison: BenchComparison, old_path: str = "A", new_path: str = "B"
) -> str:
    """Human-readable regression report (repo table formatting)."""
    chunks: List[str] = []
    title = f"Bench compare — {old_path} -> {new_path}"
    chunks.append(f"{title}\n{'=' * len(title)}")
    regressed = comparison.regressions
    rows = [
        [
            scope,
            f"{old_s:.4f}",
            f"{new_s:.4f}",
            f"{delta:+.1f}",
            "REGRESSED" if bad else "",
        ]
        for scope, old_s, new_s, delta, bad in sorted(
            comparison.rows, key=lambda r: -r[3]
        )
    ]
    chunks.append(
        format_table(
            ["scope", "old s", "new s", "delta %", ""],
            rows,
            title=f"Timings (threshold {comparison.threshold:.0f}%)",
        )
    )
    if comparison.only_old:
        chunks.append(
            "only in old: " + ", ".join(comparison.only_old)
        )
    if comparison.only_new:
        chunks.append(
            "only in new: " + ", ".join(comparison.only_new)
        )
    if regressed:
        chunks.append(
            f"{len(regressed)} scope(s) regressed past "
            f"{comparison.threshold:.0f}%"
        )
    else:
        chunks.append("no regressions past threshold")
    return "\n\n".join(chunks)
