"""Offline trace analysis: ``python -m repro.obs summarize <trace.jsonl>``.

Reads a JSONL trace produced by :class:`~repro.obs.trace.JsonlTraceWriter`
and reports:

* per-event-type counts over the whole file;
* protocol message counts and byte volumes broken down by message type,
  grouped per run (a trace may hold several ``run.start``-delimited runs,
  e.g. one per heartbeat scheme in fig7);
* push-hop histograms from matchmaking placements.

The numbers are computed from the same ``msg.sent`` events that feed
:class:`~repro.can.stats.MessageStats`, so totals agree with the in-run
accounting by construction.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..analysis.tables import format_table
from .trace import read_trace

__all__ = ["TraceSummary", "summarize_events", "summarize_file", "render_summary"]


class TraceSummary:
    """Aggregates computed from one pass over an event stream."""

    def __init__(self) -> None:
        #: event-type -> count, whole file
        self.event_counts: Dict[str, int] = {}
        #: run label -> {"scheme": ..., "messages": {mtype: count},
        #:               "bytes": {mtype: bytes}}
        self.runs: Dict[str, Dict[str, Any]] = {}
        #: push-hop count -> number of placements
        self.hop_histogram: Dict[int, int] = {}
        self.total_events = 0

    # -- derived views ---------------------------------------------------------
    def run_message_totals(self) -> List[Tuple[str, str, int, float]]:
        """Rows of (run label, scheme, messages, kbytes)."""
        rows = []
        for label, info in self.runs.items():
            rows.append(
                (
                    label,
                    str(info.get("scheme", "?")),
                    sum(info["messages"].values()),
                    sum(info["bytes"].values()) / 1024.0,
                )
            )
        return rows

    def heartbeat_volume_by_scheme(self) -> Dict[str, float]:
        """Scheme -> total heartbeat bytes (full + compact), summed over runs."""
        out: Dict[str, float] = {}
        for info in self.runs.values():
            scheme = str(info.get("scheme", "?"))
            hb = sum(
                b
                for mtype, b in info["bytes"].items()
                if mtype.startswith("heartbeat")
            )
            out[scheme] = out.get(scheme, 0.0) + hb
        return out


def summarize_events(events: Iterable[Dict[str, Any]]) -> TraceSummary:
    """One pass over decoded event dicts."""
    s = TraceSummary()
    current: Optional[Dict[str, Any]] = None
    for ev in events:
        etype = ev.get("type", "?")
        s.total_events += 1
        s.event_counts[etype] = s.event_counts.get(etype, 0) + 1
        if etype == "run.start":
            label = str(ev.get("label", f"run-{len(s.runs)}"))
            current = s.runs.setdefault(
                label,
                {"scheme": ev.get("scheme"), "messages": {}, "bytes": {}},
            )
        elif etype == "msg.sent":
            if current is None:
                current = s.runs.setdefault(
                    "(unlabelled)", {"scheme": None, "messages": {}, "bytes": {}}
                )
            mtype = str(ev.get("mtype", "?"))
            copies = int(ev.get("copies", 1))
            nbytes = int(ev.get("bytes", 0))
            current["messages"][mtype] = current["messages"].get(mtype, 0) + copies
            current["bytes"][mtype] = (
                current["bytes"].get(mtype, 0) + nbytes * copies
            )
        elif etype == "mm.placed":
            hops = int(ev.get("hops", 0))
            s.hop_histogram[hops] = s.hop_histogram.get(hops, 0) + 1
    return s


def summarize_file(path: str) -> TraceSummary:
    return summarize_events(read_trace(path))


def render_summary(s: TraceSummary, path: str = "") -> str:
    """Human-readable report (tables share the repo's formatting)."""
    chunks: List[str] = []
    title = f"Trace summary — {path}" if path else "Trace summary"
    chunks.append(f"{title}\n{'=' * len(title)}")
    chunks.append(f"total events: {s.total_events}")

    chunks.append(
        format_table(
            ["event type", "count"],
            [[etype, count] for etype, count in sorted(s.event_counts.items())],
            title="Events by type",
        )
    )

    for label, info in s.runs.items():
        if not info["messages"]:
            continue
        rows = [
            [mtype, info["messages"][mtype], f"{info['bytes'][mtype] / 1024.0:.2f}"]
            for mtype in sorted(info["messages"])
        ]
        rows.append(
            [
                "TOTAL",
                sum(info["messages"].values()),
                f"{sum(info['bytes'].values()) / 1024.0:.2f}",
            ]
        )
        scheme = info.get("scheme")
        suffix = f" (scheme: {scheme})" if scheme else ""
        chunks.append(
            format_table(
                ["message type", "messages", "KB"],
                rows,
                title=f"Message volume — {label}{suffix}",
            )
        )

    by_scheme = {k: v for k, v in s.heartbeat_volume_by_scheme().items() if v}
    if by_scheme:
        chunks.append(
            format_table(
                ["scheme", "heartbeat KB"],
                [
                    [scheme, f"{b / 1024.0:.2f}"]
                    for scheme, b in sorted(by_scheme.items())
                ],
                title="Heartbeat volume by scheme",
            )
        )

    if s.hop_histogram:
        total = sum(s.hop_histogram.values())
        rows = [
            [hops, count, f"{100.0 * count / total:.1f}"]
            for hops, count in sorted(s.hop_histogram.items())
        ]
        chunks.append(
            format_table(
                ["push hops", "placements", "%"],
                rows,
                title="Push-hop histogram",
            )
        )
    return "\n\n".join(chunks)
