"""Low-overhead hierarchical wall-clock profiling for the simulators.

The trace layer answers *what happened* in simulated time; this module
answers *where the wall clock went*.  A :class:`Profiler` maintains a stack
of named scopes and aggregates, per scope **path** (``parent/child``, so the
same phase is reported separately under different callers):

* ``calls`` — how many times the scope was entered;
* ``cum`` — total wall seconds inside the scope, children included;
* ``self`` — ``cum`` minus the time spent in child scopes.

Producers follow the tracer idiom: components hold an ``Optional[Profiler]``
(``None`` by default) and either guard per-call with ``is not None`` /
``@profiled`` (hot paths: the kernel's event dispatch, per-placement
scoring) or alias ``prof = self.profiler or NULL_PROFILER`` and scope
unconditionally (phase-level paths, where a handful of no-op context
managers per round is unmeasurable).  :data:`NULL_PROFILER` is a shared
:class:`NullProfiler` whose ``scope()`` returns one reusable no-op context
manager — unprofiled runs allocate nothing and record nothing, which the
test suite pins the same way it pins the tracer's zero-overhead guarantee.

Recursive scopes fold into one path entry (``cum`` then counts each level,
so a scope's ``cum`` can exceed its parent's); the simulators don't recurse.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.tables import format_table

__all__ = [
    "CLOCK",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "ScopeStats",
    "profiled",
    "render_profile",
    "scope_totals",
]

#: the wall clock every profiler (and rate/ETA reporting) reads by default
CLOCK = time.perf_counter


class ScopeStats:
    """Aggregated timings of one scope path (an immutable snapshot)."""

    __slots__ = ("path", "calls", "cum", "self_time")

    def __init__(self, path: str, calls: int, cum: float, self_time: float):
        self.path = path
        self.calls = calls
        self.cum = cum
        self.self_time = self_time

    @property
    def name(self) -> str:
        """The scope's own name (the last path segment)."""
        return self.path.rsplit("/", 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count("/")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "calls": self.calls,
            "cum_s": self.cum,
            "self_s": self.self_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScopeStats({self.path!r}, calls={self.calls}, "
            f"cum={self.cum:.6g}, self={self.self_time:.6g})"
        )


class _Scope:
    """The context manager ``Profiler.scope`` hands out."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Scope":
        self._profiler.push(self._name)
        return self

    def __exit__(self, *exc: object) -> None:
        self._profiler.pop()


class Profiler:
    """Hierarchical scope timings keyed by ``parent/child`` paths."""

    __slots__ = ("_clock", "_stack", "_raw")

    #: class attribute so the disabled test costs one attribute load
    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else CLOCK
        #: active frames: [path, start time, accumulated child time]
        self._stack: List[List] = []
        #: path -> [calls, cum, child] (mutable, hot)
        self._raw: Dict[str, List] = {}

    # -- recording (the hot path) ------------------------------------------------
    def push(self, name: str) -> None:
        """Enter scope ``name`` under the currently active scope."""
        stack = self._stack
        path = f"{stack[-1][0]}/{name}" if stack else name
        stack.append([path, self._clock(), 0.0])

    def pop(self) -> float:
        """Leave the innermost scope; returns its elapsed wall seconds."""
        path, start, child = self._stack.pop()
        dt = self._clock() - start
        rec = self._raw.get(path)
        if rec is None:
            self._raw[path] = [1, dt, child]
        else:
            rec[0] += 1
            rec[1] += dt
            rec[2] += child
        if self._stack:
            self._stack[-1][2] += dt
        return dt

    def scope(self, name: str) -> _Scope:
        """``with profiler.scope("hb.exchange"): ...``"""
        return _Scope(self, name)

    # -- reporting ----------------------------------------------------------------
    def stats(self) -> Dict[str, ScopeStats]:
        """Snapshot of every completed scope path (sorted by path)."""
        out: Dict[str, ScopeStats] = {}
        for path in sorted(self._raw):
            calls, cum, child = self._raw[path]
            out[path] = ScopeStats(path, calls, cum, max(cum - child, 0.0))
        return out

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able ``{path: {calls, cum_s, self_s}}`` (the bench schema)."""
        return {path: s.as_dict() for path, s in self.stats().items()}

    def total_calls(self) -> int:
        return sum(rec[0] for rec in self._raw.values())

    def reset(self) -> None:
        """Drop all recorded stats (active scopes stay on the stack)."""
        self._raw.clear()


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SCOPE = _NullScope()


class NullProfiler:
    """API-compatible no-op: unprofiled code paths pay (almost) nothing.

    ``scope()`` returns one shared, reusable context manager, so phase-level
    instrumentation written as ``(self.profiler or NULL_PROFILER).scope(...)``
    allocates nothing when profiling is off.
    """

    __slots__ = ()

    enabled = False

    def push(self, name: str) -> None:
        pass

    def pop(self) -> float:
        return 0.0

    def scope(self, name: str) -> _NullScope:
        return _NULL_SCOPE

    def stats(self) -> Dict[str, ScopeStats]:
        return {}

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def total_calls(self) -> int:
        return 0

    def reset(self) -> None:
        pass


#: the shared no-op instance components alias when no profiler was wired
NULL_PROFILER = NullProfiler()


def profiled(name: Optional[str] = None) -> Callable:
    """Method decorator timing each call under the holder's profiler.

    For methods of components that follow the observability idiom (a
    ``self.profiler`` attribute that is ``None`` or a :class:`Profiler`).
    The disabled path is one attribute load plus one truth test, matching
    the tracer's ``if self.tracer is not None`` guard.

    >>> class Engine:
    ...     def __init__(self, profiler=None):
    ...         self.profiler = profiler
    ...     @profiled("engine.step")
    ...     def step(self):
    ...         ...
    """

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__name__

        @functools.wraps(fn)
        def wrapper(self, *args: Any, **kwargs: Any):
            prof = self.profiler
            if prof is None or not prof.enabled:
                return fn(self, *args, **kwargs)
            prof.push(label)
            try:
                return fn(self, *args, **kwargs)
            finally:
                prof.pop()

        return wrapper

    return decorate


def render_profile(
    profile: Dict[str, Dict[str, Any]],
    title: str = "Profile",
    min_cum_s: float = 0.0,
    limit: int = 0,
) -> str:
    """Human-readable table from ``Profiler.as_dict()``-shaped data.

    Rows keep path order (children under parents, indented by depth) and
    scopes whose cumulative time is below ``min_cum_s`` are elided;
    ``limit`` > 0 keeps only the first N surviving rows.
    """
    rows: List[List[object]] = []
    for path in sorted(profile):
        entry = profile[path]
        cum = float(entry.get("cum_s", 0.0))
        if cum < min_cum_s:
            continue
        depth = path.count("/")
        rows.append(
            [
                "  " * depth + path.rsplit("/", 1)[-1],
                entry.get("calls", 0),
                f"{cum:.4f}",
                f"{float(entry.get('self_s', 0.0)):.4f}",
            ]
        )
    if limit > 0:
        rows = rows[:limit]
    if not rows:
        return f"{title}\n(no scopes recorded)"
    return format_table(
        ["scope", "calls", "cum s", "self s"], rows, title=title
    )


def scope_totals(profile: Dict[str, Dict[str, Any]]) -> Tuple[int, float]:
    """(total calls, root cumulative seconds) of a profile dict."""
    calls = sum(int(e.get("calls", 0)) for e in profile.values())
    root_cum = sum(
        float(e.get("cum_s", 0.0))
        for path, e in profile.items()
        if "/" not in path
    )
    return calls, root_cum
