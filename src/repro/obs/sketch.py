"""Constant-memory streaming telemetry: quantile sketches and windowed counters.

The experiment harness historically kept one in-memory sample per job
(``MatchmakingResult.wait_times``), which caps workloads far below the
million-job target.  This module provides the streaming replacements:

* :class:`QuantileSketch` — a deterministic KLL/MRL-style compactor
  sketch.  Inserts are amortised O(1); memory is bounded by
  ``k * ceil(log2(n / k))`` retained samples (a few thousand floats at a
  million inserts), independent of the value distribution.  Rank error is
  ~``1/k`` in practice — well inside the 1 % the harness pins in tests —
  and compaction is *deterministic* (per-level alternating parity instead
  of coin flips), so a seeded run snapshots byte-identically every time.
* :class:`WindowedCounter` — event counts over a sliding time window,
  stored in a fixed ring of buckets (O(1) memory, O(1) add).

Both are registered as first-class monitor kinds in
:class:`~repro.obs.registry.MetricsRegistry` and rendered by the
Prometheus text exposition (:mod:`repro.obs.prom`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["QuantileSketch", "WindowedCounter"]

#: default per-level compactor capacity; rank error scales like 1/k
DEFAULT_K = 512


class QuantileSketch:
    """Mergeable streaming quantile/CDF estimator with bounded memory.

    Values live in per-level buffers; level ``L`` items each stand for
    ``2**L`` original samples.  When a level fills to ``k`` items it is
    sorted and every other item is promoted to the next level (the parity
    alternates per level between compactions, cancelling rank bias).  The
    first ``k`` inserts are therefore *exact*.
    """

    __slots__ = ("k", "n", "_levels", "_parity", "_min", "_max", "_sum")

    def __init__(self, k: int = DEFAULT_K):
        if k < 8 or k % 2:
            raise ValueError("k must be an even integer >= 8")
        self.k = k
        self.n = 0
        self._levels: List[List[float]] = [[]]
        self._parity: List[bool] = [False]
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0

    # -- ingest ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot insert NaN")
        self.n += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        level0 = self._levels[0]
        level0.append(value)
        if len(level0) >= self.k:
            self._compact(0)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.insert(value)

    def _compact(self, level: int) -> None:
        buf = self._levels[level]
        buf.sort()
        offset = 1 if self._parity[level] else 0
        self._parity[level] = not self._parity[level]
        survivors = buf[offset::2]
        buf.clear()
        if level + 1 == len(self._levels):
            self._levels.append([])
            self._parity.append(False)
        upper = self._levels[level + 1]
        upper.extend(survivors)
        if len(upper) >= self.k:
            self._compact(level + 1)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (for sharded/parallel sweeps)."""
        for level, buf in enumerate(other._levels):
            if not buf:
                continue
            while level >= len(self._levels):
                self._levels.append([])
                self._parity.append(False)
            mine = self._levels[level]
            mine.extend(buf)
            while len(mine) >= self.k:
                self._compact(level)
                mine = self._levels[level]
        self.n += other.n
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    # -- introspection -----------------------------------------------------------
    @property
    def retained(self) -> int:
        """Samples currently held — the sketch's memory footprint."""
        return sum(len(buf) for buf in self._levels)

    @property
    def levels(self) -> int:
        return len(self._levels)

    @property
    def min(self) -> float:
        return self._min if self.n else math.nan

    @property
    def max(self) -> float:
        return self._max if self.n else math.nan

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self.n if self.n else math.nan

    def __len__(self) -> int:
        return self.n

    # -- queries -----------------------------------------------------------------
    def _weighted(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted values, cumulative weights) over every retained sample."""
        values: List[float] = []
        weights: List[float] = []
        for level, buf in enumerate(self._levels):
            if buf:
                values.extend(buf)
                weights.extend([float(1 << level)] * len(buf))
        if not values:
            return np.empty(0), np.empty(0)
        v = np.asarray(values)
        w = np.asarray(weights)
        order = np.argsort(v, kind="stable")
        return v[order], np.cumsum(w[order])

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (min/max are exact)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.n:
            return math.nan
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        values, cum = self._weighted()
        target = q * cum[-1]
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, values.size - 1)
        return float(values[idx])

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    def cdf(self, thresholds: Sequence[float]) -> np.ndarray:
        """Estimated fraction of inserted values <= each threshold."""
        t = np.asarray(thresholds, dtype=float)
        if not self.n:
            return np.zeros_like(t)
        values, cum = self._weighted()
        idx = np.searchsorted(values, t, side="right")
        total = cum[-1]
        out = np.where(idx > 0, cum[np.maximum(idx - 1, 0)], 0.0) / total
        # exactness at the extremes: nothing below min, everything >= max
        out[t < self._min] = 0.0
        out[t >= self._max] = 1.0
        return out

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able summary (what registry snapshots and manifests store)."""
        if not self.n:
            return {"count": 0, "retained": 0}
        return {
            "count": self.n,
            "retained": self.retained,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(n={self.n}, retained={self.retained}, "
            f"levels={self.levels})"
        )


class WindowedCounter:
    """Event counts over a sliding window, in a fixed ring of time buckets.

    ``add(t, amount)`` books ``amount`` into the bucket containing ``t``;
    buckets older than the window are recycled as time advances.  ``total``
    and ``rate`` answer "how much in the last ``window`` seconds?" in O(
    buckets).  Time may be simulated or wall-clock — the counter only
    requires it to be (mostly) monotone; a sample older than the current
    window is dropped.
    """

    __slots__ = ("window", "buckets", "_span", "_counts", "_slots", "_last_t", "lifetime")

    def __init__(self, window: float = 300.0, buckets: int = 60):
        if window <= 0 or buckets <= 0:
            raise ValueError("window and buckets must be positive")
        self.window = float(window)
        self.buckets = int(buckets)
        self._span = self.window / self.buckets
        self._counts = [0.0] * self.buckets
        #: absolute bucket index currently stored in each ring slot
        self._slots = [-1] * self.buckets
        self._last_t = 0.0
        #: total ever added (monotone, survives bucket expiry)
        self.lifetime = 0.0

    def add(self, t: float, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.lifetime += amount
        if t > self._last_t:
            self._last_t = t
        bucket = int(t // self._span)
        newest = int(self._last_t // self._span)
        if bucket <= newest - self.buckets:
            return  # older than the whole ring: already expired
        slot = bucket % self.buckets
        if self._slots[slot] != bucket:
            self._slots[slot] = bucket
            self._counts[slot] = 0.0
        self._counts[slot] += amount

    def total(self, now: Optional[float] = None) -> float:
        """Amount booked in the window ending at ``now`` (default: last add)."""
        now = self._last_t if now is None else max(float(now), self._last_t)
        newest = int(now // self._span)
        oldest = newest - self.buckets + 1
        return sum(
            count
            for slot, count in zip(self._slots, self._counts)
            if oldest <= slot <= newest
        )

    def rate(self, now: Optional[float] = None) -> float:
        """Events per second over the window ending at ``now``."""
        return self.total(now) / self.window

    def as_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        return {
            "window": self.window,
            "total": self.total(now),
            "rate": self.rate(now),
            "lifetime": self.lifetime,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowedCounter(window={self.window}, "
            f"total={self.total():g})"
        )
