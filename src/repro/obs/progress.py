"""Human-facing progress reporting, backed by the same event bus.

Replaces the historical ``print(..., file=sys.stderr)`` lines in the
experiment harness.  A :class:`ProgressReporter` writes one-line progress
to a stream (stderr by default) *and* mirrors each report as a
``run.progress`` event when a tracer is attached, so traces record the
harness's phase transitions alongside the simulation events.

Silencing: pass ``quiet=True``, or set the ``REPRO_QUIET`` environment
variable to any non-empty value other than ``0`` — the benchmark suite
does this so timing runs stay free of terminal I/O.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Dict, Optional, TextIO

from .events import Tracer
from .profiling import CLOCK

__all__ = ["ProgressReporter", "quiet_from_env"]


def quiet_from_env(default: bool = False) -> bool:
    """True when ``REPRO_QUIET`` requests silence."""
    raw = os.environ.get("REPRO_QUIET")
    if raw is None:
        return default
    return raw.strip() not in ("", "0", "false", "no")


class ProgressReporter:
    """Labelled start/progress/done/info lines with optional trace mirroring.

    :meth:`start` stamps the label with the profiler clock
    (:data:`repro.obs.profiling.CLOCK`); :meth:`progress` derives a
    completion rate and an ETA from that stamp, and :meth:`done` derives
    elapsed seconds and an events/sec rate when the caller reports how
    many events the phase processed.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        quiet: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self._stream = stream
        #: None defers to REPRO_QUIET at report time, so long-lived
        #: reporters pick up fixture/benchmark environment changes
        self._quiet = quiet
        self.tracer = tracer
        self._clock = clock if clock is not None else CLOCK
        #: label -> clock stamp from the matching start()
        self._started: Dict[str, float] = {}

    @property
    def quiet(self) -> bool:
        return quiet_from_env() if self._quiet is None else self._quiet

    @quiet.setter
    def quiet(self, value: Optional[bool]) -> None:
        self._quiet = value

    def _emit(self, label: str, status: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(0.0, "run.progress", label=label, status=status, **fields)
        if self.quiet:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        extra = ""
        if "seconds" in fields:
            extra = f" in {fields['seconds']:.1f}s"
            if "rate" in fields:
                extra += f" ({fields['rate']:.0f} events/s)"
        elif "completed" in fields:
            pct = fields.get("percent")
            extra = f" {fields['completed']}/{fields['total']}"
            if pct is not None:
                extra += f" ({pct:.0f}%)"
            if "rate" in fields:
                extra += f" {fields['rate']:.1f}/s"
            if "eta_seconds" in fields:
                extra += f" ETA {fields['eta_seconds']:.1f}s"
        elif "message" in fields:
            extra = f" {fields['message']}"
        print(f"[{label}] {status}{extra}", file=stream, flush=True)

    # -- the report shapes the harness uses -----------------------------------
    def start(self, label: str) -> None:
        self._started[label] = self._clock()
        self._emit(label, "running ...")

    def progress(self, label: str, completed: int, total: int) -> None:
        """Mid-phase completion line with rate and ETA.

        Rate is ``completed`` items per second since the matching
        :meth:`start`; ETA extrapolates it over the remaining items.
        Without a prior ``start`` (or with nothing completed yet) the
        line degrades to the bare ``completed/total`` count.
        """
        fields: Dict[str, Any] = {
            "completed": int(completed),
            "total": int(total),
        }
        if total > 0:
            fields["percent"] = 100.0 * completed / total
        t0 = self._started.get(label)
        if t0 is not None and completed > 0:
            elapsed = self._clock() - t0
            if elapsed > 0:
                rate = completed / elapsed
                fields["rate"] = rate
                fields["eta_seconds"] = max(total - completed, 0) / rate
        self._emit(label, "progress", **fields)

    def done(
        self,
        label: str,
        seconds: Optional[float] = None,
        events: Optional[int] = None,
    ) -> None:
        """Phase-complete line; ``seconds`` defaults to the start() stamp.

        Pass ``events`` (however many simulation events / items the phase
        processed) to append an events/sec rate.
        """
        if seconds is None:
            t0 = self._started.get(label)
            seconds = (self._clock() - t0) if t0 is not None else 0.0
        fields: Dict[str, Any] = {"seconds": seconds}
        if events is not None and seconds > 0:
            fields["rate"] = events / seconds
        self._emit(label, "done", **fields)
        self._started.pop(label, None)

    def info(self, label: str, message: str) -> None:
        self._emit(label, "info", message=message)

    def timed(self, label: str, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` bracketed by start/done reports; return its result."""
        start = self._clock()
        self.start(label)
        result = fn(*args, **kwargs)
        self.done(label, self._clock() - start)
        return result
