"""Human-facing progress reporting, backed by the same event bus.

Replaces the historical ``print(..., file=sys.stderr)`` lines in the
experiment harness.  A :class:`ProgressReporter` writes one-line progress
to a stream (stderr by default) *and* mirrors each report as a
``run.progress`` event when a tracer is attached, so traces record the
harness's phase transitions alongside the simulation events.

Silencing: pass ``quiet=True``, or set the ``REPRO_QUIET`` environment
variable to any non-empty value other than ``0`` — the benchmark suite
does this so timing runs stay free of terminal I/O.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Callable, Optional, TextIO

from .events import Tracer

__all__ = ["ProgressReporter", "quiet_from_env"]


def quiet_from_env(default: bool = False) -> bool:
    """True when ``REPRO_QUIET`` requests silence."""
    raw = os.environ.get("REPRO_QUIET")
    if raw is None:
        return default
    return raw.strip() not in ("", "0", "false", "no")


class ProgressReporter:
    """Labelled start/done/info lines with optional trace mirroring."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        quiet: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._stream = stream
        #: None defers to REPRO_QUIET at report time, so long-lived
        #: reporters pick up fixture/benchmark environment changes
        self._quiet = quiet
        self.tracer = tracer

    @property
    def quiet(self) -> bool:
        return quiet_from_env() if self._quiet is None else self._quiet

    @quiet.setter
    def quiet(self, value: Optional[bool]) -> None:
        self._quiet = value

    def _emit(self, label: str, status: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(0.0, "run.progress", label=label, status=status, **fields)
        if self.quiet:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        extra = ""
        if "seconds" in fields:
            extra = f" in {fields['seconds']:.1f}s"
        elif "message" in fields:
            extra = f" {fields['message']}"
        print(f"[{label}] {status}{extra}", file=stream, flush=True)

    # -- the three report shapes the harness uses -----------------------------
    def start(self, label: str) -> None:
        self._emit(label, "running ...")

    def done(self, label: str, seconds: float) -> None:
        self._emit(label, "done", seconds=seconds)

    def info(self, label: str, message: str) -> None:
        self._emit(label, "info", message=message)

    def timed(self, label: str, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` bracketed by start/done reports; return its result."""
        start = time.time()
        self.start(label)
        result = fn(*args, **kwargs)
        self.done(label, time.time() - start)
        return result
