"""CLI entry point: ``python -m repro.obs <command>``.

Commands:

    summarize <trace.jsonl> [...]   per-event-type counts, message-volume
                                    breakdowns per run/scheme, and push-hop
                                    histograms for one or more trace files
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .summarize import render_summary, summarize_file


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect observability artifacts (JSONL traces).",
    )
    sub = parser.add_subparsers(dest="command")
    p_sum = sub.add_parser(
        "summarize", help="summarise one or more JSONL trace files"
    )
    p_sum.add_argument("traces", nargs="+", help="path(s) to *_trace.jsonl")
    args = parser.parse_args(argv)

    if args.command != "summarize":
        parser.print_help()
        return 2
    status = 0
    for i, path in enumerate(args.traces):
        try:
            summary = summarize_file(path)
        except (OSError, ValueError) as exc:
            # ValueError covers JSONDecodeError from corrupt/truncated lines
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        if i:
            print()
        print(render_summary(summary, path))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
