"""CLI entry point: ``python -m repro.obs <command>``.

Commands:

    summarize <trace.jsonl> [...]   per-event-type counts, message-volume
                                    breakdowns per run/scheme, and push-hop
                                    histograms for one or more trace files
    spans <trace.jsonl>             rebuild causal per-job spans from a
          [--job N] [--validate]    trace: per-kind summary, one job's
                                    tree, or structural validation
    critical-path <trace.jsonl>     per-job (or fleet-aggregate) chain of
          [--job N]                 top-level segments: matchmaking, queue,
                                    run, detection latency, retry backoff
    bench [--smoke] [--out PATH]    run the canonical performance benchmark
          [--filter SUBSTRING]      suite (or the subset whose names contain
                                    SUBSTRING) and write a
                                    BENCH_<timestamp>.json trajectory point
    compare A.json B.json           diff two BENCH files; nonzero exit when
                                    any run/scope regressed past --threshold
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bench import (
    DEFAULT_SEED,
    compare_files,
    render_compare,
    run_bench,
)
from .progress import ProgressReporter
from .spans import (
    build_spans_from_file,
    render_critical_path,
    render_spans,
)
from .summarize import render_summary, summarize_file


def _cmd_summarize(args) -> int:
    status = 0
    for i, path in enumerate(args.traces):
        try:
            summary = summarize_file(path)
        except (OSError, ValueError) as exc:
            # ValueError covers JSONDecodeError from corrupt/truncated lines
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        if i:
            print()
        print(render_summary(summary, path))
    return status


def _load_spans(path: str):
    try:
        return build_spans_from_file(path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return None


def _cmd_spans(args) -> int:
    builder = _load_spans(args.trace)
    if builder is None:
        return 1
    print(render_spans(builder, job=args.job))
    if args.validate:
        problems = builder.validate()
        if problems:
            print(f"\n{len(problems)} structural problem(s):", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("\nspan trees complete: no orphans, no open spans, "
              "every job reached a terminal state")
    return 0


def _cmd_critical_path(args) -> int:
    builder = _load_spans(args.trace)
    if builder is None:
        return 1
    print(render_critical_path(builder, job=args.job))
    return 0


def _cmd_bench(args) -> int:
    progress = ProgressReporter()
    mode = "smoke" if args.smoke else "full"
    progress.start("bench")
    payload, path = run_bench(
        mode=mode,
        seed=args.seed,
        out_path=args.out,
        progress=progress,
        name_filter=args.filter,
    )
    progress.done("bench", events=len(payload["runs"]))
    print(path)
    return 0


def _cmd_compare(args) -> int:
    kwargs = {"threshold": args.threshold}
    if args.min_seconds is not None:
        kwargs["min_seconds"] = args.min_seconds
    try:
        comparison = compare_files(args.old, args.new, **kwargs)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_compare(comparison, args.old, args.new))
    if comparison.ok:
        return 0
    if args.warn_only:
        print("warn-only: not failing on regressions", file=sys.stderr)
        return 0
    return 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Inspect observability artifacts (JSONL traces, BENCH files)."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    p_sum = sub.add_parser(
        "summarize", help="summarise one or more JSONL trace files"
    )
    p_sum.add_argument("traces", nargs="+", help="path(s) to *_trace.jsonl")

    p_spans = sub.add_parser(
        "spans", help="rebuild causal per-job spans from a JSONL trace"
    )
    p_spans.add_argument("trace", help="path to *_trace.jsonl[.gz]")
    p_spans.add_argument(
        "--job", type=int, default=None, help="show one job's span tree"
    )
    p_spans.add_argument(
        "--validate",
        action="store_true",
        help="fail (exit 1) on orphan/open spans or non-terminal jobs",
    )

    p_cp = sub.add_parser(
        "critical-path",
        help="top-level segment chain (matchmake/queue/run/detect/retry)",
    )
    p_cp.add_argument("trace", help="path to *_trace.jsonl[.gz]")
    p_cp.add_argument(
        "--job", type=int, default=None, help="one job's chain instead of the aggregate"
    )

    p_bench = sub.add_parser(
        "bench", help="run the canonical benchmark suite"
    )
    p_bench.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-scale suite (seconds, for CI); default is full",
    )
    p_bench.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="workload seed"
    )
    p_bench.add_argument(
        "--out",
        default=None,
        help="output path (default: results/BENCH_<timestamp>.json)",
    )
    p_bench.add_argument(
        "--filter",
        default=None,
        metavar="SUBSTRING",
        help="run only scenarios whose name contains SUBSTRING "
        "(e.g. 'micro.heartbeat' or 'fig7')",
    )

    p_cmp = sub.add_parser(
        "compare", help="diff two BENCH_*.json files, gate on regressions"
    )
    p_cmp.add_argument("old", help="baseline BENCH_*.json")
    p_cmp.add_argument("new", help="candidate BENCH_*.json")
    p_cmp.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        help="max tolerated slowdown percent per run/scope (default 20)",
    )
    p_cmp.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (PR builds)",
    )
    p_cmp.add_argument(
        "--min-seconds",
        type=float,
        default=None,
        help="noise floor: skip timings where both sides are below this "
        "(default 0.05)",
    )

    args = parser.parse_args(argv)
    if args.command == "summarize":
        return _cmd_summarize(args)
    if args.command == "spans":
        return _cmd_spans(args)
    if args.command == "critical-path":
        return _cmd_critical_path(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "compare":
        return _cmd_compare(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
