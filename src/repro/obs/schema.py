"""Artifact schema versioning shared by traces, manifests, and bench files.

Every machine-readable artifact the observability layer writes — JSONL
trace headers, run manifests, and ``BENCH_*.json`` trajectory points —
embeds a ``schema_version`` string so readers written against one layout
never silently misread another.  Versions are ``"<major>.<minor>"``:

* **major** bumps on incompatible layout changes; readers refuse to parse
  a file whose major differs from theirs (with a clear error naming both
  versions), because guessing would produce wrong numbers, not a crash;
* **minor** bumps on additive changes (new optional fields); readers
  accept any minor under their own major.

Files written before versioning existed carry no ``schema_version``; they
are grandfathered in as version ``1.0``.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["SCHEMA_VERSION", "schema_major", "check_schema_version"]

#: the schema version this tree writes (traces, manifests, bench files)
SCHEMA_VERSION = "1.0"


def schema_major(version: str) -> int:
    """The major component of a ``"<major>.<minor>"`` version string."""
    try:
        return int(str(version).split(".", 1)[0])
    except ValueError:
        raise ValueError(f"malformed schema version {version!r}") from None


def check_schema_version(version: Optional[Any], what: str) -> None:
    """Reject artifacts this reader cannot faithfully interpret.

    ``version=None`` (a pre-versioning artifact) is accepted as 1.0.
    Raises :class:`ValueError` — the error readers surface to users —
    when the major version differs from ours or the string is malformed.
    """
    if version is None:
        return
    major = schema_major(version)
    ours = schema_major(SCHEMA_VERSION)
    if major != ours:
        raise ValueError(
            f"{what} has schema version {version} but this reader "
            f"understands major version {ours} (schema {SCHEMA_VERSION}); "
            "regenerate the artifact or use a matching repro version"
        )
