"""repro.obs — structured tracing, metrics, profiling, and run manifests.

The observability layer for the whole simulation stack:

* :mod:`~repro.obs.events` — :class:`TraceEvent`, :class:`EventBus`, and
  the :class:`Tracer` handle components hold (zero-cost when absent);
* :mod:`~repro.obs.registry` — :class:`MetricsRegistry`, hierarchical
  names over the ``sim.monitor`` primitives with JSON-able snapshots;
* :mod:`~repro.obs.profiling` — the hierarchical wall-clock
  :class:`Profiler` threaded through the kernel's event dispatch, the
  heartbeat protocol, routing, and the matchmakers (and the no-op
  :class:`NullProfiler`, so unprofiled runs pay nothing);
* :mod:`~repro.obs.trace` — JSONL export and the per-run
  :class:`RunRecorder` harness;
* :mod:`~repro.obs.manifest` — :class:`RunManifest` (config, seeds,
  git describe, wall time, event counts) written next to result CSVs;
* :mod:`~repro.obs.progress` — :class:`ProgressReporter`, the bus-backed
  replacement for ad-hoc stderr progress prints (rate + ETA lines);
* :mod:`~repro.obs.summarize` — offline trace analysis, also available as
  ``python -m repro.obs summarize <trace.jsonl>``;
* :mod:`~repro.obs.bench` — the canonical benchmark suite
  (``python -m repro.obs bench``) writing schema-versioned
  ``BENCH_*.json`` trajectory points, and the ``compare`` regression
  gate;
* :mod:`~repro.obs.schema` — the artifact schema version and the
  major-version compatibility check every reader applies;
* :mod:`~repro.obs.spans` — causal per-job :class:`Span` trees rebuilt
  from the event stream (live via :class:`SpanBuilder` or offline over a
  trace file) with critical-path extraction
  (``python -m repro.obs spans`` / ``critical-path``);
* :mod:`~repro.obs.sketch` — constant-memory streaming telemetry:
  :class:`QuantileSketch` (deterministic KLL-style quantiles/CDFs) and
  :class:`WindowedCounter` (sliding-window rates), first-class registry
  monitor kinds;
* :mod:`~repro.obs.prom` — Prometheus text exposition of a registry for
  the live gateway's ``/metrics``.
"""

from .bench import (
    BenchComparison,
    bench_payload_from_pytest,
    compare_files,
    compare_payloads,
    load_bench,
    render_compare,
    run_bench,
    validate_bench_payload,
)
from .events import EV, EventBus, TraceEvent, Tracer
from .manifest import RunManifest, git_describe
from .profiling import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    profiled,
    render_profile,
)
from .progress import ProgressReporter, quiet_from_env
from .prom import prom_name, render_prometheus
from .registry import MetricsRegistry
from .schema import SCHEMA_VERSION, check_schema_version
from .sketch import QuantileSketch, WindowedCounter
from .spans import (
    Span,
    SpanBuilder,
    build_spans,
    build_spans_from_file,
    critical_path_summary,
    render_critical_path,
    render_spans,
)
from .summarize import TraceSummary, render_summary, summarize_events, summarize_file
from .trace import JsonlTraceWriter, RunRecorder, read_trace

__all__ = [
    "EV",
    "EventBus",
    "TraceEvent",
    "Tracer",
    "MetricsRegistry",
    "QuantileSketch",
    "WindowedCounter",
    "render_prometheus",
    "prom_name",
    "Span",
    "SpanBuilder",
    "build_spans",
    "build_spans_from_file",
    "critical_path_summary",
    "render_spans",
    "render_critical_path",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "profiled",
    "render_profile",
    "JsonlTraceWriter",
    "RunRecorder",
    "read_trace",
    "RunManifest",
    "git_describe",
    "ProgressReporter",
    "quiet_from_env",
    "TraceSummary",
    "summarize_events",
    "summarize_file",
    "render_summary",
    "SCHEMA_VERSION",
    "check_schema_version",
    "run_bench",
    "load_bench",
    "validate_bench_payload",
    "bench_payload_from_pytest",
    "compare_payloads",
    "compare_files",
    "render_compare",
    "BenchComparison",
]
