"""repro.obs — structured tracing, metrics, and run manifests.

The observability layer for the whole simulation stack:

* :mod:`~repro.obs.events` — :class:`TraceEvent`, :class:`EventBus`, and
  the :class:`Tracer` handle components hold (zero-cost when absent);
* :mod:`~repro.obs.registry` — :class:`MetricsRegistry`, hierarchical
  names over the ``sim.monitor`` primitives with JSON-able snapshots;
* :mod:`~repro.obs.trace` — JSONL export and the per-run
  :class:`RunRecorder` harness;
* :mod:`~repro.obs.manifest` — :class:`RunManifest` (config, seeds,
  git describe, wall time, event counts) written next to result CSVs;
* :mod:`~repro.obs.progress` — :class:`ProgressReporter`, the bus-backed
  replacement for ad-hoc stderr progress prints;
* :mod:`~repro.obs.summarize` — offline trace analysis, also available as
  ``python -m repro.obs summarize <trace.jsonl>``.
"""

from .events import EV, EventBus, TraceEvent, Tracer
from .manifest import RunManifest, git_describe
from .progress import ProgressReporter, quiet_from_env
from .registry import MetricsRegistry
from .summarize import TraceSummary, render_summary, summarize_events, summarize_file
from .trace import JsonlTraceWriter, RunRecorder, read_trace

__all__ = [
    "EV",
    "EventBus",
    "TraceEvent",
    "Tracer",
    "MetricsRegistry",
    "JsonlTraceWriter",
    "RunRecorder",
    "read_trace",
    "RunManifest",
    "git_describe",
    "ProgressReporter",
    "quiet_from_env",
    "TraceSummary",
    "summarize_events",
    "summarize_file",
    "render_summary",
]
