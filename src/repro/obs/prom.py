"""Prometheus text exposition for a :class:`MetricsRegistry`.

Renders every registered monitor in the Prometheus text format
(version 0.0.4) so the live gateway's ``GET /metrics`` can be scraped by a
stock Prometheus/VictoriaMetrics agent.  The JSON snapshot stays the
default; the gateway selects this renderer by content negotiation.

Mapping of monitor kinds:

* ``Counter`` — one ``<name>_total{key="..."}`` sample per key;
* ``TimeSeries`` — ``<name>_count`` plus a ``<name>_last`` gauge;
* ``TimeWeighted`` — one gauge of the current value;
* ``QuantileSketch`` — a Prometheus *summary*: ``{quantile="0.5|0.9|0.99"}``
  samples plus ``_count`` and ``_sum``;
* ``WindowedCounter`` — ``<name>_rate`` gauge (per-second over the window)
  plus a lifetime ``<name>_total`` counter.

Dotted registry names become underscore-separated metric names under the
``repro_`` namespace; anything outside ``[a-zA-Z0-9_]`` is folded to ``_``.
"""

from __future__ import annotations

import math
import re
from typing import List, Optional

from ..sim.monitor import Counter, TimeSeries, TimeWeighted
from .registry import MetricsRegistry
from .sketch import QuantileSketch, WindowedCounter

__all__ = ["render_prometheus", "prom_name"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_ESCAPE = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})

#: summary quantiles exported for every sketch
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def prom_name(dotted: str) -> str:
    """``service.request_latency`` -> ``repro_service_request_latency``."""
    return "repro_" + _NAME_RE.sub("_", dotted)


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _sample(name: str, value: float, labels: str = "") -> str:
    return f"{name}{labels} {_fmt(value)}"


def render_prometheus(
    registry: MetricsRegistry, now: Optional[float] = None
) -> str:
    """One scrape body; ends with a trailing newline as the format requires."""
    lines: List[str] = []
    for dotted in registry.names():
        mon = registry.get(dotted)
        name = prom_name(dotted)
        if isinstance(mon, Counter):
            lines.append(f"# TYPE {name}_total counter")
            for key in sorted(mon.as_dict()):
                label = key.translate(_LABEL_ESCAPE)
                lines.append(
                    _sample(f"{name}_total", mon.get(key), f'{{key="{label}"}}')
                )
        elif isinstance(mon, QuantileSketch):
            lines.append(f"# TYPE {name} summary")
            for q in SUMMARY_QUANTILES:
                lines.append(
                    _sample(name, mon.quantile(q), f'{{quantile="{q}"}}')
                )
            lines.append(_sample(f"{name}_sum", mon.sum))
            lines.append(_sample(f"{name}_count", mon.n))
        elif isinstance(mon, WindowedCounter):
            lines.append(f"# TYPE {name}_rate gauge")
            lines.append(_sample(f"{name}_rate", mon.rate(now)))
            lines.append(f"# TYPE {name}_total counter")
            lines.append(_sample(f"{name}_total", mon.lifetime))
        elif isinstance(mon, TimeSeries):
            lines.append(f"# TYPE {name}_count counter")
            lines.append(_sample(f"{name}_count", len(mon)))
            if len(mon):
                lines.append(f"# TYPE {name}_last gauge")
                lines.append(_sample(f"{name}_last", mon.last()[1]))
        elif isinstance(mon, TimeWeighted):
            lines.append(f"# TYPE {name} gauge")
            lines.append(_sample(name, mon.current))
    return "\n".join(lines) + "\n"
