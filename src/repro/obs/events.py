"""Typed trace events and the bus that carries them.

The observability layer is built around three small pieces:

* :class:`TraceEvent` — an immutable ``(t, type, fields)`` record.  Event
  *types* are dotted strings from the taxonomy in :class:`EV` (documented
  in DESIGN.md), so consumers can filter by prefix (``hb.*``, ``mm.*``).
* :class:`EventBus` — a synchronous fan-out of events to subscribers
  (JSONL writers, counters, live progress displays).
* :class:`Tracer` — the producer-side handle components hold.  Producers
  keep the disabled path free: every instrumented call site guards with
  ``if tracer is not None`` (an attribute load plus a ``None`` test), so a
  simulation constructed without a tracer allocates no event objects and
  pays no measurable overhead.

Determinism matters here: a seeded simulation must emit a byte-identical
event stream on every run, so events carry *simulated* time only and the
bus delivers synchronously in emission order.  Wall-clock data belongs in
the run manifest, not the trace.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["EV", "TraceEvent", "EventBus", "Tracer"]


class EV:
    """The event-type taxonomy (dotted names, filterable by prefix).

    ``run.*``   harness lifecycle (one trace file may hold several runs)
    ``msg.*``   protocol messages, mirroring :class:`~repro.can.stats.MessageStats`
    ``can.*``   overlay topology changes (ground truth)
    ``hb.*``    heartbeat-engine observations (beliefs, detection, repair)
    ``mm.*``    matchmaker decisions
    ``grid.*``  grid-level churn consequences (crashes, lost/resubmitted jobs)
    ``recovery.*``  failure-recovery milestones (detection, degraded search)
    ``fault.*`` scripted fault injection (crash bursts, flash crowds)
    ``net.*``   network-channel verdicts (drops, late deliveries)
    ``service.*``  live-gateway lifecycle and ledger status transitions
    """

    # -- harness lifecycle
    RUN_START = "run.start"          # label, scheme?, config?
    RUN_END = "run.end"              # label
    PROGRESS = "run.progress"        # label, status, seconds?

    # -- protocol messages (one event per MessageStats.record call)
    MSG_SENT = "msg.sent"            # mtype, bytes, copies

    # -- overlay topology (ground truth changes)
    CAN_JOIN = "can.join"            # node
    CAN_JOIN_DEFERRED = "can.join_deferred"  # node (target zone in limbo)
    CAN_LEAVE = "can.leave"          # node (graceful)
    CAN_FAIL = "can.fail"            # node (silent crash)

    # -- heartbeat engine (belief-plane observations)
    HB_ROUND = "hb.round"            # round, population, broken_links
    HB_FAILURE_DETECTED = "hb.failure_detected"  # node, suspect
    HB_TAKEOVER = "hb.takeover"      # claimant, dead, informed
    HB_GAP_FOUND = "hb.gap_found"    # node, attempt (broken link found)
    HB_GAP_REPAIRED = "hb.gap_repaired"  # node (broken link repaired)

    # -- matchmaking
    MM_PUSH = "mm.push"              # job, frm, to, dim
    MM_PLACED = "mm.placed"          # job, node, hops, score?
    MM_UNPLACED = "mm.unplaced"      # job, hops

    # -- grid-level churn consequences
    GRID_CRASH = "grid.crash"        # node, jobs_lost
    GRID_JOIN = "grid.join"          # node
    GRID_JOB_SUBMIT = "grid.job_submit"  # job
    GRID_JOB_START = "grid.job_start"    # job, node
    GRID_JOB_FINISH = "grid.job_finish"  # job, node
    GRID_JOB_UNPLACED = "grid.job_unplaced"  # job (terminal: never placed)
    GRID_JOB_LOST = "grid.job_lost"  # job, node
    GRID_JOB_RESUBMIT = "grid.job_resubmit"  # job, attempt
    GRID_JOB_ABANDONED = "grid.job_abandoned"  # job, attempts

    # -- failure recovery (protocol-driven detection & resubmission)
    RECOVERY_DETECTED = "recovery.detected"  # node, latency, jobs
    RECOVERY_FALLBACK = "recovery.fallback"  # job, node, candidates
    FAULT_BURST = "fault.burst"      # count, correlated, victims
    FAULT_FLASH_CROWD = "fault.flash_crowd"  # count

    # -- network channel (only non-identity models emit these)
    NET_DROP = "net.drop"            # src, dst (loss, partition, or flap)
    NET_DELIVER_LATE = "net.deliver_late"  # src, dst, sent_at (> period)

    # -- live service (gateway + persistent ledger)
    SERVICE_START = "service.start"  # nodes, scheme, recovered
    SERVICE_STOP = "service.stop"
    SERVICE_LISTEN = "service.listen"  # host, port
    SERVICE_SUBMIT = "service.submit"  # job
    SERVICE_CANCEL = "service.cancel"  # job
    SERVICE_COMPLETE = "service.complete"  # job, node
    SERVICE_JOB_STATUS = "service.job_status"  # job, frm, to, node?
    SERVICE_ORPHAN = "service.orphan"  # job, node, vanished (restart recovery)


class TraceEvent:
    """One observation: simulated time, dotted type, and a field dict."""

    __slots__ = ("t", "etype", "fields")

    def __init__(self, t: float, etype: str, fields: Dict[str, Any]):
        self.t = t
        self.etype = etype
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        d = {"t": self.t, "type": self.etype}
        d.update(self.fields)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent(t={self.t:.6g}, {self.etype}, {self.fields!r})"


class EventBus:
    """Synchronous fan-out of :class:`TraceEvent` to subscribers."""

    def __init__(self) -> None:
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> Callable[[TraceEvent], None]:
        """Register ``fn`` to receive every published event; returns it."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        self._subscribers.remove(fn)

    def publish(self, event: TraceEvent) -> None:
        for fn in self._subscribers:
            fn(event)

    def __len__(self) -> int:
        return len(self._subscribers)


class Tracer:
    """Producer-side handle: builds events and pushes them onto a bus.

    Components store an ``Optional[Tracer]`` and guard emission with
    ``if self.tracer is not None:`` — the disabled path is just that test.
    ``counts`` tallies events by type as they are emitted, which both the
    run manifest and the overhead tests rely on.
    """

    __slots__ = ("bus", "counts")

    def __init__(self, bus: Optional[EventBus] = None):
        self.bus = bus if bus is not None else EventBus()
        self.counts: Dict[str, int] = {}

    def emit(self, t: float, etype: str, **fields: Any) -> None:
        """Publish one event at simulated time ``t``."""
        self.counts[etype] = self.counts.get(etype, 0) + 1
        self.bus.publish(TraceEvent(t, etype, fields))

    def total_events(self) -> int:
        return sum(self.counts.values())

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> Callable[[TraceEvent], None]:
        return self.bus.subscribe(fn)
