"""Waitable containers and resources for the simulation kernel.

These mirror SimPy's ``Store``/``Resource`` at the scale this project needs:

* :class:`FifoStore` — unbounded (or bounded) FIFO of items; ``get`` blocks a
  process until an item is available.
* :class:`PriorityStore` — like :class:`FifoStore` but delivers the smallest
  item first (items must be orderable; use tuples for keyed priority).
* :class:`Resource` — counted resource with FIFO grant order, used to model
  CE core pools in tests and examples.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, List, Optional, TypeVar
import heapq

from .core import Environment, Event, SimulationError

__all__ = ["FifoStore", "PriorityStore", "Resource"]

T = TypeVar("T")


class FifoStore(Generic[T]):
    """FIFO item store with blocking ``get`` and optional capacity bound."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[T]:
        """Snapshot of queued items (front first)."""
        return list(self._items)

    def put(self, item: T) -> Event:
        """Insert ``item``; the returned event fires once it is accepted."""
        ev = Event(self.env)
        ev._value = item  # stashed for deferred insertion
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append(ev)
        else:
            self._insert(item)
            ev.succeed(item)
        return ev

    def _insert(self, item: T) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event firing with the next item."""
        ev = Event(self.env)
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[T]:
        """Non-blocking pop; ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            pending = self._putters.popleft()
            self._insert(pending._value)
            pending.succeed(pending._value)


class PriorityStore(Generic[T]):
    """Store delivering the smallest item first (heap-ordered)."""

    def __init__(self, env: Environment):
        self.env = env
        self._heap: List[T] = []
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> List[T]:
        return sorted(self._heap)

    def put(self, item: T) -> Event:
        ev = Event(self.env)
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            heapq.heappush(self._heap, item)
        ev.succeed(item)
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        if self._heap:
            ev.succeed(heapq.heappop(self._heap))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[T]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)


class Resource:
    """Counted resource with FIFO grant order.

    ``request(n)`` returns an event that fires when ``n`` units have been
    granted; ``release(n)`` returns them.  Grants are strictly FIFO, so a
    large request at the head blocks smaller later ones (head-of-line), which
    matches the FIFO job queues in the paper's node model.
    """

    def __init__(self, env: Environment, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self, amount: int = 1) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.capacity:
            raise SimulationError(
                f"request of {amount} exceeds capacity {self.capacity}"
            )
        ev = Event(self.env)
        ev._value = amount
        if not self._waiters and self.available >= amount:
            self.in_use += amount
            ev.succeed(amount)
        else:
            self._waiters.append(ev)
        return ev

    def release(self, amount: int = 1) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.in_use:
            raise SimulationError(
                f"release of {amount} exceeds in-use {self.in_use}"
            )
        self.in_use -= amount
        while self._waiters and self.available >= self._waiters[0]._value:
            ev = self._waiters.popleft()
            self.in_use += ev._value
            ev.succeed(ev._value)
