"""The clock/scheduler seam: protocol code runs on *a* clock, not *the* kernel.

Historically every time-driven component held a full DES
:class:`~repro.sim.core.Environment`.  The only things any of them actually
use are three operations — read the current time, run a callback after a
delay, run a callback periodically — so this module names that contract:

* :class:`Clock` — the abstract seam.  ``now`` is a property (matching
  ``Environment.now``), :meth:`schedule_callback` mirrors
  ``Environment.schedule_callback`` but returns a cancelable handle, and
  :meth:`call_every` builds a periodic callback out of one-shot scheduling,
  so backends only implement the two primitives.
* :class:`SimClock` — the DES backend: a thin adapter over an
  :class:`~repro.sim.core.Environment` (virtual time, deterministic order).
* The wall-clock backend lives in :mod:`repro.service.aclock`
  (:class:`~repro.service.aclock.AsyncioClock`, with a time-dilation
  factor); this module stays free of asyncio so the simulation kernel and
  every protocol module built on the seam import nothing event-loop-shaped.

Components written against :class:`Clock` (the heartbeat driver, the
retry/resubmission loop, :class:`~repro.model.node.GridNode`'s completion
scheduling) run unchanged under both backends — that single seam is what
lets the same protocol code power the batch simulator and the live
:mod:`repro.service` gateway.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional

__all__ = ["Clock", "CallbackHandle", "SimClock"]


class CallbackHandle:
    """Cancelable handle for a scheduled (or periodic) callback.

    Cancellation is cooperative: backends that cannot unschedule (the DES
    kernel's event queue is append-only) simply skip the callback when it
    fires.  ``cancel`` is idempotent.
    """

    __slots__ = ("_cancelled", "_cancel_fn")

    def __init__(self, cancel_fn: Optional[Callable[[], None]] = None):
        self._cancelled = False
        self._cancel_fn: Optional[Callable[[], None]] = cancel_fn

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        fn, self._cancel_fn = self._cancel_fn, None
        if fn is not None:
            fn()

    def _chain(self, cancel_fn: Optional[Callable[[], None]]) -> None:
        """Point the handle at the next underlying one-shot (periodic use)."""
        self._cancel_fn = cancel_fn


class Clock(abc.ABC):
    """What time-driven protocol code needs from its host: nothing more.

    The contract is deliberately shaped like the :class:`Environment`
    surface the code already used (``now`` property, ``schedule_callback``),
    so adopting the seam is a type change, not a rewrite.
    """

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in *model* seconds (virtual or dilated wall time)."""

    @abc.abstractmethod
    def schedule_callback(
        self, delay: float, fn: Callable[[], Any]
    ) -> CallbackHandle:
        """Run ``fn()`` once, ``delay`` model seconds from now."""

    def call_every(
        self,
        period: float,
        fn: Callable[[], Any],
        start_delay: Optional[float] = None,
    ) -> CallbackHandle:
        """Run ``fn()`` every ``period`` model seconds until cancelled.

        The first firing happens after ``start_delay`` (default: one full
        period).  Built from :meth:`schedule_callback`, so every backend
        gets periodic callbacks for free and they behave identically.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        handle = CallbackHandle()

        def tick() -> None:
            if handle.cancelled:
                return
            fn()
            if not handle.cancelled:
                inner = self.schedule_callback(period, tick)
                handle._chain(inner.cancel)

        first = self.schedule_callback(
            period if start_delay is None else start_delay, tick
        )
        handle._chain(first.cancel)
        return handle


class SimClock(Clock):
    """The DES backend: virtual time from an :class:`Environment`."""

    __slots__ = ("env",)

    def __init__(self, env) -> None:
        self.env = env

    @property
    def now(self) -> float:
        return self.env.now

    def schedule_callback(
        self, delay: float, fn: Callable[[], Any]
    ) -> CallbackHandle:
        handle = CallbackHandle()

        def guarded() -> None:
            if not handle.cancelled:
                fn()

        self.env.schedule_callback(delay, guarded)
        return handle
