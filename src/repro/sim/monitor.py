"""Measurement helpers: counters, time series, and time-weighted statistics.

The experiment harness records three kinds of data:

* event counts (messages sent, jobs completed) — :class:`Counter`;
* sampled time series (broken links over time) — :class:`TimeSeries`;
* durations of piecewise-constant quantities (queue lengths, utilization)
  — :class:`TimeWeighted`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["Counter", "TimeSeries", "TimeWeighted"]


class Counter:
    """A named bag of monotonically increasing counts."""

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, key: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("Counter.add amount must be non-negative")
        self._counts[key] = self._counts.get(key, 0.0) + amount

    def get(self, key: str) -> float:
        return self._counts.get(key, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def total(self) -> float:
        return sum(self._counts.values())

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts!r})"


class TimeSeries:
    """Append-only (time, value) samples with numpy export."""

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def rows(self) -> Sequence[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def last(self) -> Tuple[float, float]:
        if not self._times:
            raise IndexError("empty time series")
        return self._times[-1], self._values[-1]

    def window_mean(self, start: float, end: float) -> float:
        """Arithmetic mean of samples with start <= t <= end."""
        if end < start:
            raise ValueError("end before start")
        t = self.times
        mask = (t >= start) & (t <= end)
        if not mask.any():
            raise ValueError(f"no samples in [{start}, {end}]")
        return float(self.values[mask].mean())


class TimeWeighted:
    """Time-weighted mean of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the integral of the old
    value over the elapsed interval accumulates automatically.
    """

    def __init__(self, time: float = 0.0, value: float = 0.0):
        self._last_time = float(time)
        self._value = float(value)
        self._area = 0.0
        self._start = float(time)

    @property
    def current(self) -> float:
        return self._value

    def update(self, time: float, value: float) -> None:
        if time < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._value * (time - self._last_time)
        self._last_time = float(time)
        self._value = float(value)

    def mean(self, now: float) -> float:
        """Time-weighted mean from construction until ``now``."""
        if now < self._last_time:
            raise ValueError("time went backwards")
        span = now - self._start
        if span <= 0:
            return self._value
        return (self._area + self._value * (now - self._last_time)) / span
