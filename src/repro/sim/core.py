"""Discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: an
:class:`Environment` owns a virtual clock and a priority queue of scheduled
events; generator-based :class:`Process` coroutines drive the model by
yielding events (most commonly :class:`Timeout`).

The kernel is deliberately deterministic: events scheduled for the same
simulated time fire in (priority, insertion-order) sequence, so a seeded
simulation replays identically.

Example
-------
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "AllOf",
    "AnyOf",
]

# Event priorities: lower fires first among events at the same time.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Base class for kernel-level errors."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A condition that may be *triggered* at some simulated time.

    Processes wait on events by yielding them.  Callbacks attached via
    :attr:`callbacks` run when the event fires.  An event fires at most
    once; its :attr:`value` is delivered to every waiter.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered: bool = False
        self._processed: bool = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``False`` when the event carries a failure (an exception)."""
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as a failure carrying ``exception``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority)
        return self

    def _fire(self) -> None:
        """Run callbacks.  Called by the environment's main loop."""
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:.6g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal: kicks off a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._triggered = True
        env._schedule(self, URGENT)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator may yield any :class:`Event`.  When that event fires, the
    process resumes with the event's value (or the event's exception is
    thrown into the generator if it failed).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already terminated")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._triggered = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT)
        # Detach from the event we were waiting on so the stale wake-up
        # does not resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        target = self._generator.throw(event._value)
                except StopIteration as stop:
                    if not self._triggered:
                        self.succeed(stop.value)
                    return
                except BaseException as exc:
                    if not self._triggered:
                        self.fail(exc)
                        return
                    raise

                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                    event = Event(self.env)
                    event._ok = False
                    event._value = exc
                    continue
                if target._processed:
                    # Already fired: resume immediately with its value.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                return
        finally:
            self.env._active_process = None


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events: Tuple[Event, ...] = tuple(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events belong to different environments")
        self._pending = 0
        for ev in self._events:
            if ev._processed:
                self._check(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._check)
        if not self._triggered and self._done():
            self.succeed(self._collect())

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._done():
            self.succeed(self._collect())

    def _done(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> Any:
        return {ev: ev._value for ev in self._events if ev._processed and ev._ok}


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _done(self) -> bool:
        return all(ev._processed for ev in self._events)


class AnyOf(_Condition):
    """Fires when at least one constituent event has fired."""

    __slots__ = ()

    def _done(self) -> bool:
        return any(ev._processed for ev in self._events)


class Environment:
    """The simulation clock plus the pending-event queue.

    ``tracer`` is an optional :class:`repro.obs.Tracer`.  The kernel never
    emits on it itself — it is the well-known place components sharing an
    environment find the run's tracer (``env.tracer``), and it stays
    ``None`` unless observability was requested, so instrumented call
    sites cost one attribute test on the default path.

    ``profiler`` is an optional :class:`repro.obs.Profiler`.  When set,
    :meth:`run` times every event dispatch under a per-event-type scope
    (``sim.dispatch.Timeout``, ``sim.dispatch.Process``, ...); when
    ``None`` the run loop is byte-for-byte the historical tight loop.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        tracer: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self.tracer = tracer
        self.profiler = profiler

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    # -- public factory helpers -------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Launch a process coroutine."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def schedule_callback(
        self, delay: float, fn: Callable[[], Any], priority: int = NORMAL
    ) -> Event:
        """Run ``fn()`` after ``delay``; lighter-weight than a process."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        ev = Event(self)
        ev._triggered = True
        ev.callbacks.append(lambda _e: fn())
        self._schedule(ev, priority, delay)
        return ev

    # -- execution ---------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        self._now = when
        event._fire()

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the queue drains or ``until`` (exclusive of later events).

        When ``until`` is given the clock is advanced exactly to it, so a
        subsequent ``run`` continues from there.
        """
        if until is not None:
            if until < self._now:
                raise ValueError(
                    f"until={until!r} lies in the past (now={self._now!r})"
                )
            limit = float(until)
        else:
            limit = float("inf")
        profiler = self.profiler
        try:
            if profiler is None or not profiler.enabled:
                # The default (and benchmark-grade) tight loop.
                while self._queue and self._queue[0][0] <= limit:
                    self.step()
            else:
                self._run_profiled(limit, profiler)
        except StopSimulation as stop:
            return stop.value
        if until is not None:
            self._now = limit
        return None

    def _run_profiled(self, limit: float, profiler: Any) -> None:
        """The run loop with per-event-type dispatch timing.

        Scope names are cached per event class: the profiled loop adds two
        profiler calls and two dict probes per event, nothing else.
        """
        queue = self._queue
        names: dict = {}
        while queue and queue[0][0] <= limit:
            when, _prio, _eid, event = heapq.heappop(queue)
            self._now = when
            cls = event.__class__
            name = names.get(cls)
            if name is None:
                name = names[cls] = "sim.dispatch." + cls.__name__
            profiler.push(name)
            try:
                event._fire()
            finally:
                profiler.pop()

    def stop(self, value: Any = None) -> None:
        """Halt :meth:`run` from inside a callback or process."""
        raise StopSimulation(value)
