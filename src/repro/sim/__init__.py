"""Discrete-event simulation kernel (SimPy-style, written from scratch)."""

from .clock import CallbackHandle, Clock, SimClock
from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .monitor import Counter, TimeSeries, TimeWeighted
from .queues import FifoStore, PriorityStore, Resource
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "CallbackHandle",
    "Clock",
    "SimClock",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "StopSimulation",
    "Timeout",
    "Counter",
    "TimeSeries",
    "TimeWeighted",
    "FifoStore",
    "PriorityStore",
    "Resource",
    "RngRegistry",
]
