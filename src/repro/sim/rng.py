"""Deterministic random-number management.

A simulation draws randomness for several independent purposes (workload
generation, virtual-dimension coordinates, probabilistic job pushing, churn
event timing).  Using a single generator couples them: adding one draw in the
workload shifts every later pushing decision.  :class:`RngRegistry` instead
derives an independent, reproducible :class:`numpy.random.Generator` per
named *stream* from a master seed, so experiments stay replayable and
components stay decoupled.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Named, independently-seeded random streams derived from one seed."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed is derived by hashing (master seed, name) through
        :class:`numpy.random.SeedSequence`, so distinct names yield
        statistically independent streams and the mapping is stable across
        runs and platforms.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            entropy = [self._seed] + [ord(c) for c in name]
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))
            self._streams[name] = gen
        return gen

    def spawn(self, salt: int) -> "RngRegistry":
        """Derive a child registry (e.g. per experiment repetition)."""
        return RngRegistry(self._seed * 1_000_003 + int(salt))

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
