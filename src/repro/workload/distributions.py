"""Sampling primitives for synthetic grid workloads.

The paper's workload is summarised qualitatively: "a high percentage of the
nodes and jobs have relatively low resource capabilities and requirements,
and a low percentage ... have high resource capabilities and requirements,
which is a common node capability distribution in grid environments"
(Section V-A).  :class:`Tiered` encodes exactly that: weighted tiers, each a
uniform range, with the weights front-loaded on the low tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Tiered", "WeightedChoice"]


@dataclass(frozen=True)
class Tiered:
    """Mixture of uniform ranges: pick a tier by weight, then a value."""

    tiers: Tuple[Tuple[float, float, float], ...]  # (weight, low, high)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("at least one tier required")
        for w, lo, hi in self.tiers:
            if w <= 0:
                raise ValueError("tier weights must be positive")
            if hi < lo:
                raise ValueError(f"tier range inverted: [{lo}, {hi}]")

    def sample(self, rng: np.random.Generator) -> float:
        weights = np.array([t[0] for t in self.tiers])
        idx = rng.choice(len(self.tiers), p=weights / weights.sum())
        _, lo, hi = self.tiers[idx]
        return float(rng.uniform(lo, hi)) if hi > lo else lo

    @property
    def max_value(self) -> float:
        return max(t[2] for t in self.tiers)

    @property
    def min_value(self) -> float:
        return min(t[1] for t in self.tiers)


@dataclass(frozen=True)
class WeightedChoice:
    """Discrete weighted choice over explicit values (core counts etc.)."""

    values: Tuple[float, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ValueError("values and weights must align")
        if not self.values:
            raise ValueError("empty choice set")
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        w = np.asarray(self.weights, dtype=float)
        idx = rng.choice(len(self.values), p=w / w.sum())
        return self.values[idx]

    @property
    def max_value(self) -> float:
        return max(self.values)
