"""Heterogeneous grid-node generation (paper, Section V-A).

"Each node potentially has a single-/multi-core CPU (1, 2, 4 or 8 cores),
and may include up to two different types of GPU.  The resource
characteristics for a CPU are CPU clock rate, memory size, disk space, and
number of cores.  Each GPU has three characteristics: GPU clock rate, GPU
memory, and number of GPU cores."

GPU slots are *types*: slot ``gpu0`` and ``gpu1`` model two distinct GPU
product families, and a node owns at most one CE per slot.  Capability
values are tier-skewed: mostly low-end, a few high-end machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..model.ce import CESpec, CPU_SLOT, gpu_slot
from ..model.node import NodeSpec
from .distributions import Tiered, WeightedChoice

__all__ = ["NodeDistribution", "generate_node_specs"]


@dataclass(frozen=True)
class NodeDistribution:
    """Tunable capability distributions for node generation."""

    cpu_cores: WeightedChoice = WeightedChoice(
        values=(1, 2, 4, 8), weights=(0.35, 0.30, 0.22, 0.13)
    )
    cpu_clock: Tiered = Tiered(
        tiers=((0.60, 0.8, 1.5), (0.30, 1.5, 2.5), (0.10, 2.5, 4.0))
    )
    memory_gb: WeightedChoice = WeightedChoice(
        values=(2, 4, 8, 16, 32), weights=(0.25, 0.30, 0.25, 0.15, 0.05)
    )
    disk_gb: Tiered = Tiered(
        tiers=((0.55, 40, 250), (0.35, 250, 1000), (0.10, 1000, 2000))
    )
    #: probability the node owns a CE in each successive GPU slot.  The
    #: second (and later) entries are conditional on nothing — each slot is
    #: drawn independently, so some nodes own both GPU types.
    gpu_presence: Tuple[float, ...] = (0.45, 0.25, 0.15)
    gpu_clock: Tiered = Tiered(
        tiers=((0.55, 0.5, 1.2), (0.35, 1.2, 2.2), (0.10, 2.2, 3.5))
    )
    gpu_memory_gb: WeightedChoice = WeightedChoice(
        values=(1, 2, 4, 6), weights=(0.35, 0.35, 0.20, 0.10)
    )
    gpu_cores: WeightedChoice = WeightedChoice(
        values=(128, 240, 448, 512), weights=(0.40, 0.30, 0.20, 0.10)
    )

    def presence(self, slot_index: int) -> float:
        if slot_index < len(self.gpu_presence):
            return self.gpu_presence[slot_index]
        return self.gpu_presence[-1]


def generate_node_specs(
    count: int,
    gpu_slots: int,
    rng: np.random.Generator,
    dist: NodeDistribution | None = None,
    first_id: int = 0,
) -> List[NodeSpec]:
    """Draw ``count`` heterogeneous node specs with up to ``gpu_slots`` GPUs."""
    if count <= 0:
        raise ValueError("count must be positive")
    if gpu_slots < 0:
        raise ValueError("gpu_slots must be non-negative")
    dist = dist or NodeDistribution()
    specs: List[NodeSpec] = []
    for i in range(count):
        ces = [
            CESpec(
                slot=CPU_SLOT,
                clock=dist.cpu_clock.sample(rng),
                memory=dist.memory_gb.sample(rng),
                disk=dist.disk_gb.sample(rng),
                cores=int(dist.cpu_cores.sample(rng)),
                dedicated=False,
            )
        ]
        for g in range(gpu_slots):
            if rng.random() < dist.presence(g):
                ces.append(
                    CESpec(
                        slot=gpu_slot(g),
                        clock=dist.gpu_clock.sample(rng),
                        memory=dist.gpu_memory_gb.sample(rng),
                        cores=int(dist.gpu_cores.sample(rng)),
                        dedicated=True,
                    )
                )
        specs.append(NodeSpec(node_id=first_id + i, ces=tuple(ces)))
    return specs
