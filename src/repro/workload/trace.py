"""Workload traces: (de)serialise job streams to JSONL.

A recorded workload is the portable form of what :func:`generate_jobs`
produces — one JSON object per job (submit time, base duration, per-slot
requirements) behind a schema header.  Two consumers rely on the
round-trip being exact:

* the service's :mod:`~repro.service.ledger` persists each submitted job's
  spec this way, so a restarted gateway can rebuild the
  :class:`~repro.model.job.Job` objects it owes executions for;
* ``python -m repro.service record / replay`` streams a recorded fig5-style
  workload through a live gateway.

``job_id`` round-trips too: replaying a trace or reloading a ledger must
not re-number jobs, or cross-restart accounting would double-count.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from ..model.job import CERequirement, Job
from ..obs.schema import SCHEMA_VERSION, check_schema_version

__all__ = ["job_to_dict", "job_from_dict", "dump_jobs", "load_jobs"]

#: first line of every workload trace file
WORKLOAD_HEADER = {"schema_version": SCHEMA_VERSION, "type": "workload.header"}


def job_to_dict(job: Job) -> Dict[str, Any]:
    """The job's immutable spec (not its lifecycle timestamps)."""
    return {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "base_duration": job.base_duration,
        "requirements": {
            slot: {
                "cores": req.cores,
                "clock": req.clock,
                "memory": req.memory,
                "disk": req.disk,
            }
            for slot, req in sorted(job.requirements.items())
        },
    }


def job_from_dict(data: Dict[str, Any], job_id: Optional[int] = None) -> Job:
    """Rebuild a :class:`Job`; ``job_id`` overrides the recorded id."""
    reqs = {
        slot: CERequirement(
            cores=int(fields.get("cores", 1)),
            clock=float(fields.get("clock", 0.0)),
            memory=float(fields.get("memory", 0.0)),
            disk=float(fields.get("disk", 0.0)),
        )
        for slot, fields in data["requirements"].items()
    }
    recorded = data.get("job_id")
    return Job(
        requirements=reqs,
        base_duration=float(data["base_duration"]),
        submit_time=float(data.get("submit_time", 0.0)),
        job_id=int(recorded if job_id is None else job_id),
    )


def dump_jobs(jobs: Iterable[Job], path: str) -> int:
    """Write a workload trace; returns the number of jobs written."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    count = 0
    with open(path, "w") as fh:
        fh.write(
            json.dumps(WORKLOAD_HEADER, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        for job in jobs:
            fh.write(
                json.dumps(
                    job_to_dict(job), sort_keys=True, separators=(",", ":")
                )
                + "\n"
            )
            count += 1
    return count


def load_jobs(path: str) -> List[Job]:
    """Read a workload trace back into :class:`Job` objects, in file order."""
    jobs: List[Job] = []
    first = True
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if first:
                first = False
                if record.get("type") == "workload.header":
                    check_schema_version(
                        record.get("schema_version"), f"workload {path!r}"
                    )
                    continue
            jobs.append(job_from_dict(record))
    return jobs
