"""Synthetic job-stream generation (paper, Section V-A).

Jobs arrive as a Poisson process ("the interval between individual job
submissions follows a Poisson distribution") with a configurable mean
inter-arrival time, and run for an expected hour, uniform in [0.5 h, 1.5 h]
at nominal clock speed.

The *job constraint ratio* is "the probability that each resource type for
a job is specified ... any of them may be omitted (meaning any amount of
that resource is acceptable)".  We realise it in two stages: first the job
picks which CE slots it actually uses (every job uses the CPU; GPU jobs
additionally use one GPU slot, their dominant CE); then each capability
attribute of a used slot is specified with probability equal to the
constraint ratio.  Requirement magnitudes are tier-skewed low, like node
capabilities.

Every generated job is guaranteed to have at least one capable node in the
supplied population (re-sampled otherwise), since an unsatisfiable job says
nothing about load balancing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..model.ce import CPU_SLOT, gpu_slot
from ..model.job import CERequirement, Job
from ..model.node import NodeSpec
from .distributions import Tiered, WeightedChoice

__all__ = ["JobDistribution", "generate_jobs", "arrival_times"]


@dataclass(frozen=True)
class JobDistribution:
    """Tunable requirement distributions for job generation."""

    #: fraction of jobs whose dominant CE is a GPU
    gpu_job_fraction: float = 0.45
    #: relative preference for each GPU slot among GPU jobs
    gpu_slot_weights: Tuple[float, ...] = (0.6, 0.4, 0.2)
    constraint_ratio: float = 0.6
    #: a GPU job also requires a *second* GPU type with probability
    #: ``secondary_gpu_factor * constraint_ratio``: raising the constraint
    #: ratio specifies more resource types per job (paper, Section V-A),
    #: which shrinks the set of eligible nodes — only multi-GPU machines
    #: can host such jobs — and makes matchmaking genuinely harder
    secondary_gpu_factor: float = 0.25
    cpu_req_cores: WeightedChoice = WeightedChoice(
        values=(1, 2, 4), weights=(0.60, 0.28, 0.12)
    )
    cpu_req_clock: Tiered = Tiered(
        tiers=((0.70, 0.8, 1.4), (0.25, 1.4, 2.2), (0.05, 2.2, 3.0))
    )
    cpu_req_memory: WeightedChoice = WeightedChoice(
        values=(1, 2, 4, 8), weights=(0.40, 0.32, 0.20, 0.08)
    )
    cpu_req_disk: Tiered = Tiered(
        tiers=((0.70, 1, 100), (0.25, 100, 500), (0.05, 500, 900))
    )
    gpu_req_clock: Tiered = Tiered(
        tiers=((0.70, 0.4, 1.0), (0.25, 1.0, 1.8), (0.05, 1.8, 2.6))
    )
    gpu_req_memory: WeightedChoice = WeightedChoice(
        values=(1, 2, 4), weights=(0.55, 0.30, 0.15)
    )
    gpu_req_cores: WeightedChoice = WeightedChoice(
        values=(64, 128, 240), weights=(0.55, 0.30, 0.15)
    )
    duration_range: Tuple[float, float] = (1800.0, 5400.0)  # 0.5 h .. 1.5 h

    def __post_init__(self) -> None:
        if not 0.0 <= self.gpu_job_fraction <= 1.0:
            raise ValueError("gpu_job_fraction must be a probability")
        if not 0.0 <= self.constraint_ratio <= 1.0:
            raise ValueError("constraint_ratio must be a probability")
        lo, hi = self.duration_range
        if lo <= 0 or hi < lo:
            raise ValueError("invalid duration range")

    def with_constraint_ratio(self, ratio: float) -> "JobDistribution":
        from dataclasses import replace

        return replace(self, constraint_ratio=ratio)


def arrival_times(
    count: int, mean_interarrival: float, rng: np.random.Generator
) -> np.ndarray:
    """Cumulative Poisson-process arrival times for ``count`` jobs."""
    if count <= 0:
        raise ValueError("count must be positive")
    if mean_interarrival <= 0:
        raise ValueError("mean inter-arrival must be positive")
    gaps = rng.exponential(mean_interarrival, size=count)
    return np.cumsum(gaps)


def _maybe(rng: np.random.Generator, ratio: float) -> bool:
    return rng.random() < ratio

def _cpu_requirement(
    dist: JobDistribution, rng: np.random.Generator, secondary: bool
) -> CERequirement:
    ratio = dist.constraint_ratio
    if secondary:
        # A GPU job's CPU side only drives the device: one core, thresholds
        # mostly unconstrained.
        return CERequirement(
            cores=1,
            clock=dist.cpu_req_clock.sample(rng) if _maybe(rng, ratio * 0.3) else 0.0,
            memory=(
                dist.cpu_req_memory.sample(rng) if _maybe(rng, ratio * 0.3) else 0.0
            ),
        )
    return CERequirement(
        cores=int(dist.cpu_req_cores.sample(rng)) if _maybe(rng, ratio) else 1,
        clock=dist.cpu_req_clock.sample(rng) if _maybe(rng, ratio) else 0.0,
        memory=dist.cpu_req_memory.sample(rng) if _maybe(rng, ratio) else 0.0,
        disk=dist.cpu_req_disk.sample(rng) if _maybe(rng, ratio) else 0.0,
    )


def _gpu_requirement(
    dist: JobDistribution, rng: np.random.Generator
) -> CERequirement:
    ratio = dist.constraint_ratio
    return CERequirement(
        cores=int(dist.gpu_req_cores.sample(rng)) if _maybe(rng, ratio) else 1,
        clock=dist.gpu_req_clock.sample(rng) if _maybe(rng, ratio) else 0.0,
        memory=dist.gpu_req_memory.sample(rng) if _maybe(rng, ratio) else 0.0,
    )


def _sample_requirements(
    dist: JobDistribution,
    gpu_slots: int,
    rng: np.random.Generator,
) -> Dict[str, CERequirement]:
    is_gpu_job = gpu_slots > 0 and rng.random() < dist.gpu_job_fraction
    if not is_gpu_job:
        return {CPU_SLOT: _cpu_requirement(dist, rng, secondary=False)}
    weights = np.asarray(dist.gpu_slot_weights[:gpu_slots], dtype=float)
    slot_idx = int(rng.choice(gpu_slots, p=weights / weights.sum()))
    reqs = {
        gpu_slot(slot_idx): _gpu_requirement(dist, rng),
        CPU_SLOT: _cpu_requirement(dist, rng, secondary=True),
    }
    # More-specified jobs may demand a second GPU type as well, pinning
    # them to the (few) multi-GPU machines.
    second_prob = dist.secondary_gpu_factor * dist.constraint_ratio
    if gpu_slots > 1 and rng.random() < second_prob:
        others = [g for g in range(gpu_slots) if g != slot_idx]
        w2 = np.asarray([dist.gpu_slot_weights[g] for g in others], dtype=float)
        second = others[int(rng.choice(len(others), p=w2 / w2.sum()))]
        reqs[gpu_slot(second)] = _gpu_requirement(dist, rng)
    return reqs


def generate_jobs(
    count: int,
    nodes: Sequence[NodeSpec],
    gpu_slots: int,
    mean_interarrival: float,
    rng: np.random.Generator,
    dist: Optional[JobDistribution] = None,
    max_resample: int = 50,
) -> List[Job]:
    """Draw a satisfiable Poisson job stream against ``nodes``."""
    dist = dist or JobDistribution()
    times = arrival_times(count, mean_interarrival, rng)
    jobs: List[Job] = []
    for t in times:
        for attempt in range(max_resample):
            reqs = _sample_requirements(dist, gpu_slots, rng)
            if _satisfiable(reqs, nodes):
                break
        else:
            raise RuntimeError(
                "could not draw a satisfiable job; node population too weak "
                "for the requirement distribution"
            )
        duration = float(rng.uniform(*dist.duration_range))
        jobs.append(Job(requirements=reqs, base_duration=duration, submit_time=float(t)))
    return jobs


def _satisfiable(reqs: Dict[str, CERequirement], nodes: Sequence[NodeSpec]) -> bool:
    for spec in nodes:
        if _node_satisfies(spec, reqs):
            return True
    return False


def _node_satisfies(spec: NodeSpec, reqs: Dict[str, CERequirement]) -> bool:
    for slot, req in reqs.items():
        ce = spec.ce_spec(slot)
        if ce is None:
            return False
        if (
            ce.clock < req.clock
            or ce.memory < req.memory
            or ce.disk < req.disk
            or ce.cores < req.cores
        ):
            return False
    return True
