"""Synthetic workload generation: nodes, jobs, arrival processes, presets."""

from .distributions import Tiered, WeightedChoice
from .jobs import JobDistribution, arrival_times, generate_jobs
from .nodes import NodeDistribution, generate_node_specs
from .presets import PAPER_LOAD, SMALL_LOAD, TINY_LOAD, WorkloadPreset
from .trace import dump_jobs, job_from_dict, job_to_dict, load_jobs

__all__ = [
    "Tiered",
    "WeightedChoice",
    "JobDistribution",
    "arrival_times",
    "generate_jobs",
    "NodeDistribution",
    "generate_node_specs",
    "PAPER_LOAD",
    "SMALL_LOAD",
    "TINY_LOAD",
    "WorkloadPreset",
    "dump_jobs",
    "job_from_dict",
    "job_to_dict",
    "load_jobs",
]
