"""Named workload presets: the paper's scenarios plus scaled-down variants.

``paper_*`` presets match Section V ("1000 heterogeneous nodes, and 20,000
jobs ... executed on an 11-dimension CAN").  The ``small_*`` presets keep
the same structure at a fraction of the size, for tests, examples and
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["WorkloadPreset", "PAPER_LOAD", "SMALL_LOAD", "TINY_LOAD"]


@dataclass(frozen=True)
class WorkloadPreset:
    """Size parameters of a matchmaking experiment."""

    name: str
    nodes: int
    jobs: int
    gpu_slots: int  # 2 -> the paper's 11-dimensional CAN
    mean_interarrival: float  # seconds
    constraint_ratio: float
    heartbeat_period: float = 120.0
    seed: int = 20110926  # CLUSTER 2011 conference date

    def __post_init__(self) -> None:
        if min(self.nodes, self.jobs) <= 0:
            raise ValueError("nodes and jobs must be positive")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not 0 <= self.constraint_ratio <= 1:
            raise ValueError("constraint_ratio must be a probability")

    def with_interarrival(self, seconds: float) -> "WorkloadPreset":
        return replace(self, mean_interarrival=seconds)

    def with_constraint_ratio(self, ratio: float) -> "WorkloadPreset":
        return replace(self, constraint_ratio=ratio)

    def with_seed(self, seed: int) -> "WorkloadPreset":
        return replace(self, seed=seed)


#: the paper's load-balancing scenario (Figures 5 and 6 base configuration)
PAPER_LOAD = WorkloadPreset(
    name="paper",
    nodes=1000,
    jobs=20_000,
    gpu_slots=2,
    mean_interarrival=3.0,
    constraint_ratio=0.6,
)

#: a few-minute variant preserving the load level (same arrival/nodes ratio)
SMALL_LOAD = WorkloadPreset(
    name="small",
    nodes=200,
    jobs=3_000,
    gpu_slots=2,
    mean_interarrival=15.0,
    constraint_ratio=0.6,
)

#: seconds-scale variant for unit tests
TINY_LOAD = WorkloadPreset(
    name="tiny",
    nodes=40,
    jobs=200,
    gpu_slots=2,
    mean_interarrival=75.0,
    constraint_ratio=0.6,
)
