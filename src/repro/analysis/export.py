"""CSV export for experiment results (stdlib csv, results/ directory)."""

from __future__ import annotations

import csv
import os
from typing import Iterable, Sequence

__all__ = ["write_csv", "results_dir"]


def results_dir(base: str = "results") -> str:
    """Ensure and return the results directory."""
    os.makedirs(base, exist_ok=True)
    return base


def write_csv(
    path: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Write rows to ``path`` (parent directories created)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError("row width does not match headers")
            writer.writerow(row)
    return path
