"""CSV/JSON export for experiment results (stdlib only, ``results/`` dir).

All writers are *atomic*: content is staged in a temp file in the target
directory and ``os.replace``d into place, so an interrupted experiment can
never leave a truncated ``results/*.csv`` (or manifest) behind — readers
see either the previous complete file or the new complete file.
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from typing import Any, Iterable, Sequence

__all__ = ["write_csv", "write_json", "atomic_write_text", "results_dir"]


def results_dir(base: str = "results") -> str:
    """Ensure and return the results directory."""
    os.makedirs(base, exist_ok=True)
    return base


def atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    Parent directories are created.  The temp file lives in the same
    directory as the target so the final ``os.replace`` never crosses a
    filesystem boundary.
    """
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=parent, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", newline="") as fh:
            fh.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def write_csv(
    path: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Atomically write rows to ``path`` (parent directories created)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        writer.writerow(row)
    return atomic_write_text(path, buf.getvalue())


def write_json(path: str, payload: Any, indent: int = 2) -> str:
    """Atomically write ``payload`` as pretty-printed, key-sorted JSON."""
    text = json.dumps(payload, indent=indent, sort_keys=True, default=str) + "\n"
    return atomic_write_text(path, text)
