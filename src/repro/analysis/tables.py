"""Aligned text tables for experiment reports (no external deps)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table"]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (abs(value) < 1e-3 and value != 0):
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width table with a header rule."""
    rendered: List[List[str]] = [[_fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
