"""ASCII line plots — matplotlib is unavailable offline, and the figures
only need to show *shape* (who wins, growth order, plateaus)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#%@&"


def ascii_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    xlabel: str = "",
    ylabel: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Plot named (x, y) series on a shared character canvas.

    Each series gets a marker from ``oxh+*...``; a legend line maps markers
    back to names.  Points landing on the same cell keep the first marker.
    """
    if not series:
        raise ValueError("no series to plot")
    xs_all = np.concatenate([np.asarray(x, float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    xs_all = xs_all[np.isfinite(xs_all)]
    ys_all = ys_all[np.isfinite(ys_all)]
    if xs_all.size == 0 or ys_all.size == 0:
        raise ValueError("series are empty")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo = float(ys_all.min()) if y_min is None else y_min
    y_hi = float(ys_all.max()) if y_max is None else y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(np.asarray(xs, float), np.asarray(ys, float)):
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            row = height - 1 - min(max(row, 0), height - 1)
            col = min(max(col, 0), width - 1)
            if canvas[row][col] == " ":
                canvas[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:,.6g}"
    bottom_label = f"{y_lo:,.6g}"
    label_w = max(len(top_label), len(bottom_label))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = top_label.rjust(label_w)
        elif i == height - 1:
            prefix = bottom_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_lo:,.6g}".ljust(width // 2) + f"{x_hi:,.6g}".rjust(width - width // 2)
    lines.append(" " * (label_w + 2) + x_axis)
    if xlabel or ylabel:
        lines.append(" " * (label_w + 2) + f"x: {xlabel}   y: {ylabel}".rstrip())
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
