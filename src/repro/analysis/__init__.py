"""Reporting: CDFs, text tables, ASCII plots, CSV export."""

from .export import atomic_write_text, results_dir, write_csv, write_json
from .plotting import ascii_plot
from .tables import format_table

__all__ = [
    "results_dir",
    "write_csv",
    "write_json",
    "atomic_write_text",
    "ascii_plot",
    "format_table",
]
