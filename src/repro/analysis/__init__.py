"""Reporting: CDFs, text tables, ASCII plots, CSV export."""

from .export import results_dir, write_csv
from .plotting import ascii_plot
from .tables import format_table

__all__ = ["results_dir", "write_csv", "ascii_plot", "format_table"]
