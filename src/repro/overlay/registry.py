"""Substrate registry: name -> factories for overlay, protocol and routing.

Everything substrate-parametric in the repo — the grid simulations, the
service core, the experiment harnesses, the bench suite — resolves its
substrate here by name.  A :class:`SubstrateDescriptor` bundles what varies
between substrates:

* how to build the ground-truth overlay over a :class:`ResourceSpace`;
* how to build the maintenance protocol that keeps believed state under
  churn (including which heartbeat ``engine`` values it supports);
* how to route over ground truth and over believed state (greedy
  zone-distance descent for CAN, finger-table key hops for Chord).

The built-ins ("can", "chord") are registered lazily on first lookup so
importing :mod:`repro.overlay` never drags in both substrate packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from .base import MaintenanceProtocol, OverlaySubstrate

__all__ = [
    "SubstrateDescriptor",
    "register_substrate",
    "get_substrate",
    "available_substrates",
    "create_overlay",
]


@dataclass(frozen=True)
class SubstrateDescriptor:
    """One registered overlay substrate and its factory functions."""

    name: str
    #: build the ground-truth overlay: ``make_overlay(space)``
    make_overlay: Callable[[Any], OverlaySubstrate]
    #: build the maintenance protocol:
    #: ``make_protocol(overlay, config, engine=..., tracer=..., profiler=...,
    #: metrics=..., rng=...)`` — ``config`` is a
    #: :class:`~repro.can.heartbeat.ProtocolConfig` (shared across
    #: substrates; each interprets the scheme/detection knobs its own way)
    make_protocol: Callable[..., MaintenanceProtocol]
    #: ground-truth route: ``route(overlay, start_id, point)`` -> node path
    route: Callable[..., List[int]]
    #: believed-state route: ``route_on_beliefs(protocol, start_id, point)``
    #: -> result with ``delivered``/``hops``/``path``
    route_on_beliefs: Callable[..., Any]
    #: heartbeat engines the protocol factory accepts
    engines: Tuple[str, ...] = ("object",)

    def check_engine(self, engine: str) -> None:
        if engine not in self.engines:
            raise ValueError(
                f"substrate {self.name!r} has no heartbeat engine "
                f"{engine!r} (supported: {', '.join(self.engines)})"
            )


_REGISTRY: Dict[str, SubstrateDescriptor] = {}


def register_substrate(descriptor: SubstrateDescriptor) -> SubstrateDescriptor:
    """Register (or replace) a substrate under ``descriptor.name``."""
    _REGISTRY[descriptor.name] = descriptor
    return descriptor


def _register_builtin_can() -> SubstrateDescriptor:
    from ..can.overlay import CanOverlay
    from ..can.routing import route, route_on_beliefs
    from ..can.soa import ENGINES, build_protocol

    def make_protocol(overlay, config, engine="object", **kwargs):
        return build_protocol(overlay, config, engine=engine, **kwargs)

    return register_substrate(
        SubstrateDescriptor(
            name="can",
            make_overlay=CanOverlay,
            make_protocol=make_protocol,
            route=route,
            route_on_beliefs=route_on_beliefs,
            engines=tuple(ENGINES),
        )
    )


def _register_builtin_chord() -> SubstrateDescriptor:
    from ..chord.protocol import ChordMaintenanceProtocol
    from ..chord.ring import ChordRing
    from ..chord.routing import chord_route, chord_route_on_beliefs

    def make_protocol(overlay, config, engine="object", **kwargs):
        if engine != "object":
            raise ValueError(
                f"chord substrate has no heartbeat engine {engine!r}"
            )
        return ChordMaintenanceProtocol(overlay, config, **kwargs)

    return register_substrate(
        SubstrateDescriptor(
            name="chord",
            make_overlay=ChordRing,
            make_protocol=make_protocol,
            route=chord_route,
            route_on_beliefs=chord_route_on_beliefs,
            engines=("object",),
        )
    )


_BUILTINS: Dict[str, Callable[[], SubstrateDescriptor]] = {
    "can": _register_builtin_can,
    "chord": _register_builtin_chord,
}


def get_substrate(name: str) -> SubstrateDescriptor:
    """Look a substrate up by name, loading built-ins on demand."""
    descriptor = _REGISTRY.get(name)
    if descriptor is None:
        loader = _BUILTINS.get(name)
        if loader is not None:
            descriptor = loader()
    if descriptor is None:
        known = sorted(set(_REGISTRY) | set(_BUILTINS))
        raise ValueError(
            f"unknown substrate {name!r} (available: {', '.join(known)})"
        )
    return descriptor


def available_substrates() -> List[str]:
    """Names accepted by :func:`get_substrate` (built-ins included)."""
    return sorted(set(_REGISTRY) | set(_BUILTINS))


def create_overlay(name: str, space: Any) -> OverlaySubstrate:
    """Shorthand: build the named substrate's overlay over ``space``."""
    return get_substrate(name).make_overlay(space)
