"""The overlay-substrate protocol: what a DHT must provide to host the grid.

The matchmakers (:mod:`repro.sched`), the aggregation engine, and the
churn/fault simulations were written against the concrete surface of
:class:`~repro.can.overlay.CanOverlay`.  This module names that surface as
an abstract protocol so a rival substrate (``repro.chord``) can slot in
underneath them unchanged.  Two protocols are defined:

* :class:`OverlaySubstrate` — the *ground-truth* structure: membership,
  coordinates, ownership of the resource space, neighbor queries, and the
  join/leave/fail/claim mutation surface.  CAN's "zone" vocabulary
  generalises: ``locate_owner`` maps a point of the
  :class:`~repro.can.space.ResourceSpace` to its owning node (CAN: the
  containing leaf's owner; Chord: the successor of the point's ring key),
  ``claim_zones`` executes the predetermined take-over of a dead member's
  region (CAN: split-history zone transfers; Chord: arc absorption by the
  successor), and ``check_invariants`` audits full coverage of the space
  (CAN: the zone partition; Chord: full-ring key coverage).

* :class:`MaintenanceProtocol` — the *information* plane: the per-node
  believed state driven by heartbeat rounds, with failure detection,
  take-over execution, message accounting and the broken-link time series.
  Substrates ship their own implementation (beliefs are substrate-shaped:
  neighbor-zone tables for CAN, successor lists and fingers for Chord) but
  expose the same external surface, so :class:`~repro.gridsim.churn
  .ChurnSimulation`, :class:`~repro.gridsim.faulty.FaultyGridSimulation`
  and the invariant checkers drive either one identically.

Both are :func:`typing.runtime_checkable` structural protocols — existing
classes conform without inheriting from anything here.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

__all__ = ["OverlaySubstrate", "MaintenanceProtocol", "SubstrateError"]


class SubstrateError(Exception):
    """Structural overlay violation (bad join, unknown member, ...).

    Substrate implementations raise their own subclass
    (:class:`~repro.can.overlay.OverlayError`,
    :class:`~repro.chord.ring.ChordError`); substrate-generic callers
    catch this base.
    """


@runtime_checkable
class OverlaySubstrate(Protocol):
    """Ground-truth overlay structure over a :class:`ResourceSpace`.

    Implementations: :class:`~repro.can.overlay.CanOverlay`,
    :class:`~repro.chord.ring.ChordRing`.
    """

    #: the resource space whose points the overlay partitions
    space: Any
    #: bumped on every structural change; consumers key caches off it
    topology_version: int
    #: node_id -> member state; ``len`` counts dead-but-unclaimed too
    members: Dict[int, Any]

    # -- queries ------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of members, dead-but-unclaimed included."""
        ...

    def alive_ids(self) -> List[int]:
        """Ids of live members (insertion order is implementation-defined)."""
        ...

    def dead_ids(self) -> Set[int]:
        """Members still holding territory but no longer alive."""
        ...

    def is_alive(self, node_id: int) -> bool: ...

    def coordinate(self, node_id: int) -> Tuple[float, ...]:
        """The member's resource-space coordinate."""
        ...

    def neighbors(self, node_id: int) -> Set[int]:
        """Ground-truth routing neighbors (liveness not filtered)."""
        ...

    def neighbors_along(self, node_id: int, dim: int, direction: int) -> Set[int]:
        """Neighbors in the +1/-1 direction along resource dimension ``dim``.

        This is the query the directional aggregation flow and the
        matchmakers' push scopes are built on.
        """
        ...

    def locate_owner(self, point: Sequence[float]) -> int:
        """The member owning ``point`` (dead owners included: ghost regions
        remain registered to them until claimed)."""
        ...

    def takeover_targets(
        self, node_id: int, dead: Optional[Set[int]] = None
    ) -> Set[int]:
        """Who would absorb this node's territory if it vanished now."""
        ...

    # -- mutation -----------------------------------------------------------
    def add_node(self, node_id: int, coord: Sequence[float]) -> Any:
        """Bootstrap or join; returns a substrate-specific join summary.

        Raises :class:`SubstrateError` when the join cannot proceed (e.g.
        the target region belongs to a failed-but-unclaimed member).
        """
        ...

    def graceful_leave(self, node_id: int) -> List[Any]:
        """Voluntary departure; territory hands off immediately.

        Returns the list of transfers (substrate-specific records exposing
        at least ``from_node`` and ``to_node``).
        """
        ...

    def fail(self, node_id: int) -> None:
        """Silent crash: territory lingers with the ghost until claimed."""
        ...

    def claim_zones(self, dead_id: int) -> List[Any]:
        """Execute the predetermined take-over for a detected failure."""
        ...

    # -- audit --------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` unless the overlay fully and
        consistently covers the resource space (CAN: zone partition with
        symmetric adjacency; Chord: sorted ring with full key coverage)."""
        ...


@runtime_checkable
class MaintenanceProtocol(Protocol):
    """The believed-state machinery a substrate runs under churn.

    Implementations: :class:`~repro.can.heartbeat.HeartbeatProtocol` (and
    its array-engine subclass), :class:`~repro.chord.protocol
    .ChordMaintenanceProtocol`.  The churn/fault simulations and
    :mod:`repro.gridsim.invariants` use exactly this surface.
    """

    overlay: OverlaySubstrate
    #: per-message-type counts and bytes (drives the fig8 rates)
    stats: Any
    #: believed ground-truth divergence over time (drives fig7)
    broken_links: Any
    #: node_id -> per-node protocol state, one entry per overlay member
    nodes: Dict[int, Any]
    #: joins/leaves/failures/claims counters (the membership ledger)
    events: Dict[str, int]
    #: crash time per failed-but-unclaimed member
    _fail_times: Dict[int, float]
    #: fired once per failed node when the protocol first notices the crash
    on_failure_detected: Optional[Callable[[int, float], None]]
    #: the network channel (repro.net.NetworkModel) every unreliable send
    #: traverses; the identity model is bypassed with no RNG draws
    net: Any

    def bootstrap(self, node_id: int, coord: Sequence[float], now: float = 0.0) -> None: ...

    def join(self, node_id: int, coord: Sequence[float], now: float) -> bool:
        """Returns False when the join is deferred (target region in limbo)."""
        ...

    def graceful_leave(self, node_id: int, now: float) -> None: ...

    def fail(self, node_id: int, now: float) -> None: ...

    def run_round(self, now: float) -> None:
        """One heartbeat period: exchange, detect, claim, repair, measure."""
        ...

    def adopt_overlay(self, now: float = 0.0) -> None:
        """Warm-start believed state for an overlay built outside the
        protocol (grid bootstrap paths skip join-message accounting)."""
        ...

    def set_message_loss(self, rate: float, rng: Any) -> None:
        """Compatibility wrapper: a loss-only network model."""
        ...

    def set_network(self, model: Any) -> None:
        """Install a repro.net.NetworkModel as the message channel."""
        ...

    def count_broken_links(self) -> int: ...
