"""Pluggable overlay substrates (CAN, Chord) behind one protocol surface."""

from .base import MaintenanceProtocol, OverlaySubstrate, SubstrateError
from .registry import (
    SubstrateDescriptor,
    available_substrates,
    create_overlay,
    get_substrate,
    register_substrate,
)

__all__ = [
    "OverlaySubstrate",
    "MaintenanceProtocol",
    "SubstrateError",
    "SubstrateDescriptor",
    "register_substrate",
    "get_substrate",
    "available_substrates",
    "create_overlay",
]
