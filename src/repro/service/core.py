"""GridService: the live grid engine behind the gateway, clock-agnostic.

This is the simulator's protocol stack re-hosted as a long-running
service.  The overlay, aggregation engine, matchmakers, heartbeat
protocol, and retry policy are the *same objects* the batch experiments
use; :class:`GridService` only changes three things:

* time comes from a :class:`~repro.sim.clock.Clock` — the DES kernel's
  :class:`~repro.sim.clock.SimClock` in tests, an
  :class:`~repro.service.aclock.AsyncioClock` under the gateway — so this
  module contains no asyncio and no DES-vs-wall-clock branches;
* job state lives in the persistent :class:`~repro.service.ledger`
  (status transitions are the single source of truth; the in-memory
  :class:`~repro.model.job.Job` objects are a cache of it);
* submissions arrive one at a time through :meth:`submit` instead of a
  pre-generated arrival process.

Crash recovery composes the two previous PRs' machinery: a node failure
routes lost jobs through the :class:`~repro.gridsim.recovery`
``RecoveryTracker``/``RetryPolicy`` pair exactly as the faulty-grid
simulation does, and a *process* restart (:meth:`recover`, run at
startup) treats every non-terminal ledger row the same way — a
``MATCHED``/``RUNNING`` job whose node vanished with the old process is
"lost to a crash" whose detection is immediate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..can.aggregation import AggregationEngine
from ..can.heartbeat import HeartbeatScheme, ProtocolConfig
from ..can.space import ResourceSpace
from ..overlay import MaintenanceProtocol, get_substrate
from ..gridsim.config import MatchmakingConfig
from ..gridsim.recovery import RecoveryTracker, RetryPolicy
from ..gridsim.simulation import build_matchmaker
from ..model.job import Job
from ..model.node import GridNode
from ..sched.base import expanding_ring_search, fastest_dominant_clock
from ..sim.clock import CallbackHandle, Clock
from ..sim.rng import RngRegistry
from ..workload.nodes import generate_node_specs
from ..workload.presets import TINY_LOAD, WorkloadPreset
from ..workload.trace import job_from_dict
from .ledger import JobLedger, JobStatus, TERMINAL_STATES

__all__ = ["ServiceConfig", "GridService", "CancelError"]


class CancelError(ValueError):
    """The job exists but is not in a cancellable state."""


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of a live grid service."""

    #: population/space shape (nodes, gpu_slots, heartbeat_period, seed);
    #: the preset's job-stream fields are ignored — jobs arrive via submit()
    preset: WorkloadPreset = TINY_LOAD
    scheme: str = "can-het"  # can-het | can-hom | central
    #: run a live HeartbeatProtocol next to the matchmaker (crash detection
    #: through missed-heartbeat timeouts, zone take-over on failure)
    heartbeat: bool = True
    heartbeat_scheme: HeartbeatScheme = HeartbeatScheme.VANILLA
    failure_timeout_periods: float = 2.5
    #: backoff/budget for retrying lost and not-yet-placeable jobs
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    aggregation_warmup_rounds: int = 5
    stopping_factor: float = 4.0
    max_push_hops: int = 64
    #: overlay substrate backing the service ("can", "chord", or any
    #: registered name); matchmaker and heartbeat run on either
    substrate: str = "can"

    def matchmaking(self) -> MatchmakingConfig:
        return MatchmakingConfig(
            self.preset,
            scheme=self.scheme,
            stopping_factor=self.stopping_factor,
            max_push_hops=self.max_push_hops,
            substrate=self.substrate,
        )


class GridService:
    """Overlay + matchmaker + heartbeat + ledger, driven by one Clock."""

    def __init__(
        self,
        config: ServiceConfig,
        ledger: JobLedger,
        clock: Clock,
        tracer=None,
        metrics=None,
        profiler=None,
    ):
        self.config = config
        self.ledger = ledger
        self.clock = clock
        self.tracer = tracer
        self.metrics = metrics
        preset = config.preset
        self.rngs = RngRegistry(preset.seed)
        self.space = ResourceSpace(gpu_slots=preset.gpu_slots)
        self._substrate = get_substrate(config.substrate)
        self.overlay = self._substrate.make_overlay(self.space)
        self.grid_nodes: Dict[int, GridNode] = {}
        mm_config = config.matchmaking()
        virtual_rng = self.rngs.stream("virtual")
        for spec in generate_node_specs(
            preset.nodes, preset.gpu_slots, self.rngs.stream("nodes")
        ):
            coord = self.space.node_coordinate(spec, float(virtual_rng.random()))
            self.overlay.add_node(spec.node_id, coord)
            self.grid_nodes[spec.node_id] = GridNode(
                spec,
                clock,
                contention=mm_config.contention,
                on_job_started=self._on_job_started,
                on_job_finished=self._on_job_finished,
            )
        self.aggregation = AggregationEngine(self.overlay, self.grid_nodes)
        self.matchmaker = build_matchmaker(
            mm_config,
            self.overlay,
            self.grid_nodes,
            self.aggregation,
            self.rngs.stream("matchmaking"),
        )
        self.matchmaker.attach_tracer(tracer, lambda: self.clock.now)
        self.matchmaker.attach_profiler(profiler)
        self.tracker = RecoveryTracker()
        self._retry_rng = self.rngs.stream("retry")
        #: live Job objects for every non-terminal ledger row
        self._jobs: Dict[int, Job] = {}
        #: pending retry timers, cancellable on cancel()/stop()
        self._retry_handles: Dict[int, CallbackHandle] = {}
        self._periodic: List[CallbackHandle] = []
        #: submit-side attempt counts for jobs that were never lost to a
        #: crash (the tracker only ledgers crash recoveries)
        self._submit_attempts: Dict[int, int] = {}
        self.protocol: Optional[MaintenanceProtocol] = None
        if config.heartbeat:
            self.protocol = self._substrate.make_protocol(
                self.overlay,
                ProtocolConfig(
                    scheme=config.heartbeat_scheme,
                    period=preset.heartbeat_period,
                    failure_timeout_periods=config.failure_timeout_periods,
                ),
                tracer=tracer,
                profiler=profiler,
                metrics=metrics,
            )
            self.protocol.adopt_overlay(self.clock.now)
            self.protocol.on_failure_detected = self._on_node_detected
        if metrics is not None:
            scope = metrics.scope("service")
            self._job_counter = scope.counter("jobs")
            #: streaming queue-depth distribution — O(1) memory however
            #: many samples the service's lifetime produces
            self._depth_sketch = scope.quantile_sketch("queue_depth")
        else:
            self._job_counter = None
            self._depth_sketch = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Warm the aggregates, recover ledger orphans, begin periodic ticks."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self.aggregation.run_rounds(self.config.aggregation_warmup_rounds)
        self.recover()
        period = self.config.preset.heartbeat_period
        self._periodic.append(
            self.clock.call_every(period, self.aggregation.step)
        )
        if self.protocol is not None:
            self._periodic.append(
                self.clock.call_every(
                    self.protocol.config.period,
                    lambda: self.protocol.run_round(self.clock.now),
                )
            )
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now,
                "service.start",
                nodes=len(self.grid_nodes),
                scheme=self.config.scheme,
                recovered=len(self._jobs),
            )

    def stop(self) -> None:
        """Cancel every timer.  Ledger state survives; timers do not."""
        for handle in self._periodic:
            handle.cancel()
        self._periodic.clear()
        for handle in self._retry_handles.values():
            handle.cancel()
        self._retry_handles.clear()
        if self.tracer is not None:
            self.tracer.emit(self.clock.now, "service.stop")
        self._started = False

    # -- restart recovery --------------------------------------------------------
    def recover(self) -> int:
        """Route every non-terminal ledger row back into scheduling.

        ``MATCHED``/``RUNNING`` rows are orphans: whatever node they were
        on, the run state died with the previous process (and the node
        itself may be gone from the rebuilt population).  They take the
        node-crash path — ``FAILED`` in the ledger, a loss in the
        :class:`RecoveryTracker` with immediate detection, then the
        :class:`RetryPolicy` loop — so the PR 4 accounting identity keeps
        holding across restarts.  ``SUBMITTED``/``RETRYING``/``FAILED``
        rows simply re-enter placement.  Returns the number of jobs
        re-entered.
        """
        now = self.clock.now
        recovered = 0
        for rec in self.ledger.in_flight():
            job = job_from_dict(rec.spec, job_id=rec.job_id)
            self._jobs[job.job_id] = job
            recovered += 1
            if rec.status in (
                JobStatus.MATCHED,
                JobStatus.RUNNING,
                JobStatus.FAILED,
            ):
                # MATCHED/RUNNING rows are orphans of the dead process; a
                # FAILED row means the kill landed between the FAILED write
                # and the RETRYING one.  All three are "lost to a crash"
                # whose detection is immediate — the crashed node *is* the
                # old process.
                orphan_node = rec.node_id if rec.node_id is not None else -1
                vanished = orphan_node not in self.grid_nodes
                self.tracker.node_crashed(orphan_node, now)
                self.tracker.job_lost(job, orphan_node, now)
                if rec.status is not JobStatus.FAILED:
                    self.ledger.transition(
                        rec.job_id,
                        JobStatus.FAILED,
                        now=now,
                        node_id=None,
                        detail=(
                            "node vanished across restart"
                            if vanished
                            else "orphaned by restart"
                        ),
                    )
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "service.orphan",
                        job=rec.job_id,
                        node=orphan_node,
                        vanished=vanished,
                    )
                self._on_node_detected(orphan_node, now)
            else:  # SUBMITTED or RETRYING: re-enter placement directly
                self._try_place(job)
        return recovered

    # -- submission --------------------------------------------------------------
    def submit(self, spec: Dict) -> int:
        """Accept one job spec (``workload.trace`` form); returns its id.

        The ledger row is durable before any scheduling happens; the
        recorded ``job_id`` (if any) is ignored — ids are the ledger's.
        """
        record = self.ledger.submit(
            {**spec, "job_id": None}, now=self.clock.now
        )
        job = job_from_dict(spec, job_id=record.job_id)
        self._jobs[job.job_id] = job
        job.submit_time = self.clock.now
        if self._job_counter is not None:
            self._job_counter.add("submitted")
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now, "service.submit", job=record.job_id
            )
        self._try_place(job)
        self._sample_depth()
        return record.job_id

    def _try_place(self, job: Job) -> None:
        """One placement attempt from SUBMITTED/RETRYING (not crash retry).

        Attempt accounting mirrors :class:`RetryPolicy`'s contract (and the
        faulty grid's resubmission loop): the budget is checked *before*
        each attempt, so a job gets exactly ``max_attempts`` failed
        placements before abandonment.
        """
        attempts = self._submit_attempts.get(job.job_id, 0) + 1
        self._submit_attempts[job.job_id] = attempts
        policy = self.config.retry
        if policy.exhausted(attempts):
            self._abandon(job, attempts - 1)
            return
        node = self.matchmaker.place(job)
        if node is None:
            node = self._degraded_search(job)
        if node is not None:
            self.ledger.transition(
                job.job_id,
                JobStatus.MATCHED,
                now=self.clock.now,
                node_id=node.node_id,
            )
            node.submit(job)
            return
        record = self.ledger.record(job.job_id)
        if record.status is not JobStatus.RETRYING:
            self.ledger.transition(
                job.job_id,
                JobStatus.RETRYING,
                now=self.clock.now,
                attempts=attempts,
                detail="no capable node available",
            )
        delay = policy.delay(attempts, self._retry_rng)
        self._retry_handles[job.job_id] = self.clock.schedule_callback(
            delay, lambda j=job: self._retry_tick(j)
        )

    def _retry_tick(self, job: Job) -> None:
        self._retry_handles.pop(job.job_id, None)
        if self.ledger.record(job.job_id).status in TERMINAL_STATES:
            return
        if job.job_id in self.tracker.pending:
            self._resubmit(job)
        else:
            self._try_place(job)

    def _abandon(self, job: Job, attempts: int) -> None:
        self.ledger.transition(
            job.job_id,
            JobStatus.ABANDONED,
            now=self.clock.now,
            attempts=attempts,
        )
        if job.job_id in self.tracker.pending:
            self.tracker.job_abandoned(job.job_id)
        self._forget(job.job_id)
        if self._job_counter is not None:
            self._job_counter.add("abandoned")
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now,
                "grid.job_abandoned",
                job=job.job_id,
                attempts=attempts,
            )

    def _forget(self, job_id: int) -> None:
        self._jobs.pop(job_id, None)
        self._submit_attempts.pop(job_id, None)
        handle = self._retry_handles.pop(job_id, None)
        if handle is not None:
            handle.cancel()

    # -- node callbacks ----------------------------------------------------------
    def _on_job_started(self, node: GridNode, job: Job) -> None:
        self.ledger.transition(
            job.job_id,
            JobStatus.RUNNING,
            now=self.clock.now,
            node_id=node.node_id,
        )

    def _on_job_finished(self, node: GridNode, job: Job) -> None:
        self.ledger.transition(
            job.job_id, JobStatus.COMPLETED, now=self.clock.now
        )
        self._forget(job.job_id)
        if self._job_counter is not None:
            self._job_counter.add("completed")
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now,
                "service.complete",
                job=job.job_id,
                node=node.node_id,
            )
        self._sample_depth()

    # -- failures ----------------------------------------------------------------
    def fail_node(self, node_id: int) -> List[int]:
        """Crash one node; returns the ids of the jobs lost with it.

        Detection then follows the heartbeat protocol (believers time the
        node out, the take-over path reclaims its zones) exactly as in the
        faulty-grid simulation; without a protocol the loss is detected
        immediately.
        """
        now = self.clock.now
        victim = self.grid_nodes.pop(node_id)
        lost = victim.fail()
        self.tracker.node_crashed(node_id, now)
        for job in lost:
            job.enqueue_time = None
            job.start_time = None
            job.finish_time = None
            job.run_node_id = None
            self.tracker.job_lost(job, node_id, now)
            self.ledger.transition(
                job.job_id,
                JobStatus.FAILED,
                now=now,
                node_id=None,
                detail=f"node {node_id} crashed",
            )
        if self.tracer is not None:
            self.tracer.emit(
                now, "grid.crash", node=node_id, jobs_lost=len(lost)
            )
        if self.protocol is not None:
            self.protocol.fail(node_id, now)
        else:
            self.overlay.fail(node_id)
            self.overlay.claim_zones(node_id)
            self._on_node_detected(node_id, now)
        return [job.job_id for job in lost]

    def _on_node_detected(self, node_id: int, now: float) -> None:
        latency, released = self.tracker.node_detected(node_id, now)
        if latency is None:
            return
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "recovery.detected",
                node=node_id,
                latency=latency,
                jobs=len(released),
            )
        for job in released:
            self._resubmit(job)

    def _resubmit(self, job: Job) -> None:
        """The crash-recovery retry loop (FAILED -> RETRYING -> MATCHED)."""
        policy = self.config.retry
        attempts = self.tracker.begin_attempt(job.job_id)
        if policy.exhausted(attempts):
            self.tracker.job_abandoned(job.job_id)
            # FAILED -> ABANDONED and RETRYING -> ABANDONED are both legal,
            # so no intermediate transition is needed whichever state the
            # budget ran out in
            self.ledger.transition(
                job.job_id,
                JobStatus.ABANDONED,
                now=self.clock.now,
                attempts=attempts - 1,
            )
            self._forget(job.job_id)
            if self._job_counter is not None:
                self._job_counter.add("abandoned")
            if self.tracer is not None:
                self.tracer.emit(
                    self.clock.now,
                    "grid.job_abandoned",
                    job=job.job_id,
                    attempts=attempts - 1,
                )
            return
        record = self.ledger.record(job.job_id)
        if record.status is JobStatus.FAILED:
            self.ledger.transition(
                job.job_id,
                JobStatus.RETRYING,
                now=self.clock.now,
                attempts=attempts,
            )
        node = self.matchmaker.place(job)
        if node is None:
            node = self._degraded_search(job)
        if node is None:
            delay = policy.delay(attempts, self._retry_rng)
            self._retry_handles[job.job_id] = self.clock.schedule_callback(
                delay, lambda j=job: self._retry_tick(j)
            )
            return
        self.tracker.job_resubmitted(job.job_id, self.clock.now)
        self.ledger.transition(
            job.job_id,
            JobStatus.MATCHED,
            now=self.clock.now,
            node_id=node.node_id,
        )
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now,
                "grid.job_resubmit",
                job=job.job_id,
                attempt=attempts,
            )
        node.submit(job)

    def _degraded_search(self, job: Job) -> Optional[GridNode]:
        """Bounded ring search when the aggregates are stale (see faulty.py)."""
        policy = self.config.retry
        if not policy.ring_fallback or self.config.scheme == "central":
            return None
        if not self.aggregation.is_stale():
            return None
        coord = self.space.job_coordinate(job, float(self._retry_rng.random()))
        origin = self.overlay.locate_owner(coord)
        candidates = expanding_ring_search(
            self.overlay, self.grid_nodes, origin, job, policy.ring_budget
        )
        if not candidates:
            return None
        chosen = fastest_dominant_clock(candidates, job)
        if self.tracer is not None:
            self.tracer.emit(
                self.clock.now,
                "recovery.fallback",
                job=job.job_id,
                node=chosen.node_id,
                candidates=len(candidates),
            )
        return chosen

    # -- cancel / queries --------------------------------------------------------
    def cancel(self, job_id: int) -> None:
        """Cancel a job that has not started running.

        Legal from ``SUBMITTED``/``RETRYING`` (drop the pending retry) and
        from ``MATCHED`` (remove from its node's queue).  ``RUNNING`` and
        terminal jobs raise :class:`CancelError`.
        """
        record = self.ledger.record(job_id)
        if record.status not in (
            JobStatus.SUBMITTED,
            JobStatus.RETRYING,
            JobStatus.MATCHED,
        ):
            raise CancelError(
                f"job {job_id} is {record.status.value}; not cancellable"
            )
        if record.status is JobStatus.MATCHED:
            node = self.grid_nodes.get(record.node_id)
            job = self._jobs.get(job_id)
            dequeued = False
            if node is not None and job is not None:
                for ce in node.ces.values():
                    if job in ce.queue:
                        ce.queue.remove(job)
                        dequeued = True
                        break
            if not dequeued:
                raise CancelError(
                    f"job {job_id} is no longer queued; cannot cancel"
                )
        if job_id in self.tracker.pending:
            # a crash recovery resolved by the user: ledger says CANCELLED,
            # the tracker books it with the abandonments (resolved without
            # resubmission) so its loss identity keeps balancing
            self.tracker.job_abandoned(job_id)
        self.ledger.transition(job_id, JobStatus.CANCELLED, now=self.clock.now)
        self._forget(job_id)
        if self._job_counter is not None:
            self._job_counter.add("cancelled")
        if self.tracer is not None:
            self.tracer.emit(self.clock.now, "service.cancel", job=job_id)
        self._sample_depth()

    def queue_depth(self) -> int:
        """Jobs enqueued on nodes plus jobs waiting on a retry timer."""
        queued = sum(
            node.queued_jobs() for node in self.grid_nodes.values()
        )
        return queued + len(self._retry_handles)

    def running_jobs(self) -> int:
        return sum(node.running_jobs() for node in self.grid_nodes.values())

    def quiesced(self) -> bool:
        """No in-flight ledger rows — every submitted job reached a terminal state."""
        return not self.ledger.in_flight()

    def _sample_depth(self) -> None:
        if self._depth_sketch is not None:
            self._depth_sketch.insert(float(self.queue_depth()))

    def health(self) -> Dict:
        counts = self.ledger.counts()
        return {
            "status": "ok",
            "now": self.clock.now,
            "scheme": self.config.scheme,
            "population": len(self.grid_nodes),
            "queue_depth": self.queue_depth(),
            "running": self.running_jobs(),
            "jobs": {status.value: n for status, n in counts.items() if n},
        }
