"""Record fig5-style workloads and replay them through a live gateway.

``record_trace`` generates the same job stream a
:class:`~repro.gridsim.simulation.GridSimulation` would run (same preset,
same seeded RNG streams) and writes it as a portable JSONL workload
trace.  ``replay_trace`` streams such a trace into a gateway through the
blocking :class:`~repro.service.client.ServiceClient` — optionally pacing
submissions at the trace's inter-arrival gaps scaled by the service's
time dilation — then waits for every job to reach a terminal ledger
state and returns the terminal census.

This is the service-side twin of the batch experiments: the same
workload, the same matchmaker, but arriving over HTTP against a
wall-clock service instead of inside the DES.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Dict, List, Optional

from ..model.job import Job
from ..sim.rng import RngRegistry
from ..workload.jobs import JobDistribution, generate_jobs
from ..workload.nodes import generate_node_specs
from ..workload.presets import WorkloadPreset
from ..workload.trace import dump_jobs
from .client import ServiceClient

__all__ = ["record_trace", "replay_trace"]


def record_trace(preset: WorkloadPreset, path: str) -> int:
    """Write ``preset``'s job stream as a workload trace; returns job count.

    Uses the preset's seed through the same named RNG streams as the
    simulators, so a recorded trace matches what a batch run with the
    same preset would have scheduled.
    """
    rngs = RngRegistry(preset.seed)
    specs = generate_node_specs(
        preset.nodes, preset.gpu_slots, rngs.stream("nodes")
    )
    jdist = JobDistribution().with_constraint_ratio(preset.constraint_ratio)
    jobs = generate_jobs(
        preset.jobs,
        specs,
        preset.gpu_slots,
        preset.mean_interarrival,
        rngs.stream("jobs"),
        jdist,
    )
    return dump_jobs(jobs, path)


def replay_trace(
    client: ServiceClient,
    jobs: List[Job],
    dilation: Optional[float] = None,
    timeout: float = 120.0,
) -> Dict:
    """Submit ``jobs`` in trace order and wait for terminal states.

    With ``dilation`` set, submissions are paced: a gap of ``g`` model
    seconds between two recorded submit times becomes ``g / dilation``
    wall seconds, reproducing the trace's arrival process under the
    service's dilated clock.  Without it, jobs are submitted as fast as
    the gateway accepts them (every job is queued/retried by the service
    either way).  Returns a summary dict with the terminal census.
    """
    started = time.monotonic()
    job_ids: List[int] = []
    if jobs:
        wall_origin = time.monotonic()
        model_origin = jobs[0].submit_time
        for job in jobs:
            if dilation:
                target = (job.submit_time - model_origin) / dilation
                pause = wall_origin + target - time.monotonic()
                if pause > 0:
                    time.sleep(pause)
            job_ids.append(client.submit(job))
    views = client.wait(job_ids, timeout=timeout)
    census = Counter(view.status.value for view in views.values())
    return {
        "submitted": len(job_ids),
        "terminal": dict(sorted(census.items())),
        "job_ids": job_ids,
        "wall_seconds": time.monotonic() - started,
    }
