"""The persistent job ledger: one row per job, one audited status machine.

Real grid middleware keeps job state in a store that outlives the
scheduler process; the scheduler is a cache.  This module is that store
for :mod:`repro.service`:

* :class:`JobStatus` — the typed lifecycle::

      SUBMITTED ──> MATCHED ──> RUNNING ──> COMPLETED
          │  │         │           └──────> FAILED ──> RETRYING ──> MATCHED
          │  │         └──> FAILED             │           │  │
          │  └──> RETRYING (no capacity yet)   └─> ABANDONED  └─> ABANDONED
          └──> CANCELLED   (also from MATCHED / RETRYING)

  ``COMPLETED`` / ``ABANDONED`` / ``CANCELLED`` are terminal.  Transitions
  outside :data:`LEGAL_TRANSITIONS` raise :class:`IllegalTransition` — the
  ledger is the single source of truth, so an illegal transition is a bug
  in the caller, never something to paper over.

* :class:`JobLedger` — the state machine enforced over a pluggable
  :class:`LedgerBackend`.  :class:`SqliteBackend` (WAL mode, stdlib
  ``sqlite3``) persists every transition before the caller proceeds, so a
  ``kill -9`` loses at most in-memory scheduling state, never job state;
  :class:`MemoryBackend` backs tests and ephemeral runs.

* crash recovery — :meth:`JobLedger.in_flight` returns every job the
  previous process still owed work for (anything non-terminal).  The
  service routes those through the existing
  :class:`~repro.gridsim.recovery.RetryPolicy` at startup, exactly like
  jobs lost to a node crash mid-run.

Every transition is also appended to a ``transitions`` audit table; the
restart tests count ``RUNNING -> COMPLETED`` edges per job there to prove
zero duplicate executions across a kill/restart cycle.
"""

from __future__ import annotations

import abc
import enum
import json
import os
import sqlite3
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..obs.schema import SCHEMA_VERSION, check_schema_version

__all__ = [
    "JobStatus",
    "LEGAL_TRANSITIONS",
    "TERMINAL_STATES",
    "IllegalTransition",
    "JobRecord",
    "LedgerBackend",
    "MemoryBackend",
    "SqliteBackend",
    "JobLedger",
    "open_ledger",
]


class JobStatus(str, enum.Enum):
    """Lifecycle states; the string values are the wire/database form."""

    SUBMITTED = "SUBMITTED"
    MATCHED = "MATCHED"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    RETRYING = "RETRYING"
    ABANDONED = "ABANDONED"
    CANCELLED = "CANCELLED"


#: every legal edge of the status machine (see the module docstring)
LEGAL_TRANSITIONS: Dict[JobStatus, frozenset] = {
    JobStatus.SUBMITTED: frozenset(
        {JobStatus.MATCHED, JobStatus.RETRYING, JobStatus.CANCELLED}
    ),
    JobStatus.MATCHED: frozenset(
        {JobStatus.RUNNING, JobStatus.FAILED, JobStatus.CANCELLED}
    ),
    JobStatus.RUNNING: frozenset({JobStatus.COMPLETED, JobStatus.FAILED}),
    JobStatus.FAILED: frozenset({JobStatus.RETRYING, JobStatus.ABANDONED}),
    JobStatus.RETRYING: frozenset(
        {JobStatus.MATCHED, JobStatus.ABANDONED, JobStatus.CANCELLED}
    ),
    JobStatus.COMPLETED: frozenset(),
    JobStatus.ABANDONED: frozenset(),
    JobStatus.CANCELLED: frozenset(),
}

TERMINAL_STATES = frozenset(
    {JobStatus.COMPLETED, JobStatus.ABANDONED, JobStatus.CANCELLED}
)


class IllegalTransition(ValueError):
    """A status transition outside :data:`LEGAL_TRANSITIONS`."""

    def __init__(self, job_id: int, frm: JobStatus, to: JobStatus):
        super().__init__(
            f"job {job_id}: illegal transition {frm.value} -> {to.value}"
        )
        self.job_id = job_id
        self.frm = frm
        self.to = to


@dataclass(frozen=True)
class JobRecord:
    """One ledger row (immutable snapshot; the backend holds the truth)."""

    job_id: int
    spec: Dict[str, Any]  # repro.workload.trace.job_to_dict form
    status: JobStatus
    node_id: Optional[int] = None
    attempts: int = 0
    submitted_at: float = 0.0
    updated_at: float = 0.0
    detail: str = ""

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec,
            "status": self.status.value,
            "node_id": self.node_id,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Transition:
    """One audit-table row."""

    job_id: int
    frm: Optional[JobStatus]  # None for the initial SUBMITTED insert
    to: JobStatus
    at: float
    node_id: Optional[int] = None


class LedgerBackend(abc.ABC):
    """Storage contract the ledger's state machine runs over.

    Backends store rows and the transition log; they enforce nothing —
    legality lives in :class:`JobLedger` so every backend behaves
    identically.
    """

    @abc.abstractmethod
    def next_job_id(self) -> int:
        """Allocate the next job id (monotonic across restarts)."""

    @abc.abstractmethod
    def insert(self, record: JobRecord) -> None: ...

    @abc.abstractmethod
    def update(self, record: JobRecord, frm: JobStatus) -> None:
        """Persist ``record`` and append the ``frm -> record.status`` edge."""

    @abc.abstractmethod
    def get(self, job_id: int) -> Optional[JobRecord]: ...

    @abc.abstractmethod
    def all_records(
        self, status: Optional[JobStatus] = None
    ) -> List[JobRecord]: ...

    @abc.abstractmethod
    def transitions(self, job_id: Optional[int] = None) -> List[Transition]: ...

    @abc.abstractmethod
    def close(self) -> None: ...

    def __enter__(self) -> "LedgerBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryBackend(LedgerBackend):
    """Dict-backed backend: ephemeral gateways and fast unit tests."""

    def __init__(self) -> None:
        self._rows: Dict[int, JobRecord] = {}
        self._log: List[Transition] = []
        self._next_id = 1

    def next_job_id(self) -> int:
        nid, self._next_id = self._next_id, self._next_id + 1
        return nid

    def insert(self, record: JobRecord) -> None:
        if record.job_id in self._rows:
            raise ValueError(f"job {record.job_id} already in ledger")
        self._rows[record.job_id] = record
        self._next_id = max(self._next_id, record.job_id + 1)
        self._log.append(
            Transition(record.job_id, None, record.status, record.submitted_at)
        )

    def update(self, record: JobRecord, frm: JobStatus) -> None:
        self._rows[record.job_id] = record
        self._log.append(
            Transition(
                record.job_id,
                frm,
                record.status,
                record.updated_at,
                record.node_id,
            )
        )

    def get(self, job_id: int) -> Optional[JobRecord]:
        return self._rows.get(job_id)

    def all_records(
        self, status: Optional[JobStatus] = None
    ) -> List[JobRecord]:
        rows = sorted(self._rows.values(), key=lambda r: r.job_id)
        if status is None:
            return rows
        return [r for r in rows if r.status is status]

    def transitions(self, job_id: Optional[int] = None) -> List[Transition]:
        if job_id is None:
            return list(self._log)
        return [t for t in self._log if t.job_id == job_id]

    def close(self) -> None:
        pass


class SqliteBackend(LedgerBackend):
    """sqlite3 persistence in WAL mode.

    WAL keeps readers and the single writer from blocking each other and —
    the property the restart tests depend on — makes every committed
    transition durable against ``kill -9``.  ``synchronous=NORMAL`` is the
    standard WAL pairing: fsync on checkpoint, not per commit; a process
    kill can never tear a transaction, only an OS crash can lose the tail.

    The backend serialises its own access with a lock so the asyncio
    gateway's handlers and any helper thread share one connection safely.
    """

    def __init__(self, path: str):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._init_schema()

    def _init_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS jobs (
                    job_id INTEGER PRIMARY KEY,
                    spec TEXT NOT NULL,
                    status TEXT NOT NULL,
                    node_id INTEGER,
                    attempts INTEGER NOT NULL DEFAULT 0,
                    submitted_at REAL NOT NULL,
                    updated_at REAL NOT NULL,
                    detail TEXT NOT NULL DEFAULT ''
                )
                """
            )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS transitions (
                    seq INTEGER PRIMARY KEY AUTOINCREMENT,
                    job_id INTEGER NOT NULL,
                    frm TEXT,
                    to_status TEXT NOT NULL,
                    at REAL NOT NULL,
                    node_id INTEGER
                )
                """
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status)"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_transitions_job "
                "ON transitions(job_id)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT)"
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta VALUES ('schema_version', ?)",
                    (SCHEMA_VERSION,),
                )
            else:
                check_schema_version(row[0], f"ledger {self.path!r}")

    def next_job_id(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(job_id), 0) + 1 FROM jobs"
            ).fetchone()
        return int(row[0])

    def insert(self, record: JobRecord) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO jobs VALUES (?,?,?,?,?,?,?,?)",
                (
                    record.job_id,
                    json.dumps(record.spec, sort_keys=True),
                    record.status.value,
                    record.node_id,
                    record.attempts,
                    record.submitted_at,
                    record.updated_at,
                    record.detail,
                ),
            )
            self._conn.execute(
                "INSERT INTO transitions (job_id, frm, to_status, at, node_id)"
                " VALUES (?,?,?,?,?)",
                (
                    record.job_id,
                    None,
                    record.status.value,
                    record.submitted_at,
                    record.node_id,
                ),
            )

    def update(self, record: JobRecord, frm: JobStatus) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET status=?, node_id=?, attempts=?, "
                "updated_at=?, detail=? WHERE job_id=?",
                (
                    record.status.value,
                    record.node_id,
                    record.attempts,
                    record.updated_at,
                    record.detail,
                    record.job_id,
                ),
            )
            self._conn.execute(
                "INSERT INTO transitions (job_id, frm, to_status, at, node_id)"
                " VALUES (?,?,?,?,?)",
                (
                    record.job_id,
                    frm.value,
                    record.status.value,
                    record.updated_at,
                    record.node_id,
                ),
            )

    @staticmethod
    def _row_to_record(row: Tuple) -> JobRecord:
        return JobRecord(
            job_id=int(row[0]),
            spec=json.loads(row[1]),
            status=JobStatus(row[2]),
            node_id=None if row[3] is None else int(row[3]),
            attempts=int(row[4]),
            submitted_at=float(row[5]),
            updated_at=float(row[6]),
            detail=row[7],
        )

    def get(self, job_id: int) -> Optional[JobRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id=?", (job_id,)
            ).fetchone()
        return None if row is None else self._row_to_record(row)

    def all_records(
        self, status: Optional[JobStatus] = None
    ) -> List[JobRecord]:
        with self._lock:
            if status is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY job_id"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE status=? ORDER BY job_id",
                    (status.value,),
                ).fetchall()
        return [self._row_to_record(row) for row in rows]

    def transitions(self, job_id: Optional[int] = None) -> List[Transition]:
        with self._lock:
            if job_id is None:
                rows = self._conn.execute(
                    "SELECT job_id, frm, to_status, at, node_id "
                    "FROM transitions ORDER BY seq"
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT job_id, frm, to_status, at, node_id "
                    "FROM transitions WHERE job_id=? ORDER BY seq",
                    (job_id,),
                ).fetchall()
        return [
            Transition(
                job_id=int(r[0]),
                frm=None if r[1] is None else JobStatus(r[1]),
                to=JobStatus(r[2]),
                at=float(r[3]),
                node_id=None if r[4] is None else int(r[4]),
            )
            for r in rows
        ]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class JobLedger:
    """The status state machine, enforced over a backend.

    All mutation goes through :meth:`submit` and :meth:`transition`; both
    persist before returning, so callers can treat a returned record as
    durable.  ``tracer`` (optional :class:`repro.obs.Tracer`) gets one
    ``service.job_status`` event per transition — the usual
    zero-overhead-when-off guard applies.
    """

    def __init__(self, backend: LedgerBackend, tracer=None, clock=None):
        self.backend = backend
        self.tracer = tracer
        self.clock = clock

    def _t(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        return self.clock.now if self.clock is not None else 0.0

    # -- mutation ---------------------------------------------------------------
    def submit(
        self,
        spec: Dict[str, Any],
        now: Optional[float] = None,
        job_id: Optional[int] = None,
    ) -> JobRecord:
        """Insert a new job in ``SUBMITTED``; returns the durable record."""
        t = self._t(now)
        record = JobRecord(
            job_id=self.backend.next_job_id() if job_id is None else job_id,
            spec=spec,
            status=JobStatus.SUBMITTED,
            submitted_at=t,
            updated_at=t,
        )
        self.backend.insert(record)
        if self.tracer is not None:
            self.tracer.emit(
                t,
                "service.job_status",
                job=record.job_id,
                frm=None,
                to=JobStatus.SUBMITTED.value,
            )
        return record

    def transition(
        self,
        job_id: int,
        to: JobStatus,
        now: Optional[float] = None,
        node_id: Optional[int] = ...,  # ... = keep current
        attempts: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> JobRecord:
        """Move ``job_id`` to ``to``; raises :class:`IllegalTransition`."""
        record = self.backend.get(job_id)
        if record is None:
            raise KeyError(f"job {job_id} not in ledger")
        if to not in LEGAL_TRANSITIONS[record.status]:
            raise IllegalTransition(job_id, record.status, to)
        updated = replace(
            record,
            status=to,
            updated_at=self._t(now),
            node_id=record.node_id if node_id is ... else node_id,
            attempts=record.attempts if attempts is None else attempts,
            detail=record.detail if detail is None else detail,
        )
        self.backend.update(updated, record.status)
        if self.tracer is not None:
            self.tracer.emit(
                updated.updated_at,
                "service.job_status",
                job=job_id,
                frm=record.status.value,
                to=to.value,
                **({} if updated.node_id is None else {"node": updated.node_id}),
            )
        return updated

    # -- queries ----------------------------------------------------------------
    def record(self, job_id: int) -> JobRecord:
        rec = self.backend.get(job_id)
        if rec is None:
            raise KeyError(f"job {job_id} not in ledger")
        return rec

    def records(self, status: Optional[JobStatus] = None) -> List[JobRecord]:
        return self.backend.all_records(status)

    def in_flight(self) -> List[JobRecord]:
        """Every job a restarted service still owes work for."""
        return [r for r in self.backend.all_records() if not r.terminal]

    def counts(self) -> Dict[JobStatus, int]:
        """Row count per status (every status present, zero or not)."""
        out = {status: 0 for status in JobStatus}
        for rec in self.backend.all_records():
            out[rec.status] += 1
        return out

    def completions(self, job_id: int) -> int:
        """How many times ``job_id`` reached COMPLETED (must be <= 1)."""
        return sum(
            1
            for t in self.backend.transitions(job_id)
            if t.to is JobStatus.COMPLETED
        )

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "JobLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_ledger(
    path: Optional[str], tracer=None, clock=None
) -> JobLedger:
    """``path=None`` -> in-memory ledger; otherwise sqlite WAL at ``path``."""
    backend: LedgerBackend
    backend = MemoryBackend() if path is None else SqliteBackend(path)
    return JobLedger(backend, tracer=tracer, clock=clock)
