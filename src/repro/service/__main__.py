"""``python -m repro.service`` — serve, record, and replay.

Subcommands::

    serve   run the gateway (optionally resuming an existing sqlite ledger)
    record  write a preset's job stream as a workload trace
    replay  stream a workload trace through a gateway; by default a
            self-hosted one is started for the duration of the replay

``replay`` against a self-hosted gateway is the end-to-end smoke path CI
runs: spin up the full stack on an ephemeral port, push a recorded
workload through HTTP, wait for every job to reach a terminal ledger
state, and print the terminal census (plus the accounting audit).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Optional

from ..gridsim.invariants import check_service_accounting
from ..obs import RunRecorder
from ..workload.presets import PAPER_LOAD, SMALL_LOAD, TINY_LOAD
from ..workload.trace import load_jobs
from .aclock import AsyncioClock
from .client import ServiceClient
from .core import GridService, ServiceConfig
from .gateway import Gateway
from .ledger import open_ledger
from .replay import record_trace, replay_trace

PRESETS = {"tiny": TINY_LOAD, "small": SMALL_LOAD, "paper": PAPER_LOAD}


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="tiny",
        help="node population / heartbeat shape (default: tiny)",
    )
    parser.add_argument(
        "--scheme",
        choices=["can-het", "can-hom", "central"],
        default="can-het",
    )
    parser.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help="sqlite ledger path (default: in-memory, lost on exit)",
    )
    parser.add_argument(
        "--dilation",
        type=float,
        default=60.0,
        help="model seconds per wall second (default: 60)",
    )
    parser.add_argument(
        "--no-heartbeat",
        action="store_true",
        help="skip the live heartbeat protocol (failures detected inline)",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="record a repro.obs JSONL trace + manifest under DIR",
    )


def _build_stack(args, loop: asyncio.AbstractEventLoop):
    """Construct recorder + ledger + service + gateway from CLI args."""
    from ..obs import MetricsRegistry

    recorder = RunRecorder(
        args.trace_dir or ".",
        "service",
        seed=PRESETS[args.preset].seed,
        enabled=args.trace_dir is not None,
    )
    ledger = open_ledger(args.db, tracer=recorder.tracer)
    # a restarted service must resume *after* the ledger's persisted model
    # times — ledger timestamps stay monotonic across restarts
    origin = max((r.updated_at for r in ledger.records()), default=0.0)
    clock = AsyncioClock(loop=loop, dilation=args.dilation, origin=origin)
    ledger.clock = clock
    config = ServiceConfig(
        preset=PRESETS[args.preset],
        scheme=args.scheme,
        heartbeat=not args.no_heartbeat,
    )
    metrics = MetricsRegistry()
    service = GridService(
        config, ledger, clock, tracer=recorder.tracer, metrics=metrics
    )
    gateway = Gateway(
        service, host=args.host, port=args.port, metrics=metrics
    )
    return recorder, ledger, service, gateway


async def _run_serve(args) -> int:
    loop = asyncio.get_running_loop()
    recorder, ledger, service, gateway = _build_stack(args, loop)
    await gateway.start()
    print(f"serving on {gateway.url} (dilation x{args.dilation:g})")
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        await gateway.stop()
        recorder.close(config={"scheme": args.scheme, "db": args.db})
        ledger.close()
    return 0


async def _run_replay(args) -> int:
    jobs = load_jobs(args.trace)
    if args.limit:
        jobs = jobs[: args.limit]
    if args.url is not None:
        client = ServiceClient(args.url)
        summary = await asyncio.to_thread(
            replay_trace,
            client,
            jobs,
            dilation=args.dilation if args.pace else None,
            timeout=args.timeout,
        )
        print(json.dumps(summary["terminal"], indent=2))
        return 0

    loop = asyncio.get_running_loop()
    recorder, ledger, service, gateway = _build_stack(args, loop)
    await gateway.start()
    client = ServiceClient(gateway.url)
    try:
        # the blocking client must not share the gateway's loop thread
        summary = await asyncio.to_thread(
            replay_trace,
            client,
            jobs,
            dilation=args.dilation if args.pace else None,
            timeout=args.timeout,
        )
        check_service_accounting(service, final=True)
        summary["accounting"] = "ok"
        print(json.dumps({k: v for k, v in summary.items() if k != "job_ids"}, indent=2))
    finally:
        await gateway.stop()
        recorder.close(config={"scheme": args.scheme, "trace": args.trace})
        ledger.close()
    return 0


def _run_record(args) -> int:
    count = record_trace(PRESETS[args.preset], args.out)
    print(f"wrote {count} jobs to {args.out}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the gateway")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    _add_service_args(serve)

    record = sub.add_parser("record", help="write a workload trace")
    record.add_argument(
        "--preset", choices=sorted(PRESETS), default="tiny"
    )
    record.add_argument("--out", required=True, metavar="PATH")

    replay = sub.add_parser("replay", help="stream a trace through a gateway")
    replay.add_argument("--trace", required=True, metavar="PATH")
    replay.add_argument(
        "--url",
        default=None,
        help="replay against a running gateway instead of self-hosting",
    )
    replay.add_argument("--host", default="127.0.0.1")
    replay.add_argument("--port", type=int, default=0)
    replay.add_argument(
        "--limit", type=int, default=0, help="replay only the first N jobs"
    )
    replay.add_argument(
        "--pace",
        action="store_true",
        help="pace submissions at the trace's dilated inter-arrival gaps",
    )
    replay.add_argument("--timeout", type=float, default=300.0)
    _add_service_args(replay)

    args = parser.parse_args(argv)
    if args.command == "record":
        return _run_record(args)
    if args.command == "serve":
        return asyncio.run(_run_serve(args))
    return asyncio.run(_run_replay(args))


if __name__ == "__main__":
    sys.exit(main())
