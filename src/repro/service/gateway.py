"""Asyncio JSON/REST gateway in front of a :class:`GridService`.

Stdlib-only: the server is ``asyncio.start_server`` plus a deliberately
minimal HTTP/1.1 implementation (request line, headers, Content-Length
body; every response is ``Connection: close``).  The point of this module
is not a web framework — it is that the *protocol stack underneath runs
unchanged*: the gateway owns an :class:`~repro.service.aclock.AsyncioClock`
and hands it to the same ``GridService``/heartbeat/matchmaker objects the
DES drives with a :class:`~repro.sim.clock.SimClock`.

Routes::

    POST   /jobs            submit a job spec (workload-trace JSON form)
    GET    /jobs            list jobs; ?status=running filters
    GET    /jobs/<id>       one job's ledger record
    DELETE /jobs/<id>       cancel (409 once running or terminal)
    GET    /health          population, queue depth, ledger counts
    GET    /metrics         metrics snapshot (+ request latencies)
    POST   /nodes/<id>/fail chaos hook: crash one grid node

All handlers run on the event loop thread, so service state needs no
locking; job execution "runs" as dilated-clock timers on the same loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .core import CancelError, GridService
from .ledger import JobStatus

__all__ = ["Gateway"]

_STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}
_MAX_BODY = 1 << 20  # 1 MiB; job specs are tiny


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class Gateway:
    """Serve one :class:`GridService` over HTTP on the running loop."""

    def __init__(
        self,
        service: GridService,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics=None,
    ):
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; real port filled in by start()
        self._server: Optional[asyncio.AbstractServer] = None
        self.metrics = metrics
        if metrics is not None:
            scope = metrics.scope("service")
            self._request_counter = scope.counter("requests")
            #: wall-clock request latencies, streamed into a constant-
            #: memory sketch (p50/p90/p99 survive any request volume)
            self._latency_sketch = scope.quantile_sketch("request_latency")
            self._request_window = scope.windowed_counter(
                "request_rate", window=60.0, buckets=12
            )
        else:
            self._request_counter = None
            self._latency_sketch = None
            self._request_window = None

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        """Start the grid engine and begin accepting connections."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        tracer = self.service.tracer
        if tracer is not None:
            tracer.emit(
                self.service.clock.now,
                "service.listen",
                host=self.host,
                port=self.port,
            )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- HTTP plumbing -----------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            try:
                method, path, query, body, headers = await self._read_request(
                    reader
                )
            except _HttpError as exc:
                self._write_response(
                    writer, exc.status, {"error": exc.message}
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            try:
                status, payload = self._route(method, path, query, body, headers)
            except _HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except Exception as exc:  # don't let one request kill the loop
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            self._write_response(writer, status, payload)
            if self._request_counter is not None:
                self._request_counter.add(f"{method} {status}")
            if self._latency_sketch is not None:
                self._latency_sketch.insert(loop.time() - started)
                self._request_window.add(self.service.clock.now)
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], Optional[Dict], Dict[str, str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        content_length = 0
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length")
        if content_length > _MAX_BODY:
            raise _HttpError(400, "request body too large")
        body: Optional[Dict] = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"invalid JSON body: {exc}")
        path, _, raw_query = target.partition("?")
        query: Dict[str, str] = {}
        for pair in raw_query.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        return method.upper(), path, query, body, headers

    def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        # str payloads are pre-rendered text (Prometheus exposition);
        # everything else is the JSON API
        if isinstance(payload, str):
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode()
            content_type = "application/json"
        phrase = _STATUS_PHRASES.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)

    # -- routing -----------------------------------------------------------------
    def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Optional[Dict],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any]:
        segments = [s for s in path.split("/") if s]
        if segments == ["jobs"]:
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return self._list_jobs(query)
            raise _HttpError(405, f"{method} not allowed on /jobs")
        if len(segments) == 2 and segments[0] == "jobs":
            job_id = self._job_id(segments[1])
            if method == "GET":
                return self._job_status(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            raise _HttpError(405, f"{method} not allowed on /jobs/<id>")
        if segments == ["health"] and method == "GET":
            return 200, self.service.health()
        if segments == ["metrics"] and method == "GET":
            return self._metrics(query, headers or {})
        if (
            len(segments) == 3
            and segments[0] == "nodes"
            and segments[2] == "fail"
            and method == "POST"
        ):
            return self._fail_node(self._job_id(segments[1]))
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _job_id(raw: str) -> int:
        try:
            return int(raw)
        except ValueError:
            raise _HttpError(400, f"bad id {raw!r}")

    # -- handlers ----------------------------------------------------------------
    def _submit(self, body: Optional[Dict]) -> Tuple[int, Any]:
        if not isinstance(body, dict):
            raise _HttpError(400, "job spec body required")
        if "requirements" not in body or "base_duration" not in body:
            raise _HttpError(
                400, "job spec needs 'requirements' and 'base_duration'"
            )
        try:
            job_id = self.service.submit(body)
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad job spec: {exc}")
        return 201, {"job_id": job_id}

    def _job_status(self, job_id: int) -> Tuple[int, Any]:
        try:
            record = self.service.ledger.record(job_id)
        except KeyError:
            raise _HttpError(404, f"job {job_id} not found")
        return 200, record.as_dict()

    def _list_jobs(self, query: Dict[str, str]) -> Tuple[int, Any]:
        status: Optional[JobStatus] = None
        if "status" in query:
            try:
                status = JobStatus(query["status"].upper())
            except ValueError:
                raise _HttpError(400, f"unknown status {query['status']!r}")
        records = self.service.ledger.records(status)
        return 200, {"jobs": [r.as_dict() for r in records]}

    def _cancel(self, job_id: int) -> Tuple[int, Any]:
        try:
            self.service.cancel(job_id)
        except KeyError:
            raise _HttpError(404, f"job {job_id} not found")
        except CancelError as exc:
            raise _HttpError(409, str(exc))
        return 200, self.service.ledger.record(job_id).as_dict()

    def _metrics(
        self, query: Dict[str, str], headers: Dict[str, str]
    ) -> Tuple[int, Any]:
        # Content negotiation: JSON snapshot by default; the Prometheus
        # text exposition for scrapers (Accept: text/plain, like a stock
        # Prometheus agent sends) or explicitly via ?format=prom
        accept = headers.get("accept", "")
        wants_text = query.get("format") == "prom" or (
            "text/plain" in accept and "application/json" not in accept
        )
        if wants_text:
            return 200, self._prometheus_text()
        metrics = self.service.metrics
        counts = self.service.ledger.counts()
        payload: Dict[str, Any] = {
            "now": self.service.clock.now,
            "queue_depth": self.service.queue_depth(),
            "running": self.service.running_jobs(),
            "jobs": {status.value: n for status, n in counts.items() if n},
        }
        if metrics is not None:
            payload["monitors"] = metrics.snapshot(now=self.service.clock.now)
        return 200, payload

    def _prometheus_text(self) -> str:
        from ..obs.prom import render_prometheus

        now = self.service.clock.now
        metrics = self.service.metrics
        body = (
            render_prometheus(metrics, now=now) if metrics is not None else ""
        )
        # instantaneous service gauges, present even without a registry
        counts = self.service.ledger.counts()
        extra = [
            "# TYPE repro_service_queue_depth_current gauge",
            f"repro_service_queue_depth_current {self.service.queue_depth()}",
            "# TYPE repro_service_running_jobs gauge",
            f"repro_service_running_jobs {self.service.running_jobs()}",
            "# TYPE repro_service_jobs gauge",
        ]
        extra.extend(
            f'repro_service_jobs{{status="{status.value}"}} {n}'
            for status, n in sorted(counts.items(), key=lambda kv: kv[0].value)
            if n
        )
        return body + "\n".join(extra) + "\n"

    def _fail_node(self, node_id: int) -> Tuple[int, Any]:
        if node_id not in self.service.grid_nodes:
            raise _HttpError(404, f"node {node_id} not found or not alive")
        lost = self.service.fail_node(node_id)
        return 200, {"node_id": node_id, "jobs_lost": lost}
