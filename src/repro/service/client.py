"""Typed synchronous client for the gateway's JSON/REST API.

Built on :mod:`http.client` (stdlib, blocking) so callers — the replay
harness, the CI smoke test, a user shell — need no asyncio of their own.
Each call opens one connection, matching the gateway's
``Connection: close`` responses.  Status strings coming back over the
wire are parsed into :class:`~repro.service.ledger.JobStatus`, so client
code compares enums, not strings.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from ..model.job import Job
from ..workload.trace import job_to_dict
from .ledger import JobStatus, TERMINAL_STATES

__all__ = ["JobView", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the gateway."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass(frozen=True)
class JobView:
    """One job's ledger record, as seen over the wire."""

    job_id: int
    status: JobStatus
    node_id: Optional[int]
    attempts: int
    submitted_at: float
    updated_at: float
    detail: str = ""

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobView":
        return cls(
            job_id=int(data["job_id"]),
            status=JobStatus(data["status"]),
            node_id=data.get("node_id"),
            attempts=int(data.get("attempts", 0)),
            submitted_at=float(data.get("submitted_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
            detail=data.get("detail", "") or "",
        )


class ServiceClient:
    """Blocking client bound to one gateway base URL."""

    def __init__(self, url: str, timeout: float = 10.0):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// urls supported, got {url!r}")
        netloc = parsed.netloc or parsed.path  # allow bare "host:port"
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Any:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            data = json.loads(raw) if raw else None
            if response.status >= 400:
                message = (
                    data.get("error", raw.decode(errors="replace"))
                    if isinstance(data, dict)
                    else raw.decode(errors="replace")
                )
                raise ServiceError(response.status, message)
            return data
        finally:
            conn.close()

    # -- API ---------------------------------------------------------------------
    def submit(self, job: Union[Job, Dict[str, Any]]) -> int:
        """Submit a job (a :class:`Job` or its trace-dict form); returns its id."""
        spec = job_to_dict(job) if isinstance(job, Job) else job
        return int(self._request("POST", "/jobs", spec)["job_id"])

    def status(self, job_id: int) -> JobView:
        return JobView.from_dict(self._request("GET", f"/jobs/{job_id}"))

    def cancel(self, job_id: int) -> JobView:
        return JobView.from_dict(self._request("DELETE", f"/jobs/{job_id}"))

    def jobs(self, status: Optional[JobStatus] = None) -> List[JobView]:
        path = "/jobs"
        if status is not None:
            path += f"?status={status.value}"
        return [
            JobView.from_dict(item)
            for item in self._request("GET", path)["jobs"]
        ]

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def fail_node(self, node_id: int) -> List[int]:
        """Chaos hook: crash one grid node; returns the lost job ids."""
        return self._request("POST", f"/nodes/{node_id}/fail")["jobs_lost"]

    def wait(
        self,
        job_ids: Iterable[int],
        timeout: float = 60.0,
        poll: float = 0.05,
    ) -> Dict[int, JobView]:
        """Block until every job reaches a terminal state (or timeout).

        Raises :class:`TimeoutError` naming the stragglers; wall-clock
        timeout, independent of the service's dilated model clock.
        """
        pending = set(job_ids)
        done: Dict[int, JobView] = {}
        deadline = time.monotonic() + timeout
        while pending:
            for job_id in sorted(pending):
                view = self.status(job_id)
                if view.terminal:
                    done[job_id] = view
                    pending.discard(job_id)
            if pending:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"{len(pending)} jobs not terminal after "
                        f"{timeout}s: {sorted(pending)[:5]}"
                    )
                time.sleep(poll)
        return done
