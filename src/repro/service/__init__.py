"""repro.service — the live job-submission gateway over the protocol stack.

The batch simulator and this service share every protocol component
(overlay, heartbeat engine, matchmakers, retry policy); what differs is the
clock they run on and where job state lives:

* :mod:`repro.service.aclock` — the wall-clock backend of the
  :class:`~repro.sim.clock.Clock` seam (asyncio, with time dilation);
* :mod:`repro.service.ledger` — the persistent job ledger (sqlite WAL,
  pluggable backend) whose status state machine is the single source of
  truth for job lifecycle;
* :mod:`repro.service.core` — :class:`GridService`, the clock-agnostic
  engine wiring matchmaker + aggregation + heartbeat + ledger together;
* :mod:`repro.service.gateway` — the asyncio JSON/REST front end
  (``python -m repro.service serve``);
* :mod:`repro.service.client` — the typed client library;
* :mod:`repro.service.replay` — record/replay of workload traces against
  a live gateway (``python -m repro.service replay``).
"""

from .aclock import AsyncioClock
from .client import JobView, ServiceClient, ServiceError
from .core import CancelError, GridService, ServiceConfig
from .gateway import Gateway
from .ledger import (
    TERMINAL_STATES,
    IllegalTransition,
    JobLedger,
    JobRecord,
    JobStatus,
    LedgerBackend,
    MemoryBackend,
    SqliteBackend,
    open_ledger,
)

__all__ = [
    "AsyncioClock",
    "CancelError",
    "Gateway",
    "GridService",
    "IllegalTransition",
    "JobLedger",
    "JobRecord",
    "JobStatus",
    "JobView",
    "LedgerBackend",
    "MemoryBackend",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SqliteBackend",
    "TERMINAL_STATES",
    "open_ledger",
]
