"""The wall-clock backend of the :class:`~repro.sim.clock.Clock` seam.

:class:`AsyncioClock` maps *model* time onto an asyncio event loop's
monotonic clock through a **dilation factor**: ``dilation`` model seconds
pass per wall-clock second.  At ``dilation=1`` the service runs in real
time; at ``dilation=1000`` a 60-second heartbeat period fires every 60 ms,
which is what lets the integration tests drive a full workload — heartbeat
rounds, retry backoffs, job executions — through the *unchanged* protocol
code in tens of milliseconds.

Only this module (and the rest of :mod:`repro.service`) touches asyncio;
the protocol modules import the seam, never the loop.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from ..sim.clock import CallbackHandle, Clock

__all__ = ["AsyncioClock"]


class AsyncioClock(Clock):
    """Model time = ``origin + (loop.time() - t0) * dilation``.

    ``origin`` seeds the model clock, letting a restarted service resume
    *after* the times already persisted in its ledger instead of rewinding
    to zero (ledger timestamps are model-time and must stay monotonic
    across restarts).
    """

    __slots__ = ("_loop", "dilation", "_t0", "_origin")

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        dilation: float = 1.0,
        origin: float = 0.0,
    ):
        if dilation <= 0:
            raise ValueError(f"dilation must be positive, got {dilation!r}")
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self.dilation = float(dilation)
        self._t0 = self._loop.time()
        self._origin = float(origin)

    @property
    def now(self) -> float:
        return self._origin + (self._loop.time() - self._t0) * self.dilation

    def schedule_callback(
        self, delay: float, fn: Callable[[], Any]
    ) -> CallbackHandle:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        timer = self._loop.call_later(delay / self.dilation, fn)
        return CallbackHandle(timer.cancel)
