"""Configuration dataclasses for the two experiment families."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..can.heartbeat import HeartbeatScheme
from ..model.contention import ContentionModel
from ..workload.presets import WorkloadPreset
from .faults import FaultPlan

__all__ = ["MatchmakingConfig", "ChurnConfig"]


@dataclass(frozen=True)
class MatchmakingConfig:
    """A load-balancing run: workload preset + matchmaker + knobs."""

    preset: WorkloadPreset
    scheme: str = "can-het"  # can-het | can-hom | central
    #: Equation 4's SF; the paper treats it as a tuned parameter.  4.0 keeps
    #: jobs pushing until the far-out node count is genuinely small, which
    #: is where can-het's wait-time CDF meets the centralized baseline
    stopping_factor: float = 4.0
    max_push_hops: int = 64
    contention: ContentionModel = field(default_factory=ContentionModel)
    #: aggregation warm-up rounds before the first job arrives
    aggregation_warmup_rounds: int = 5
    #: ablation switches (only meaningful for can-het)
    use_acceptable_nodes: bool = True
    use_dominant_ce: bool = True
    use_virtual_dimension: bool = True
    #: stream wait/turnaround samples into constant-memory quantile
    #: sketches instead of per-job arrays (million-job workloads); the
    #: default keeps the exact arrays so seeded goldens stay byte-identical
    stream_waits: bool = False
    #: overlay substrate backing the matchmakers ("can", "chord", or any
    #: :func:`repro.overlay.register_substrate` name); "central" ignores it
    substrate: str = "can"

    def __post_init__(self) -> None:
        if self.scheme not in ("can-het", "can-hom", "central"):
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if not self.substrate:
            raise ValueError("substrate must be a registered substrate name")
        if self.max_push_hops <= 0:
            raise ValueError("max_push_hops must be positive")
        if self.aggregation_warmup_rounds < 0:
            raise ValueError("warmup rounds must be non-negative")

    def with_scheme(self, scheme: str) -> "MatchmakingConfig":
        return replace(self, scheme=scheme)


@dataclass(frozen=True)
class ChurnConfig:
    """A maintenance-protocol run: population + churn rate + scheme."""

    initial_nodes: int = 1000
    gpu_slots: int = 2  # 2 -> 11 CAN dimensions
    scheme: HeartbeatScheme = HeartbeatScheme.VANILLA
    heartbeat_period: float = 60.0
    failure_timeout_periods: float = 2.5
    #: mean gap between churn events; < period means simultaneous events
    event_gap_mean: float = 15.0
    #: 'fail' = silent crashes (high-churn resilience experiments);
    #: 'graceful' = clean leaves with hand-off
    leave_mode: str = "fail"
    #: simulated end time of stage 2 (stage 1 joins happen at t=0)
    duration: float = 30_000.0
    #: stats window opens after this many settle rounds post-bootstrap
    warmup_rounds: int = 3
    seed: int = 20110926
    gap_retry_rounds: int = 2
    periodic_gap_check_every: int = 0
    #: adaptive's broken-link detector: the real local zone-coverage check
    #: ("coverage") or the idealised ground-truth comparison ("oracle")
    detection: str = "coverage"
    #: probability that any single heartbeat delivery is lost in flight
    #: (fault injection; 0 keeps the loss-free deterministic path)
    message_loss: float = 0.0
    #: heartbeat engine: "object" (dict-per-node reference implementation)
    #: or "array" (struct-of-arrays batched round kernels, same results);
    #: which engines exist depends on the substrate
    engine: str = "object"
    #: overlay substrate under churn ("can", "chord", or any registered name)
    substrate: str = "can"
    #: run the full ground-truth + ledger invariant checker every N churn
    #: events mid-run (0 = only when the caller asks); catches structural
    #: corruption at the event that introduced it instead of at the end
    invariant_check_every: int = 0
    #: scripted adversity (crash/join bursts, diurnal curve, network
    #: model) layered onto the background churn; the empty default plan
    #: changes nothing
    plan: FaultPlan = FaultPlan()

    def __post_init__(self) -> None:
        from ..overlay import get_substrate

        if self.initial_nodes < 2:
            raise ValueError("need at least two nodes")
        get_substrate(self.substrate).check_engine(self.engine)
        if self.invariant_check_every < 0:
            raise ValueError("invariant_check_every must be non-negative")
        if self.leave_mode not in ("fail", "graceful"):
            raise ValueError(f"unknown leave_mode {self.leave_mode!r}")
        if self.event_gap_mean <= 0 or self.heartbeat_period <= 0:
            raise ValueError("periods must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.message_loss <= 1.0:
            raise ValueError("message_loss must be in [0, 1]")
        if self.message_loss > 0.0 and not self.plan.empty:
            if self.plan.network_spec() is not None:
                raise ValueError(
                    "set loss via message_loss or the plan's network, not both"
                )

    @property
    def dims(self) -> int:
        return 4 + 3 * self.gpu_slots + 1

    def with_scheme(self, scheme: HeartbeatScheme) -> "ChurnConfig":
        return replace(self, scheme=scheme)
