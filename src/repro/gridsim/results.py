"""Result containers for the experiment harness (plain-data, serialisable)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..can.stats import RateSummary
from ..sched.base import MatchmakingStats

__all__ = ["MatchmakingResult", "ChurnResult"]


@dataclass
class MatchmakingResult:
    """Outcome of one load-balancing simulation run."""

    scheme: str
    preset_name: str
    mean_interarrival: float
    constraint_ratio: float
    wait_times: np.ndarray  # seconds, one entry per started job
    turnarounds: np.ndarray
    unplaced_jobs: int
    lost_jobs: int
    matchmaking: MatchmakingStats
    sim_end_time: float
    jobs_submitted: int
    #: jobs that exhausted their resubmission budget (0 without churn).
    #: Every submitted job lands in exactly one bucket:
    #: ``len(wait_times) + unplaced + lost + abandoned == jobs_submitted``
    #: (asserted by repro.gridsim.invariants.check_matchmaking_accounting).
    abandoned_jobs: int = 0

    def summary(self) -> Dict[str, float]:
        w = self.wait_times
        if w.size == 0:
            return {"jobs": 0.0}
        return {
            "jobs": float(w.size),
            "mean_wait": float(w.mean()),
            "p50_wait": float(np.percentile(w, 50)),
            "p80_wait": float(np.percentile(w, 80)),
            "p90_wait": float(np.percentile(w, 90)),
            "p95_wait": float(np.percentile(w, 95)),
            "p99_wait": float(np.percentile(w, 99)),
            "max_wait": float(w.max()),
            "zero_wait_fraction": float((w <= 1e-9).mean()),
            "mean_push_hops": self.matchmaking.mean_push_hops,
        }


@dataclass
class ChurnResult:
    """Outcome of one maintenance-protocol simulation run."""

    scheme: str
    nodes: int
    dims: int
    broken_links_times: np.ndarray
    broken_links_values: np.ndarray
    rates: RateSummary
    events: Dict[str, int]
    final_population: int

    @property
    def final_broken_links(self) -> float:
        return float(self.broken_links_values[-1]) if self.broken_links_values.size else 0.0

    def steady_state_broken_links(self, tail_fraction: float = 0.25) -> float:
        """Mean broken links over the trailing window (Figure 7's plateau)."""
        v = self.broken_links_values
        if v.size == 0:
            return 0.0
        k = max(1, int(v.size * tail_fraction))
        return float(v[-k:].mean())
