"""Result containers for the experiment harness (plain-data, serialisable)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..can.stats import RateSummary
from ..obs.sketch import QuantileSketch
from ..sched.base import MatchmakingStats
from .metrics import cdf_at

__all__ = ["MatchmakingResult", "ChurnResult"]


@dataclass
class MatchmakingResult:
    """Outcome of one load-balancing simulation run."""

    scheme: str
    preset_name: str
    mean_interarrival: float
    constraint_ratio: float
    wait_times: np.ndarray  # seconds, one entry per started job
    turnarounds: np.ndarray
    unplaced_jobs: int
    lost_jobs: int
    matchmaking: MatchmakingStats
    sim_end_time: float
    jobs_submitted: int
    #: jobs that exhausted their resubmission budget (0 without churn).
    #: Every submitted job lands in exactly one bucket:
    #: ``started + unplaced + lost + abandoned == jobs_submitted``
    #: (asserted by repro.gridsim.invariants.check_matchmaking_accounting).
    abandoned_jobs: int = 0
    #: streaming alternatives to the sample arrays, populated by every run
    #: (one insert per finished job); the *only* record under
    #: ``MatchmakingConfig.stream_waits``, where the arrays stay empty
    wait_sketch: Optional[QuantileSketch] = None
    turnaround_sketch: Optional[QuantileSketch] = None
    substrate: str = "can"

    @property
    def started(self) -> int:
        """Jobs that began executing — the accounting-identity bucket.

        Reads the exact array when present, the streaming sketch
        otherwise (a job finishes at most once, so the sketch count is
        the same multiset).
        """
        if self.wait_times.size:
            return int(self.wait_times.size)
        if self.wait_sketch is not None:
            return self.wait_sketch.n
        return 0

    def wait_cdf_at(self, thresholds: Sequence[float]) -> np.ndarray:
        """Fraction of started jobs with wait <= each threshold.

        Exact over ``wait_times`` when the array is populated (small
        seeded runs — goldens stay byte-identical); estimated from the
        constant-memory sketch under ``stream_waits``.
        """
        if self.wait_times.size:
            return cdf_at(self.wait_times, thresholds)
        if self.wait_sketch is not None and self.wait_sketch.n:
            return self.wait_sketch.cdf(thresholds)
        return np.zeros(len(thresholds))

    def summary(self) -> Dict[str, float]:
        w = self.wait_times
        if w.size == 0:
            if self.wait_sketch is not None and self.wait_sketch.n:
                sk = self.wait_sketch
                return {
                    "jobs": float(sk.n),
                    "mean_wait": sk.mean,
                    "p50_wait": sk.quantile(0.5),
                    "p80_wait": sk.quantile(0.8),
                    "p90_wait": sk.quantile(0.9),
                    "p95_wait": sk.quantile(0.95),
                    "p99_wait": sk.quantile(0.99),
                    "max_wait": sk.max,
                    "zero_wait_fraction": float(sk.cdf([1e-9])[0]),
                    "mean_push_hops": self.matchmaking.mean_push_hops,
                }
            return {"jobs": 0.0}
        return {
            "jobs": float(w.size),
            "mean_wait": float(w.mean()),
            "p50_wait": float(np.percentile(w, 50)),
            "p80_wait": float(np.percentile(w, 80)),
            "p90_wait": float(np.percentile(w, 90)),
            "p95_wait": float(np.percentile(w, 95)),
            "p99_wait": float(np.percentile(w, 99)),
            "max_wait": float(w.max()),
            "zero_wait_fraction": float((w <= 1e-9).mean()),
            "mean_push_hops": self.matchmaking.mean_push_hops,
        }


@dataclass
class ChurnResult:
    """Outcome of one maintenance-protocol simulation run."""

    scheme: str
    nodes: int
    dims: int
    broken_links_times: np.ndarray
    broken_links_values: np.ndarray
    rates: RateSummary
    events: Dict[str, int]
    final_population: int
    substrate: str = "can"

    @property
    def final_broken_links(self) -> float:
        return float(self.broken_links_values[-1]) if self.broken_links_values.size else 0.0

    def steady_state_broken_links(self, tail_fraction: float = 0.25) -> float:
        """Mean broken links over the trailing window (Figure 7's plateau)."""
        v = self.broken_links_values
        if v.size == 0:
            return 0.0
        k = max(1, int(v.size * tail_fraction))
        return float(v[-k:].mean())
