"""Churn simulation driving the maintenance protocol (Figures 7 and 8).

Two stages, as in Section V-B: first ``initial_nodes`` join sequentially;
then join and leave events occur with equal probability, with the mean gap
between events either longer than a heartbeat period (no simultaneous
events — no scheme suffers broken links) or shorter (high churn — the
regime where the schemes differ).  Heartbeat rounds tick throughout;
message costs and broken links are recorded by the protocol engine.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..can.heartbeat import ProtocolConfig
from ..can.space import ResourceSpace
from ..obs.registry import MetricsRegistry
from ..overlay import get_substrate
from ..sim.core import Environment
from ..sim.rng import RngRegistry
from ..workload.nodes import NodeDistribution, generate_node_specs
from .config import ChurnConfig
from .faults import ChurnFaultDriver
from .results import ChurnResult

__all__ = ["ChurnSimulation"]


class ChurnSimulation:
    """One maintenance-protocol run under configurable churn."""

    def __init__(
        self,
        config: ChurnConfig,
        node_dist: Optional[NodeDistribution] = None,
        tracer=None,
        profiler=None,
    ):
        self.config = config
        self.rngs = RngRegistry(config.seed)
        self.tracer = tracer
        #: optional repro.obs.Profiler threaded into the kernel's event
        #: dispatch and the heartbeat protocol's round phases
        self.profiler = profiler
        self.env = Environment(tracer=tracer, profiler=profiler)
        self.space = ResourceSpace(gpu_slots=config.gpu_slots)
        self.substrate = get_substrate(config.substrate)
        self.overlay = self.substrate.make_overlay(self.space)
        self.protocol = self.substrate.make_protocol(
            self.overlay,
            ProtocolConfig(
                scheme=config.scheme,
                period=config.heartbeat_period,
                failure_timeout_periods=config.failure_timeout_periods,
                gap_retry_rounds=config.gap_retry_rounds,
                periodic_gap_check_every=config.periodic_gap_check_every,
                detection=config.detection,
            ),
            engine=config.engine,
            tracer=tracer,
            profiler=profiler,
        )
        if config.message_loss > 0.0:
            self.protocol.set_message_loss(
                config.message_loss, self.rngs.stream("hb-loss")
            )
        #: scripted adversity: installed once, before any process runs, so
        #: burst callbacks and the network model are part of the seeded run
        self.fault_driver: Optional[ChurnFaultDriver] = None
        if not config.plan.empty:
            self.fault_driver = ChurnFaultDriver(self, config.plan)
            self.fault_driver.install()
        self.metrics = MetricsRegistry()
        proto_scope = self.metrics.scope("protocol")
        proto_scope.register("broken_links", self.protocol.broken_links)
        self._population = proto_scope.timeweighted(
            "population", value=0.0
        )
        self._node_dist = node_dist or NodeDistribution()
        self._next_id = itertools.count()
        self._spec_rng = self.rngs.stream("nodes")
        self._virtual_rng = self.rngs.stream("virtual")
        self._event_rng = self.rngs.stream("events")
        self._events_since_check = 0

    # -- node material ---------------------------------------------------------------
    def _new_coord(self):
        spec = generate_node_specs(
            1,
            self.config.gpu_slots,
            self._spec_rng,
            self._node_dist,
            first_id=next(self._next_id),
        )[0]
        return spec.node_id, self.space.node_coordinate(
            spec, float(self._virtual_rng.random())
        )

    # -- stages -----------------------------------------------------------------------
    def bootstrap_population(self) -> None:
        """Stage 1: sequential joins of the initial population."""
        node_id, coord = self._new_coord()
        self.protocol.bootstrap(node_id, coord)
        for _ in range(self.config.initial_nodes - 1):
            node_id, coord = self._new_coord()
            self.protocol.join(node_id, coord, now=0.0)
        self._population.update(0.0, float(len(self.overlay.alive_ids())))

    def _round_process(self):
        cfg = self.config
        settle = cfg.warmup_rounds
        while self.env.now < cfg.duration:
            yield self.env.timeout(cfg.heartbeat_period)
            self.protocol.run_round(self.env.now)
            if settle > 0:
                settle -= 1
                if settle == 0:
                    # open the measurement window after the CAN has settled
                    self.protocol.stats.reset_window(
                        self.env.now, len(self.overlay.alive_ids())
                    )

    def _event_process(self):
        cfg = self.config
        warmup_time = cfg.heartbeat_period * (cfg.warmup_rounds + 1)
        yield self.env.timeout(warmup_time)
        driver = self.fault_driver
        while self.env.now < cfg.duration:
            gap = float(self._event_rng.exponential(cfg.event_gap_mean))
            if driver is not None:
                # diurnal curve: scale the gap, never the draw — the RNG
                # stream is identical with and without the modulation
                gap *= driver.gap_multiplier(self.env.now)
            yield self.env.timeout(max(gap, 1e-6))
            if self.env.now >= cfg.duration:
                return
            self._one_event()

    def _one_event(self) -> None:
        alive = self.overlay.alive_ids()
        join = self._event_rng.random() < 0.5
        if not join and len(alive) <= max(4, self.config.initial_nodes // 4):
            join = True  # keep the population from collapsing
        if join:
            node_id, coord = self._new_coord()
            self.protocol.join(node_id, coord, now=self.env.now)
        else:
            victim = int(alive[int(self._event_rng.integers(len(alive)))])
            if self.config.leave_mode == "fail":
                self.protocol.fail(victim, now=self.env.now)
            else:
                self.protocol.graceful_leave(victim, now=self.env.now)
        self._population.update(
            self.env.now, float(len(self.overlay.alive_ids()))
        )
        every = self.config.invariant_check_every
        if every:
            self._events_since_check += 1
            if self._events_since_check >= every:
                self._events_since_check = 0
                self.check_invariants()

    def routing_success_rate(self, samples: int = 200) -> float:
        """Fraction of believed-state routes that deliver.

        Call after :meth:`run`: it probes the *current* believed state with
        random (source, target) pairs, turning the broken-link count into
        its operational consequence — undeliverable lookups.  The routing
        rule is the substrate's own (greedy zone descent for CAN, finger
        hops for Chord).
        """
        route_on_beliefs = self.substrate.route_on_beliefs

        if samples <= 0:
            raise ValueError("samples must be positive")
        rng = self.rngs.stream("routing-probe")
        alive = sorted(self.overlay.alive_ids())
        if not alive:
            raise RuntimeError("no alive nodes to probe")
        delivered = 0
        for _ in range(samples):
            start = int(alive[int(rng.integers(len(alive)))])
            # Sample the full unit cube, then clamp into the half-open
            # valid interior — scaling the sample range (as this once did)
            # leaves the outermost sliver of every dimension unprobed.
            point = self.space.clamp_point(rng.random(self.space.dims))
            if route_on_beliefs(self.protocol, start, point).delivered:
                delivered += 1
        return delivered / samples

    def check_invariants(self) -> None:
        """Audit overlay/protocol/ledger consistency (raises on violation)."""
        from .invariants import check_churn_invariants

        check_churn_invariants(self)

    # -- run ----------------------------------------------------------------------------
    def run(self) -> ChurnResult:
        self.bootstrap_population()
        self.env.process(self._round_process(), name="heartbeat-rounds")
        self.env.process(self._event_process(), name="churn-events")
        self.env.run(until=self.config.duration + self.config.heartbeat_period)
        series = self.protocol.broken_links
        rates = self.protocol.stats.rates(self.env.now)
        return ChurnResult(
            scheme=self.config.scheme.value,
            nodes=self.config.initial_nodes,
            dims=self.config.dims,
            broken_links_times=series.times,
            broken_links_values=series.values,
            rates=rates,
            events=dict(self.protocol.events),
            final_population=len(self.overlay.alive_ids()),
            substrate=self.config.substrate,
        )
