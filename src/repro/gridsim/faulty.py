"""Matchmaking under churn: the grid keeps scheduling while nodes come and go.

The paper evaluates load balancing (Figures 5/6) on a stable population and
failure resilience (Figures 7/8) with no workload.  This module composes the
two — the natural next experiment for the system, and the regime a real
desktop grid lives in:

* nodes crash at a configurable rate; their running and queued jobs are
  lost, detected after a delay (the failure timeout), and resubmitted
  through the matchmaker;
* fresh nodes join, extending the CAN and the eligible population;
* the aggregation engine tracks the changing topology.

Zone hand-off is taken from the authoritative overlay (the maintenance
protocol's job — measured separately in Figure 7); what this simulation adds
is the *scheduling* consequence of churn: lost work, resubmission latency,
and matchmaking quality over a shifting population.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..can.overlay import OverlayError
from ..model.job import Job
from ..model.node import GridNode
from ..workload.jobs import JobDistribution
from ..workload.nodes import NodeDistribution, generate_node_specs
from .config import MatchmakingConfig
from .results import MatchmakingResult
from .simulation import GridSimulation

__all__ = ["FaultyGridConfig", "FaultyGridSimulation", "FaultyGridResult"]


@dataclass(frozen=True)
class FaultyGridConfig:
    """Churn knobs layered on a matchmaking configuration."""

    matchmaking: MatchmakingConfig
    #: mean time between node failures, across the whole grid (seconds)
    mean_time_between_failures: float = 300.0
    #: mean time between node joins (seconds); equal rates keep the
    #: population in dynamic equilibrium, as in the paper's Section V-B
    mean_time_between_joins: float = 300.0
    #: how long until a failure is noticed and its jobs resubmitted
    detection_delay: float = 150.0
    #: placement retry backoff when no capable node is currently alive
    retry_delay: float = 300.0
    max_placement_attempts: int = 5
    #: never let churn shrink the grid below this fraction of the start size
    min_population_fraction: float = 0.5

    def __post_init__(self) -> None:
        if min(
            self.mean_time_between_failures,
            self.mean_time_between_joins,
            self.detection_delay,
            self.retry_delay,
        ) <= 0:
            raise ValueError("all churn timings must be positive")
        if not 0 < self.min_population_fraction <= 1:
            raise ValueError("min_population_fraction must be in (0, 1]")
        if self.max_placement_attempts < 1:
            raise ValueError("need at least one placement attempt")


@dataclass
class FaultyGridResult:
    """A matchmaking result plus the churn ledger."""

    base: MatchmakingResult
    failures: int
    joins: int
    jobs_lost: int
    jobs_resubmitted: int
    jobs_abandoned: int  # exceeded the retry budget
    final_population: int

    def summary(self) -> Dict[str, float]:
        s = self.base.summary()
        s.update(
            failures=float(self.failures),
            joins=float(self.joins),
            jobs_lost=float(self.jobs_lost),
            jobs_resubmitted=float(self.jobs_resubmitted),
            jobs_abandoned=float(self.jobs_abandoned),
        )
        return s


class FaultyGridSimulation(GridSimulation):
    """GridSimulation plus failures, joins, and job resubmission."""

    def __init__(
        self,
        config: FaultyGridConfig,
        node_dist: Optional[NodeDistribution] = None,
        job_dist: Optional[JobDistribution] = None,
        tracer=None,
    ):
        super().__init__(config.matchmaking, node_dist, job_dist, tracer=tracer)
        self.fault_config = config
        self._node_dist = node_dist or NodeDistribution()
        self._next_node_id = itertools.count(
            max(self.grid_nodes) + 1 if self.grid_nodes else 0
        )
        self.failures = 0
        self.joins = 0
        self.jobs_lost = 0
        self.jobs_resubmitted = 0
        self.jobs_abandoned = 0
        self._attempts: Dict[int, int] = {}
        self._churn_counter = self.metrics.scope("grid").counter("churn")

    # ------------------------------------------------------------------ churn --
    def _churn_processes(self):
        cfg = self.fault_config
        fail_rng = self.rngs.stream("failures")
        join_rng = self.rngs.stream("joins")

        # Waits are chunked so the process notices promptly when the
        # workload has drained and stops, instead of holding the clock
        # hostage until a far-future churn event.
        check_interval = 600.0

        def wait(gap):
            deadline = self.env.now + max(gap, 1e-6)
            while self.env.now < deadline and self._work_remaining():
                yield self.env.timeout(min(check_interval, deadline - self.env.now))
            return self._work_remaining() and self.env.now >= deadline

        def failures():
            while self._work_remaining():
                gap = float(fail_rng.exponential(cfg.mean_time_between_failures))
                fire = yield from wait(gap)
                if fire:
                    self._fail_random_node(fail_rng)

        def joins():
            while self._work_remaining():
                gap = float(join_rng.exponential(cfg.mean_time_between_joins))
                fire = yield from wait(gap)
                if fire:
                    self._join_new_node(join_rng)

        return failures(), joins()

    def _fail_random_node(self, rng: np.random.Generator) -> None:
        cfg = self.fault_config
        alive = [nid for nid in self.overlay.alive_ids()]
        floor = int(self.config.preset.nodes * cfg.min_population_fraction)
        if len(alive) <= floor:
            return
        victim_id = int(alive[int(rng.integers(len(alive)))])
        victim = self.grid_nodes[victim_id]
        lost = victim.fail()
        self.overlay.fail(victim_id)
        self.overlay.claim_zones(victim_id)
        del self.grid_nodes[victim_id]
        self.failures += 1
        self.jobs_lost += len(lost)
        self._churn_counter.add("failures")
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "grid.crash", node=victim_id, jobs_lost=len(lost)
            )
            for job in lost:
                self.tracer.emit(
                    self.env.now, "grid.job_lost", job=job.job_id, node=victim_id
                )
        for job in lost:
            self._schedule_resubmission(job)

    def _join_new_node(self, rng: np.random.Generator) -> None:
        spec = generate_node_specs(
            1,
            self.config.preset.gpu_slots,
            rng,
            self._node_dist,
            first_id=next(self._next_node_id),
        )[0]
        coord = self.space.node_coordinate(spec, float(rng.random()))
        try:
            self.overlay.add_node(spec.node_id, coord)
        except OverlayError:
            return  # coordinate collision or zone in limbo; skip this event
        self.grid_nodes[spec.node_id] = GridNode(
            spec, self.env, contention=self.config.contention
        )
        self.joins += 1
        self._churn_counter.add("joins")
        if self.tracer is not None:
            self.tracer.emit(self.env.now, "grid.join", node=spec.node_id)

    # ------------------------------------------------------------------ jobs --
    def _schedule_resubmission(self, job: Job) -> None:
        cfg = self.fault_config
        job.enqueue_time = None
        job.start_time = None
        job.finish_time = None
        job.run_node_id = None
        self.env.schedule_callback(
            cfg.detection_delay, lambda j=job: self._resubmit(j)
        )

    def _resubmit(self, job: Job) -> None:
        cfg = self.fault_config
        attempts = self._attempts.get(job.job_id, 0) + 1
        self._attempts[job.job_id] = attempts
        if attempts > cfg.max_placement_attempts:
            self.jobs_abandoned += 1
            self._churn_counter.add("jobs_abandoned")
            if self.tracer is not None:
                self.tracer.emit(
                    self.env.now,
                    "grid.job_abandoned",
                    job=job.job_id,
                    attempts=attempts - 1,
                )
            return
        node = self.matchmaker.place(job)
        if node is None:
            self.env.schedule_callback(
                cfg.retry_delay, lambda j=job: self._resubmit(j)
            )
            return
        self.jobs_resubmitted += 1
        self._churn_counter.add("jobs_resubmitted")
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "grid.job_resubmit", job=job.job_id, attempt=attempts
            )
        node.submit(job)

    def _work_remaining(self) -> bool:
        if super()._work_remaining():
            return True
        # resubmissions still in flight?
        return any(
            j.run_node_id is None and self._attempts.get(j.job_id, 0) > 0
            and self._attempts[j.job_id] <= self.fault_config.max_placement_attempts
            for j in self.jobs
        )

    # ------------------------------------------------------------------ run --
    def run(self) -> FaultyGridResult:  # type: ignore[override]
        fail_proc, join_proc = self._churn_processes()
        self.env.process(fail_proc, name="failures")
        self.env.process(join_proc, name="joins")
        base = super().run()
        return FaultyGridResult(
            base=base,
            failures=self.failures,
            joins=self.joins,
            jobs_lost=self.jobs_lost,
            jobs_resubmitted=self.jobs_resubmitted,
            jobs_abandoned=self.jobs_abandoned,
            final_population=len(self.overlay.alive_ids()),
        )
