"""Matchmaking under churn: the grid keeps scheduling while nodes come and go.

The paper evaluates load balancing (Figures 5/6) on a stable population and
failure resilience (Figures 7/8) with no workload.  This module composes the
two — the regime a real desktop grid lives in:

* nodes crash at a configurable rate; their running and queued jobs are
  lost, *detected*, and resubmitted through the matchmaker under a
  :class:`~repro.gridsim.recovery.RetryPolicy` (exponential backoff with
  jitter, a per-job attempt budget, and a degraded expanding-ring search
  while the aggregates are stale);
* fresh nodes join, extending the CAN and the eligible population;
* the aggregation engine tracks the changing topology.

Failure detection comes in two modes.  The default, ``"protocol"``, runs a
real :class:`~repro.can.heartbeat.HeartbeatProtocol` alongside the
matchmaker: a crash is noticed when believers' heartbeat timeouts fire
(per-scheme — vanilla/compact/adaptive differ in how beliefs are
maintained), vacated zones recover through the split-tree take-over path,
and resubmission is triggered by the protocol's detection events.  The
legacy ``"fixed"`` mode models detection as a constant delay with
immediate zone hand-off — useful as a controlled baseline, and what this
simulation did before the protocol integration.

Scripted adversity (crash bursts, correlated zone failures, heartbeat
message loss) is layered on via :class:`~repro.gridsim.faults.FaultPlan`,
and :func:`~repro.gridsim.invariants.check_faulty_invariants` can audit
the run every few heartbeat rounds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from ..can.heartbeat import HeartbeatScheme, ProtocolConfig
from ..model.job import Job
from ..overlay import MaintenanceProtocol, SubstrateError, get_substrate
from ..model.node import GridNode
from ..sched.base import expanding_ring_search, fastest_dominant_clock
from ..workload.jobs import JobDistribution
from ..workload.nodes import NodeDistribution, generate_node_specs
from .config import MatchmakingConfig
from .faults import FaultInjector, FaultPlan
from .invariants import check_faulty_invariants, check_matchmaking_accounting
from .recovery import RecoveryTracker, RetryPolicy
from .results import MatchmakingResult
from .simulation import GridSimulation

__all__ = ["FaultyGridConfig", "FaultyGridSimulation", "FaultyGridResult"]


@dataclass(frozen=True)
class FaultyGridConfig:
    """Churn knobs layered on a matchmaking configuration."""

    matchmaking: MatchmakingConfig
    #: mean time between node failures, across the whole grid (seconds)
    mean_time_between_failures: float = 300.0
    #: mean time between node joins (seconds); equal rates keep the
    #: population in dynamic equilibrium, as in the paper's Section V-B
    mean_time_between_joins: float = 300.0
    #: "protocol": failures are detected by a live HeartbeatProtocol's
    #: timeouts and zones recover via take-over; "fixed": the legacy
    #: constant-delay detection model with immediate zone hand-off
    detection_mode: str = "protocol"
    #: fixed mode only: how long until a failure is noticed
    detection_delay: float = 150.0
    #: protocol mode: which heartbeat scheme maintains beliefs
    heartbeat_scheme: HeartbeatScheme = HeartbeatScheme.VANILLA
    #: protocol mode: silent periods before a neighbor is declared failed
    failure_timeout_periods: float = 2.5
    #: protocol mode: heartbeat engine ("object" or "array"); identical
    #: results, array scales to much larger populations
    engine: str = "object"
    #: resubmission backoff/budget policy
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: never let churn shrink the grid below this fraction of the start size
    min_population_fraction: float = 0.5
    #: scripted crash bursts and heartbeat message loss
    faults: FaultPlan = field(default_factory=FaultPlan)
    #: audit the simulation every N heartbeat rounds and once after the
    #: run (0 disables; fixed mode checks only at the end)
    invariant_check_every: int = 0

    def __post_init__(self) -> None:
        if min(
            self.mean_time_between_failures,
            self.mean_time_between_joins,
            self.detection_delay,
        ) <= 0:
            raise ValueError("all churn timings must be positive")
        if self.detection_mode not in ("protocol", "fixed"):
            raise ValueError(f"unknown detection_mode {self.detection_mode!r}")
        if not 0 < self.min_population_fraction <= 1:
            raise ValueError("min_population_fraction must be in (0, 1]")
        if self.invariant_check_every < 0:
            raise ValueError("invariant_check_every must be non-negative")
        get_substrate(self.matchmaking.substrate).check_engine(self.engine)
        # failure_timeout_periods is validated by ProtocolConfig; construct
        # one eagerly so a bad value fails at config time, not mid-run
        if self.detection_mode == "protocol":
            ProtocolConfig(
                scheme=self.heartbeat_scheme,
                failure_timeout_periods=self.failure_timeout_periods,
            )

    def with_scheme(self, scheme: HeartbeatScheme) -> "FaultyGridConfig":
        return replace(self, heartbeat_scheme=scheme)


@dataclass
class FaultyGridResult:
    """A matchmaking result plus the churn and recovery ledgers."""

    base: MatchmakingResult
    failures: int
    joins: int
    jobs_lost: int
    jobs_resubmitted: int
    jobs_abandoned: int  # exceeded the retry budget
    final_population: int
    #: crash -> first-detection latency, one sample per detected crash
    #: (constant in fixed mode; emergent from timeouts in protocol mode)
    detection_latencies: np.ndarray = field(
        default_factory=lambda: np.empty(0)
    )
    #: crash -> successful-resubmission latency, one sample per recovered job
    resubmission_latencies: np.ndarray = field(
        default_factory=lambda: np.empty(0)
    )

    def summary(self) -> Dict[str, float]:
        s = self.base.summary()
        s.update(
            failures=float(self.failures),
            joins=float(self.joins),
            jobs_lost=float(self.jobs_lost),
            jobs_resubmitted=float(self.jobs_resubmitted),
            jobs_abandoned=float(self.jobs_abandoned),
        )
        d, r = self.detection_latencies, self.resubmission_latencies
        if d.size:
            s["detection_latency_mean"] = float(d.mean())
            s["detection_latency_p95"] = float(np.percentile(d, 95))
        if r.size:
            s["resubmission_latency_mean"] = float(r.mean())
            s["resubmission_latency_p95"] = float(np.percentile(r, 95))
        return s


class FaultyGridSimulation(GridSimulation):
    """GridSimulation plus failures, joins, detection, and resubmission."""

    def __init__(
        self,
        config: FaultyGridConfig,
        node_dist: Optional[NodeDistribution] = None,
        job_dist: Optional[JobDistribution] = None,
        tracer=None,
        profiler=None,
    ):
        super().__init__(
            config.matchmaking,
            node_dist,
            job_dist,
            tracer=tracer,
            profiler=profiler,
        )
        self.fault_config = config
        self._node_dist = node_dist or NodeDistribution()
        self._next_node_id = itertools.count(
            max(self.grid_nodes) + 1 if self.grid_nodes else 0
        )
        self.failures = 0
        self.joins = 0
        self.jobs_lost = 0
        self.jobs_resubmitted = 0
        self.jobs_abandoned = 0
        self.tracker = RecoveryTracker()
        self._retry_rng = self.rngs.stream("retry")
        self._churn_counter = self.metrics.scope("grid").counter("churn")
        recovery_metrics = self.metrics.scope("recovery")
        self._recovery_counter = recovery_metrics.counter("events")
        #: streaming latency distributions (crash -> detection, crash ->
        #: successful resubmission) — constant memory regardless of churn
        self._detection_sketch = recovery_metrics.quantile_sketch(
            "detection_latency"
        )
        self._resubmission_sketch = recovery_metrics.quantile_sketch(
            "resubmission_latency"
        )
        self.protocol: Optional[MaintenanceProtocol] = None
        if config.detection_mode == "protocol":
            substrate = get_substrate(config.matchmaking.substrate)
            self.protocol = substrate.make_protocol(
                self.overlay,
                ProtocolConfig(
                    scheme=config.heartbeat_scheme,
                    period=config.matchmaking.preset.heartbeat_period,
                    failure_timeout_periods=config.failure_timeout_periods,
                ),
                engine=config.engine,
                tracer=tracer,
                profiler=profiler,
                metrics=self.metrics,
            )
            # the grid bootstraps its CAN outside the protocol (no join
            # message accounting wanted); adopt it in converged state
            self.protocol.adopt_overlay(0.0)
            self.protocol.on_failure_detected = self._on_node_detected
        self._injector = FaultInjector(self, config.faults)

    # ------------------------------------------------------------------ churn --
    def _churn_processes(self):
        cfg = self.fault_config
        fail_rng = self.rngs.stream("failures")
        join_rng = self.rngs.stream("joins")

        # Waits are chunked so the process notices promptly when the
        # workload has drained and stops, instead of holding the clock
        # hostage until a far-future churn event.
        check_interval = 600.0

        def wait(gap):
            deadline = self.env.now + max(gap, 1e-6)
            while self.env.now < deadline and self._work_remaining():
                yield self.env.timeout(min(check_interval, deadline - self.env.now))
            return self._work_remaining() and self.env.now >= deadline

        def failures():
            while self._work_remaining():
                gap = float(fail_rng.exponential(cfg.mean_time_between_failures))
                fire = yield from wait(gap)
                if fire:
                    self._fail_random_node(fail_rng)

        def joins():
            while self._work_remaining():
                gap = float(join_rng.exponential(cfg.mean_time_between_joins))
                fire = yield from wait(gap)
                if fire:
                    self._join_new_node(join_rng)

        return failures(), joins()

    def _heartbeat_process(self):
        """Protocol mode: tick heartbeat rounds next to the aggregation."""
        period = self.config.preset.heartbeat_period
        every = self.fault_config.invariant_check_every
        rounds = 0
        while self._work_remaining():
            yield self.env.timeout(period)
            self.protocol.run_round(self.env.now)
            rounds += 1
            if every and rounds % every == 0:
                check_faulty_invariants(self)

    def _fail_random_node(self, rng: np.random.Generator) -> None:
        cfg = self.fault_config
        alive = [nid for nid in self.overlay.alive_ids()]
        floor = int(self.config.preset.nodes * cfg.min_population_fraction)
        if len(alive) <= floor:
            return
        self._fail_node(int(alive[int(rng.integers(len(alive)))]))

    def _fail_node(self, victim_id: int) -> None:
        """Crash one node: jobs are lost, detection is set in motion."""
        now = self.env.now
        victim = self.grid_nodes.pop(victim_id)
        lost = victim.fail()
        self.failures += 1
        self.jobs_lost += len(lost)
        self._churn_counter.add("failures")
        self.tracker.node_crashed(victim_id, now)
        for job in lost:
            job.enqueue_time = None
            job.start_time = None
            job.finish_time = None
            job.run_node_id = None
            self.tracker.job_lost(job, victim_id, now)
        if self.tracer is not None:
            self.tracer.emit(
                now, "grid.crash", node=victim_id, jobs_lost=len(lost)
            )
            for job in lost:
                self.tracer.emit(
                    now, "grid.job_lost", job=job.job_id, node=victim_id
                )
        if self.protocol is not None:
            # zones linger as ghosts until believers time the victim out
            # and the take-over path claims them; detection arrives via
            # on_failure_detected
            self.protocol.fail(victim_id, now)
        else:
            self.overlay.fail(victim_id)
            self.overlay.claim_zones(victim_id)
            self.env.schedule_callback(
                self.fault_config.detection_delay,
                lambda v=victim_id: self._on_node_detected(v, self.env.now),
            )

    def _join_new_node(self, rng: np.random.Generator) -> None:
        spec = generate_node_specs(
            1,
            self.config.preset.gpu_slots,
            rng,
            self._node_dist,
            first_id=next(self._next_node_id),
        )[0]
        coord = self.space.node_coordinate(spec, float(rng.random()))
        if self.protocol is not None:
            # Substrate-agnostic probe: the owner of the newcomer's target
            # region must be alive, otherwise the zone/arc is in limbo
            # awaiting take-over and the join would be deferred.
            try:
                owner = self.overlay.locate_owner(coord)
            except SubstrateError:
                return
            if not self.overlay.is_alive(owner):
                return  # target region in limbo awaiting take-over; skip
            if not self.protocol.join(spec.node_id, coord, now=self.env.now):
                # The only remaining failure is an unsplittable zone; the
                # protocol queued a retry, but grid-level joins are
                # Poisson-plentiful — withdraw instead of tracking a
                # node the grid layer never registered.
                self.protocol._pending_joins.pop()
                return
        else:
            try:
                self.overlay.add_node(spec.node_id, coord)
            except SubstrateError:
                return  # coordinate collision or zone in limbo; skip
        node = GridNode(spec, self.env, contention=self.config.contention)
        self._wire_node(node)
        self.grid_nodes[spec.node_id] = node
        self.joins += 1
        self._churn_counter.add("joins")
        if self.tracer is not None:
            self.tracer.emit(self.env.now, "grid.join", node=spec.node_id)

    # ------------------------------------------------------------------ jobs --
    def _on_node_detected(self, node_id: int, now: float) -> None:
        """A crash was noticed; resubmit the jobs that died with it."""
        latency, released = self.tracker.node_detected(node_id, now)
        if latency is None:
            return  # already detected through another path
        self._recovery_counter.add("detections")
        self._detection_sketch.insert(latency)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "recovery.detected",
                node=node_id,
                latency=latency,
                jobs=len(released),
            )
        for job in released:
            self._resubmit(job)

    def _resubmit(self, job: Job) -> None:
        policy = self.fault_config.retry
        attempts = self.tracker.begin_attempt(job.job_id)
        if policy.exhausted(attempts):
            self.tracker.job_abandoned(job.job_id)
            self.jobs_abandoned += 1
            self.abandoned_ids.add(job.job_id)
            self._churn_counter.add("jobs_abandoned")
            if self.tracer is not None:
                self.tracer.emit(
                    self.env.now,
                    "grid.job_abandoned",
                    job=job.job_id,
                    attempts=attempts - 1,
                )
            return
        node = self.matchmaker.place(job)
        if node is None:
            node = self._degraded_search(job)
        if node is None:
            delay = policy.delay(attempts, self._retry_rng)
            self.env.schedule_callback(delay, lambda j=job: self._resubmit(j))
            return
        self.jobs_resubmitted += 1
        self.tracker.job_resubmitted(job.job_id, self.env.now)
        self._resubmission_sketch.insert(self.tracker.resubmission_latencies[-1])
        self._churn_counter.add("jobs_resubmitted")
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now, "grid.job_resubmit", job=job.job_id, attempt=attempts
            )
        node.submit(job)

    def _degraded_search(self, job: Job) -> Optional[GridNode]:
        """Expanding-ring rescue when a placement fails on stale aggregates.

        Right after a crash the matchmaker's directional summaries still
        describe the pre-crash topology (and are reset on the next
        aggregation step), so "no candidate found" is weak evidence.  A
        bounded ring search over the ground-truth overlay answers the real
        question — does a live capable node exist near the job's
        coordinate — at the cost the paper already budgets for rare
        fallback sweeps.
        """
        policy = self.fault_config.retry
        if not policy.ring_fallback or self.config.scheme == "central":
            return None
        if not self.aggregation.is_stale():
            return None
        coord = self.space.job_coordinate(job, float(self._retry_rng.random()))
        origin = self.overlay.locate_owner(coord)
        candidates = expanding_ring_search(
            self.overlay, self.grid_nodes, origin, job, policy.ring_budget
        )
        if not candidates:
            return None
        self._recovery_counter.add("ring_fallbacks")
        chosen = fastest_dominant_clock(candidates, job)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now,
                "recovery.fallback",
                job=job.job_id,
                node=chosen.node_id,
                candidates=len(candidates),
            )
        return chosen

    def _work_remaining(self) -> bool:
        if super()._work_remaining():
            return True
        # Recoveries still in flight — including jobs whose crash has not
        # been *detected* yet (they have no attempts on record; missing
        # them let the aggregation/churn processes stop early and froze
        # the grid under the late resubmissions).
        return self.tracker.has_pending()

    # ------------------------------------------------------------------ run --
    def run(self) -> FaultyGridResult:  # type: ignore[override]
        cfg = self.fault_config
        self._injector.install()
        if self.protocol is not None:
            self.env.process(self._heartbeat_process(), name="heartbeats")
        fail_proc, join_proc = self._churn_processes()
        self.env.process(fail_proc, name="failures")
        self.env.process(join_proc, name="joins")
        base = super().run()
        if cfg.invariant_check_every:
            check_faulty_invariants(self, final=True)
            check_matchmaking_accounting(base)
        return FaultyGridResult(
            base=base,
            failures=self.failures,
            joins=self.joins,
            jobs_lost=self.jobs_lost,
            jobs_resubmitted=self.jobs_resubmitted,
            jobs_abandoned=self.jobs_abandoned,
            final_population=len(self.overlay.alive_ids()),
            detection_latencies=np.asarray(self.tracker.detection_latencies),
            resubmission_latencies=np.asarray(
                self.tracker.resubmission_latencies
            ),
        )
