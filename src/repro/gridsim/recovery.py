"""Retry policy and recovery bookkeeping for the faulty grid.

Two concerns live here, both deliberately simulation-agnostic so they can
be unit-tested without an :class:`~repro.sim.core.Environment`:

* :class:`RetryPolicy` — the knobs of the resubmission loop: exponential
  backoff with jitter, a per-job attempt budget, and the degradation
  switch to an expanding-ring search when the aggregation snapshot is
  stale (a placement "failure" right after a crash usually means the
  aggregates have not caught up, not that no capable node exists).
* :class:`RecoveryTracker` — the ledger of in-flight recoveries: which
  jobs are awaiting failure *detection* (the heartbeat protocol has not
  yet noticed their node died), which are between placement attempts, and
  the latency samples the ``recovery`` experiment reports
  (crash → detection, crash → successful resubmission).

The tracker is the authoritative answer to "is recovery work still
pending?" — :meth:`FaultyGridSimulation._work_remaining` consults it, so
the aggregation and churn processes keep running until every lost job is
either resubmitted or abandoned (previously, jobs whose detection callback
had not fired yet were invisible and the grid could freeze early).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.job import Job

__all__ = ["RetryPolicy", "PendingRecovery", "RecoveryTracker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/budget knobs for resubmitting jobs lost to node crashes."""

    #: delay before the first retry after a failed placement attempt
    base_delay: float = 120.0
    #: multiplier applied per further attempt (1.0 = flat retries)
    backoff_factor: float = 2.0
    #: ceiling on any single backoff delay
    max_delay: float = 1800.0
    #: +/- fractional jitter applied to each delay (0 = deterministic gaps;
    #: the draw comes from a seeded stream, so runs stay reproducible)
    jitter: float = 0.1
    #: a job is abandoned after this many failed placement attempts
    max_attempts: int = 5
    #: when a placement fails while the aggregation snapshot is stale,
    #: degrade to an expanding-ring search over the ground-truth overlay
    #: instead of waiting out a full backoff period
    ring_fallback: bool = True
    #: node-visit budget of that expanding-ring search
    ring_budget: int = 128

    def __post_init__(self) -> None:
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise ValueError("retry delays must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("need at least one placement attempt")
        if self.ring_budget < 1:
            raise ValueError("ring_budget must be positive")

    def delay(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Backoff before retrying after failed attempt number ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        raw = self.base_delay * self.backoff_factor ** (attempt - 1)
        capped = min(raw, self.max_delay)
        if self.jitter and rng is not None:
            capped *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return capped

    def exhausted(self, attempts: int) -> bool:
        return attempts > self.max_attempts


@dataclass
class PendingRecovery:
    """One lost job's recovery state, from crash until resubmit/abandon."""

    job: Job
    node_id: int  # node the job was lost with
    lost_at: float
    attempts: int = 0
    detected_at: Optional[float] = None

    @property
    def awaiting_detection(self) -> bool:
        return self.detected_at is None


class RecoveryTracker:
    """Ledger of crashes and lost jobs moving through recovery.

    Lifecycle of a lost job::

        node_crashed ─┐
        job_lost ─────┴─> (awaiting detection) ─ node_detected ─>
            (retrying) ─ job_resubmitted | job_abandoned

    Counters here are *event* counts (a job lost twice contributes two
    losses and up to two resubmissions), which is what makes the churn
    ledger balance exactly::

        jobs_lost == jobs_resubmitted + jobs_abandoned + len(pending)
    """

    def __init__(self) -> None:
        #: job_id -> in-flight recovery record
        self.pending: Dict[int, PendingRecovery] = {}
        #: node_id -> crash time, removed once the crash is detected
        self._crash_times: Dict[int, float] = {}
        #: crash-to-detection latency samples (one per crashed node)
        self.detection_latencies: List[float] = []
        #: crash-to-successful-resubmission samples (one per recovered job)
        self.resubmission_latencies: List[float] = []
        self.losses = 0
        self.resubmissions = 0
        self.abandonments = 0

    # -- crash side -------------------------------------------------------------
    def node_crashed(self, node_id: int, now: float) -> None:
        self._crash_times[node_id] = now

    def job_lost(self, job: Job, node_id: int, now: float) -> None:
        self.losses += 1
        self.pending[job.job_id] = PendingRecovery(job, node_id, now)

    def node_detected(self, node_id: int, now: float) -> Tuple[Optional[float], List[Job]]:
        """Record a detection; return (latency, jobs now eligible to retry).

        Unknown nodes (never registered via :meth:`node_crashed`, or already
        detected) yield ``(None, [])`` — detection is idempotent here even
        if the caller's dedup slips.
        """
        crashed_at = self._crash_times.pop(node_id, None)
        if crashed_at is None:
            return None, []
        latency = now - crashed_at
        self.detection_latencies.append(latency)
        released: List[Job] = []
        for rec in self.pending.values():
            if rec.node_id == node_id and rec.awaiting_detection:
                rec.detected_at = now
                released.append(rec.job)
        return latency, released

    # -- resubmission side ------------------------------------------------------
    def begin_attempt(self, job_id: int) -> int:
        """Count one placement attempt; returns the new attempt number."""
        rec = self.pending[job_id]
        rec.attempts += 1
        return rec.attempts

    def job_resubmitted(self, job_id: int, now: float) -> None:
        rec = self.pending.pop(job_id)
        self.resubmissions += 1
        self.resubmission_latencies.append(now - rec.lost_at)

    def job_abandoned(self, job_id: int) -> None:
        del self.pending[job_id]
        self.abandonments += 1

    # -- queries ----------------------------------------------------------------
    def has_pending(self) -> bool:
        return bool(self.pending)

    def awaiting_detection_count(self) -> int:
        return sum(1 for r in self.pending.values() if r.awaiting_detection)

    def undetected_crashes(self) -> int:
        return len(self._crash_times)

    def balances(self) -> bool:
        """The ledger identity: every loss is resolved or still pending."""
        return self.losses == (
            self.resubmissions + self.abandonments + len(self.pending)
        )
