"""Metric helpers shared by experiments: CDFs, load balance, comparisons."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..model.node import GridNode

__all__ = [
    "empirical_cdf",
    "cdf_at",
    "wait_time_table",
    "jains_fairness",
    "queue_length_snapshot",
]


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted values and cumulative fractions (both length n)."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        return v, v
    fractions = np.arange(1, v.size + 1, dtype=float) / v.size
    return v, fractions


def cdf_at(values: Sequence[float], thresholds: Sequence[float]) -> np.ndarray:
    """Fraction of values <= each threshold (the paper's CDF y-values)."""
    v = np.sort(np.asarray(values, dtype=float))
    t = np.asarray(thresholds, dtype=float)
    if v.size == 0:
        return np.zeros_like(t)
    return np.searchsorted(v, t, side="right") / v.size


def wait_time_table(
    wait_times: Sequence[float],
    grid: Sequence[float] = (0, 1000, 5000, 10000, 20000, 30000, 40000, 50000),
) -> List[Tuple[float, float]]:
    """(threshold seconds, % of jobs waiting at most that long) rows.

    Matches the axes of the paper's Figures 5 and 6 (x up to 50,000 s,
    y plotted from 80%).
    """
    fracs = cdf_at(wait_times, grid)
    return [(float(g), float(f) * 100.0) for g, f in zip(grid, fracs)]


def jains_fairness(loads: Sequence[float]) -> float:
    """Jain's fairness index of a load vector (1.0 = perfectly balanced)."""
    x = np.asarray(loads, dtype=float)
    if x.size == 0:
        return 1.0
    denom = x.size * float((x * x).sum())
    if denom == 0:
        return 1.0
    return float(x.sum()) ** 2 / denom


def queue_length_snapshot(nodes: Iterable[GridNode]) -> Dict[str, float]:
    """Instantaneous load-balance summary across nodes."""
    queued = np.array([n.queued_jobs() for n in nodes], dtype=float)
    if queued.size == 0:
        return {"mean": 0.0, "max": 0.0, "fairness": 1.0}
    return {
        "mean": float(queued.mean()),
        "max": float(queued.max()),
        "fairness": jains_fairness(queued),
    }
