"""End-to-end load-balancing simulation (Figures 5 and 6).

Wires everything together: a workload preset generates heterogeneous nodes
and a Poisson job stream; the nodes join a CAN; per-dimension load
aggregates propagate every heartbeat period; and one of the three
matchmakers (can-het / can-hom / central) places every arriving job.  Jobs
queue FIFO on their run node's dominant CE and execute for a duration scaled
by the CE's clock and contention.  The primary output is the distribution of
*job wait times* — time from arrival in the run-node queue to execution
start — the paper's Figure 5/6 metric.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..can.aggregation import AggregationEngine
from ..can.space import ResourceSpace
from ..overlay import OverlaySubstrate, create_overlay
from ..model.job import Job
from ..model.node import GridNode, NodeSpec
from ..sched.base import Matchmaker
from ..sched.can_het import CanHetMatchmaker
from ..obs.registry import MetricsRegistry
from ..sched.can_hom import CanHomMatchmaker
from ..sched.central import CentralMatchmaker
from ..sim.core import Environment
from ..sim.rng import RngRegistry
from ..workload.jobs import JobDistribution, generate_jobs
from ..workload.nodes import NodeDistribution, generate_node_specs
from .config import MatchmakingConfig
from .results import MatchmakingResult

__all__ = ["GridSimulation", "build_grid", "build_matchmaker"]


def build_matchmaker(
    config: MatchmakingConfig,
    overlay: OverlaySubstrate,
    grid_nodes: Dict[int, GridNode],
    aggregation: AggregationEngine,
    rng: np.random.Generator,
) -> Matchmaker:
    """Construct the matchmaker ``config.scheme`` names.

    Shared by the batch simulator and the live :mod:`repro.service`
    gateway — both drive the same scheduler implementations; only the
    clock differs.
    """
    if config.scheme == "central":
        return CentralMatchmaker(grid_nodes)
    if config.scheme == "can-het":
        return CanHetMatchmaker(
            overlay,
            grid_nodes,
            aggregation,
            rng,
            stopping_factor=config.stopping_factor,
            max_hops=config.max_push_hops,
            use_acceptable_nodes=config.use_acceptable_nodes,
            use_dominant_ce=config.use_dominant_ce,
        )
    return CanHomMatchmaker(
        overlay,
        grid_nodes,
        aggregation,
        rng,
        stopping_factor=config.stopping_factor,
        max_hops=config.max_push_hops,
    )


def build_grid(
    specs: List[NodeSpec],
    env: Environment,
    space: ResourceSpace,
    rng: np.random.Generator,
    config: MatchmakingConfig,
    use_virtual_randomness: bool = True,
) -> tuple:
    """Construct GridNodes and the configured overlay from node specs.

    Returns ``(overlay, grid_nodes)``.  Nodes join sequentially, each with a
    random virtual coordinate (or a degenerate near-constant one when the
    virtual-dimension ablation is off).  ``config.substrate`` picks the
    overlay implementation; the matchmakers only touch the substrate
    protocol surface, so they run unchanged on any of them.
    """
    overlay = create_overlay(config.substrate, space)
    grid_nodes: Dict[int, GridNode] = {}
    for spec in specs:
        if use_virtual_randomness:
            virtual = float(rng.random())
        else:
            # Ablation: the virtual coordinate still must differ between
            # nodes (the CAN cannot split otherwise) but is squeezed into a
            # tiny band so it no longer spreads load.
            virtual = float(rng.random()) * 1e-6
        coord = space.node_coordinate(spec, virtual)
        overlay.add_node(spec.node_id, coord)
        grid_nodes[spec.node_id] = GridNode(
            spec, env, contention=config.contention
        )
    return overlay, grid_nodes


class GridSimulation:
    """One complete matchmaking experiment run."""

    def __init__(
        self,
        config: MatchmakingConfig,
        node_dist: Optional[NodeDistribution] = None,
        job_dist: Optional[JobDistribution] = None,
        tracer=None,
        profiler=None,
    ):
        self.config = config
        preset = config.preset
        self.rngs = RngRegistry(preset.seed)
        self.tracer = tracer
        #: optional repro.obs.Profiler threaded into the kernel's event
        #: dispatch and the matchmaker's placement/scoring scopes
        self.profiler = profiler
        self.env = Environment(tracer=tracer, profiler=profiler)
        self.metrics = MetricsRegistry()
        self.space = ResourceSpace(gpu_slots=preset.gpu_slots)

        self.specs = generate_node_specs(
            preset.nodes, preset.gpu_slots, self.rngs.stream("nodes"), node_dist
        )
        self.overlay, self.grid_nodes = build_grid(
            self.specs,
            self.env,
            self.space,
            self.rngs.stream("virtual"),
            config,
            use_virtual_randomness=config.use_virtual_dimension,
        )
        jdist = (job_dist or JobDistribution()).with_constraint_ratio(
            preset.constraint_ratio
        )
        self.jobs = generate_jobs(
            preset.jobs,
            self.specs,
            preset.gpu_slots,
            preset.mean_interarrival,
            self.rngs.stream("jobs"),
            jdist,
        )
        self.aggregation = AggregationEngine(self.overlay, self.grid_nodes)
        self.matchmaker = self._build_matchmaker()
        self.matchmaker.attach_tracer(tracer, lambda: self.env.now)
        self.matchmaker.attach_profiler(profiler)
        self.unplaced = 0
        self._submitted = 0
        #: job ids never placed at arrival / abandoned after churn retries —
        #: kept as ids (not just counts) so the invariant checker can
        #: classify every job's state exactly
        self.unplaced_ids: set = set()
        self.abandoned_ids: set = set()
        grid_metrics = self.metrics.scope("grid")
        self._job_counter = grid_metrics.counter("jobs")
        #: streaming wait/turnaround distributions — one O(1) insert per
        #: finished job, the only record under ``config.stream_waits``
        self._wait_sketch = grid_metrics.quantile_sketch("wait_time")
        self._turnaround_sketch = grid_metrics.quantile_sketch("turnaround")
        for node in self.grid_nodes.values():
            self._wire_node(node)

    # -- wiring ------------------------------------------------------------------
    def _build_matchmaker(self) -> Matchmaker:
        return build_matchmaker(
            self.config,
            self.overlay,
            self.grid_nodes,
            self.aggregation,
            self.rngs.stream("matchmaking"),
        )

    def _wire_node(self, node: GridNode) -> None:
        """Attach the job-lifecycle callbacks: span events + wait sketches."""
        node.on_job_started = self._on_job_started
        node.on_job_finished = self._on_job_finished

    def _on_job_started(self, node: GridNode, job: Job) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now,
                "grid.job_start",
                job=job.job_id,
                node=node.node_id,
            )

    def _on_job_finished(self, node: GridNode, job: Job) -> None:
        # A job finishes at most once (a lost incarnation never reaches
        # _finish), so the sketch holds the same multiset as wait_times.
        if job.wait_time is not None:
            self._wait_sketch.insert(job.wait_time)
        if job.turnaround is not None:
            self._turnaround_sketch.insert(job.turnaround)
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now,
                "grid.job_finish",
                job=job.job_id,
                node=node.node_id,
            )

    # -- processes ------------------------------------------------------------------
    def _arrival_process(self):
        for job in self.jobs:
            delay = job.submit_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._submitted += 1
            self._job_counter.add("submitted")
            if self.tracer is not None:
                self.tracer.emit(self.env.now, "grid.job_submit", job=job.job_id)
            node = self.matchmaker.place(job)
            if node is None:
                self.unplaced += 1
                self.unplaced_ids.add(job.job_id)
                self._job_counter.add("unplaced")
                if self.tracer is not None:
                    self.tracer.emit(
                        self.env.now, "grid.job_unplaced", job=job.job_id
                    )
            else:
                node.submit(job)

    def _aggregation_process(self):
        period = self.config.preset.heartbeat_period
        self.aggregation.run_rounds(self.config.aggregation_warmup_rounds)
        while self._work_remaining():
            yield self.env.timeout(period)
            self.aggregation.step()

    def _work_remaining(self) -> bool:
        if self._submitted < len(self.jobs):
            return True
        return any(
            not node.is_free() for node in self.grid_nodes.values()
        )

    # -- run ------------------------------------------------------------------------
    def run(self) -> MatchmakingResult:
        if self.config.scheme != "central":
            self.env.process(self._aggregation_process(), name="aggregation")
        self.env.process(self._arrival_process(), name="arrivals")
        self.env.run()

        # Under stream_waits the per-job arrays stay empty: the sketches
        # (filled as each job finished) are the only record, so result
        # memory is independent of job count.
        collect = not self.config.stream_waits
        waits: List[float] = []
        turnarounds: List[float] = []
        lost = 0
        for index, job in enumerate(self.jobs):
            if job.wait_time is not None:
                if collect:
                    waits.append(job.wait_time)
            elif job.run_node_id is not None:
                lost += 1
            elif (
                index < self._submitted  # arrivals process jobs in order
                and job.job_id not in self.unplaced_ids
                and job.job_id not in self.abandoned_ids
            ):
                # Lost with its timestamps already reset (crashed before
                # starting, resubmission pending or leaked) — without this
                # bucket such jobs silently vanished from the accounting.
                lost += 1
            if collect and job.turnaround is not None:
                turnarounds.append(job.turnaround)
        preset = self.config.preset
        return MatchmakingResult(
            scheme=self.config.scheme,
            preset_name=preset.name,
            mean_interarrival=preset.mean_interarrival,
            constraint_ratio=preset.constraint_ratio,
            wait_times=np.asarray(waits),
            turnarounds=np.asarray(turnarounds),
            unplaced_jobs=self.unplaced,
            lost_jobs=lost,
            matchmaking=self.matchmaker.stats,
            sim_end_time=self.env.now,
            jobs_submitted=self._submitted,
            abandoned_jobs=len(self.abandoned_ids),
            wait_sketch=self._wait_sketch,
            turnaround_sketch=self._turnaround_sketch,
            substrate=self.config.substrate,
        )
