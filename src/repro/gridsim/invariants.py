"""Cross-layer invariant checks for the churn simulations.

A faulty-grid run mutates four coupled structures — the ground-truth
overlay, the believed protocol state, the grid-node population, and the
per-job lifecycle — and a bug in any hand-off between them tends to show
up as a *silent* accounting leak rather than an exception.  These checkers
make the leaks loud.  They are pure observers (no mutation), cheap enough
to run every few heartbeat rounds, and raise :class:`InvariantViolation`
(an ``AssertionError`` subclass) with a description of the broken
invariant.

The checkers are substrate-agnostic: they consume only the
:class:`~repro.overlay.OverlaySubstrate` /
:class:`~repro.overlay.MaintenanceProtocol` surfaces, so the same audit
runs over a CAN or a Chord ring.

Checked for a :class:`~repro.gridsim.faulty.FaultyGridSimulation`:

* the substrate's own structural invariants, via the protocol-surface
  ``overlay.check_invariants()`` — for CAN, the zone cover partitions the
  space with symmetric adjacency; for Chord, the sorted ring is a
  bijection whose arcs cover the full key circle and whose derived
  successor/predecessor/finger structure matches an independent scan;
* the grid-node population mirrors the overlay's alive set, and the
  population ledger balances (initial + joins - failures);
* every non-finished job is exactly one of: not yet submitted, queued or
  running on a live node, awaiting detection / between retries (in the
  recovery tracker), abandoned, or unplaced-at-arrival;
* the recovery ledger balances:
  ``jobs_lost == jobs_resubmitted + jobs_abandoned + pending``.

For a finished run, :func:`check_matchmaking_accounting` additionally
asserts the result identity
``placed + unplaced + lost + abandoned == submitted``.
"""

from __future__ import annotations


__all__ = [
    "InvariantViolation",
    "check_faulty_invariants",
    "check_churn_invariants",
    "check_matchmaking_accounting",
    "check_service_accounting",
]


class InvariantViolation(AssertionError):
    """A simulation invariant does not hold."""


def _fail(message: str) -> None:
    raise InvariantViolation(message)


def _job_on_node(node, job) -> bool:
    """Is ``job`` currently queued or running on ``node``?"""
    for ce in node.ces.values():
        if job in ce.queue or job in ce.running:
            return True
    return False


def check_matchmaking_accounting(result) -> None:
    """placed + unplaced + lost + abandoned == submitted."""
    # ``started`` reads the exact array, or the streaming sketch count
    # under stream_waits — the identity holds in both record modes
    placed = int(result.started)
    total = (
        placed
        + result.unplaced_jobs
        + result.lost_jobs
        + result.abandoned_jobs
    )
    if total != result.jobs_submitted:
        _fail(
            "job accounting leak: "
            f"placed={placed} + unplaced={result.unplaced_jobs} + "
            f"lost={result.lost_jobs} + abandoned={result.abandoned_jobs} "
            f"= {total} != submitted={result.jobs_submitted}"
        )


def check_service_accounting(service, final: bool = False) -> None:
    """Invariants of a (possibly mid-run) :class:`~repro.service.GridService`.

    The live-service analogue of :func:`check_matchmaking_accounting`,
    phrased over the persistent ledger instead of a result object:

    * ledger statuses partition the submissions (every job is in exactly
      one status, so the counts sum to the number of rows);
    * the recovery tracker's loss ledger balances;
    * no job has more than one recorded ``RUNNING -> COMPLETED`` edge
      (the zero-duplicate-execution guarantee across restarts);
    * every ``MATCHED``/``RUNNING`` job is actually queued or running on
      a live node;
    * with ``final=True``: nothing is in flight — terminal states account
      for every submission.
    """
    from ..service.ledger import TERMINAL_STATES, JobStatus

    ledger = service.ledger
    counts = ledger.counts()
    records = ledger.records()
    if sum(counts.values()) != len(records):
        _fail(
            f"ledger status counts sum to {sum(counts.values())} "
            f"but hold {len(records)} jobs"
        )

    if not service.tracker.balances():
        t = service.tracker
        _fail(
            "recovery ledger leak: "
            f"lost={t.losses} != resubmitted={t.resubmissions} "
            f"+ abandoned={t.abandonments} + pending={len(t.pending)}"
        )

    for record in records:
        completions = ledger.completions(record.job_id)
        if completions > 1:
            _fail(
                f"job {record.job_id} completed {completions} times "
                "(duplicate execution)"
            )
        if record.status is JobStatus.COMPLETED and completions != 1:
            _fail(
                f"job {record.job_id} is COMPLETED with {completions} "
                "recorded completion transitions"
            )
        if record.status in (JobStatus.MATCHED, JobStatus.RUNNING):
            node = service.grid_nodes.get(record.node_id)
            if node is None or not node.alive:
                _fail(
                    f"job {record.job_id} is {record.status.value} on "
                    f"dead/unknown node {record.node_id}"
                )
            job = service._jobs.get(record.job_id)
            if job is None or not _job_on_node(node, job):
                _fail(
                    f"job {record.job_id} is {record.status.value} on node "
                    f"{record.node_id} but neither queued nor running there"
                )

    if final:
        in_flight = [r for r in records if r.status not in TERMINAL_STATES]
        if in_flight:
            _fail(
                f"{len(in_flight)} jobs still in flight after the service "
                f"drained: {[r.job_id for r in in_flight[:5]]}"
            )
        if service.tracker.has_pending():
            _fail(
                f"{len(service.tracker.pending)} jobs still pending "
                "recovery after the service drained"
            )


def _check_overlay(overlay) -> None:
    try:
        overlay.check_invariants()
    except AssertionError:
        raise
    except Exception as exc:  # OverlayError and friends
        _fail(f"overlay invariants violated: {exc}")


def check_faulty_invariants(sim, final: bool = False) -> None:
    """All invariants of a (possibly mid-run) FaultyGridSimulation."""
    _check_overlay(sim.overlay)
    if sim.protocol is not None:
        _check_network(sim.protocol)

    alive = set(sim.overlay.alive_ids())
    grid_ids = set(sim.grid_nodes)
    if alive != grid_ids:
        _fail(
            "grid population out of sync with overlay: "
            f"overlay-only={sorted(alive - grid_ids)[:5]} "
            f"grid-only={sorted(grid_ids - alive)[:5]}"
        )

    # population ledger: members = initial + joins - claimed dead nodes
    initial = sim.config.preset.nodes
    if sim.protocol is not None:
        ev = sim.protocol.events
        expected_members = initial + ev["joins"] - ev["leaves"] - ev["claims"]
        expected_alive = expected_members - (ev["failures"] - ev["claims"])
    else:
        expected_members = expected_alive = initial + sim.joins - sim.failures
    if len(sim.overlay.members) != expected_members:
        _fail(
            f"membership ledger leak: {len(sim.overlay.members)} members, "
            f"expected {expected_members}"
        )
    if len(alive) != expected_alive:
        _fail(
            f"population ledger leak: {len(alive)} alive, "
            f"expected {expected_alive}"
        )

    # recovery ledger
    tracker = sim.tracker
    if not tracker.balances():
        _fail(
            "recovery ledger leak: "
            f"lost={tracker.losses} != resubmitted={tracker.resubmissions} "
            f"+ abandoned={tracker.abandonments} + pending={len(tracker.pending)}"
        )
    if (
        sim.jobs_lost != tracker.losses
        or sim.jobs_resubmitted != tracker.resubmissions
        or sim.jobs_abandoned != tracker.abandonments
    ):
        _fail(
            "simulation counters disagree with the recovery tracker: "
            f"lost {sim.jobs_lost}/{tracker.losses}, "
            f"resubmitted {sim.jobs_resubmitted}/{tracker.resubmissions}, "
            f"abandoned {sim.jobs_abandoned}/{tracker.abandonments}"
        )

    _check_job_states(sim, final)

    if final and tracker.has_pending():
        _fail(
            f"{len(tracker.pending)} jobs still pending recovery "
            "after the run drained"
        )


def _check_job_states(sim, final: bool) -> None:
    """Every non-finished job is in exactly one legitimate state."""
    pending_ids = set(sim.tracker.pending)
    for index, job in enumerate(sim.jobs):
        if job.finish_time is not None:
            continue
        jid = job.job_id
        if jid in pending_ids:
            continue  # awaiting detection or between retries
        if jid in sim.abandoned_ids or jid in sim.unplaced_ids:
            continue
        if job.run_node_id is not None:
            node = sim.grid_nodes.get(job.run_node_id)
            if node is None or not node.alive:
                _fail(
                    f"job {jid} claims dead/unknown run node "
                    f"{job.run_node_id} yet is not tracked as lost"
                )
            if not _job_on_node(node, job):
                _fail(
                    f"job {jid} assigned to node {job.run_node_id} but "
                    "neither queued nor running there"
                )
            continue
        if index >= sim._submitted:
            continue  # not yet submitted (mid-run)
        _fail(
            f"job {jid} submitted but in no state: not placed, not lost, "
            "not abandoned, not unplaced"
        )


def _check_network(protocol) -> None:
    """Channel accounting: every attempted send delivered xor dropped.

    Holds mid-flight under any scenario (loss, partitions, flap storms):
    the network model counts verdicts at the single transmit choke point,
    so a send path that bypassed the channel or double-counted a verdict
    shows up as an accounting leak here.
    """
    net = getattr(protocol, "net", None)
    if net is None or net.is_identity:
        return
    if net.attempts != net.delivered + net.dropped:
        _fail(
            f"network accounting leak: {net.attempts} attempts != "
            f"{net.delivered} delivered + {net.dropped} dropped"
        )
    if net.delivered < 0 or any(v < 0 for v in net.drops.values()):
        _fail(f"negative network counter: {net.counters()}")
    for entry in getattr(protocol, "_deferred", ()):
        arrival, sent_at = entry[0], entry[-1]
        if arrival <= sent_at:
            _fail(
                f"deferred delivery travels back in time: "
                f"sent {sent_at}, arrives {arrival}"
            )


def check_churn_invariants(sim) -> None:
    """Invariants of a (possibly mid-run) ChurnSimulation."""
    _check_overlay(sim.overlay)
    protocol = sim.protocol
    _check_network(protocol)
    ev = protocol.events

    # membership ledger: one bootstrap node, then joins/leaves/claims
    expected_members = 1 + ev["joins"] - ev["leaves"] - ev["claims"]
    if len(sim.overlay.members) != expected_members:
        _fail(
            f"membership ledger leak: {len(sim.overlay.members)} members, "
            f"expected {expected_members}"
        )
    alive = set(sim.overlay.alive_ids())
    expected_alive = expected_members - (ev["failures"] - ev["claims"])
    if len(alive) != expected_alive:
        _fail(
            f"population ledger leak: {len(alive)} alive, "
            f"expected {expected_alive}"
        )

    # protocol-state mirrors: every member has protocol state and failed-
    # but-unclaimed nodes are exactly the dead members
    members = set(sim.overlay.members)
    if set(protocol.nodes) != members:
        _fail("protocol node set out of sync with overlay membership")
    dead = members - alive
    if set(protocol._fail_times) != dead:
        _fail(
            "fail-time ledger out of sync: "
            f"{sorted(set(protocol._fail_times) ^ dead)[:5]}"
        )
