"""Deterministic fault injection for the faulty-grid simulation.

The background churn processes model steady-state attrition (exponential
gaps).  This module adds *scripted* adversity on top:

* :class:`CrashBurst` — ``count`` nodes crash at simulated time ``at``;
  with ``correlated=True`` the victims are a zone owner plus its
  ground-truth CAN neighbors (a rack/subnet loss), the worst case for the
  split-tree take-over path because claimants and their stored tables die
  together.
* :class:`FaultPlan` — an immutable schedule of bursts plus a heartbeat
  message-loss probability (each heartbeat delivery is independently
  dropped, degrading every scheme's freshness evidence — the knob that
  makes detection latency *differ* across vanilla/compact/adaptive).
* :class:`FaultInjector` — wires a plan into a running
  :class:`~repro.gridsim.faulty.FaultyGridSimulation`: bursts become
  kernel callbacks; message loss is installed on the heartbeat protocol.

All victim choices draw from the simulation's seeded ``fault-bursts``
stream, so a plan replays byte-identically under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["CrashBurst", "FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class CrashBurst:
    """``count`` simultaneous crashes at time ``at``."""

    at: float
    count: int = 1
    #: cluster the victims: one seed node plus its overlay neighbors
    correlated: bool = False

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("burst time must be non-negative")
        if self.count < 1:
            raise ValueError("burst must crash at least one node")


@dataclass(frozen=True)
class FaultPlan:
    """A scripted fault schedule layered onto the background churn."""

    bursts: Tuple[CrashBurst, ...] = ()
    #: probability that any single heartbeat delivery is lost in flight
    message_loss: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.message_loss < 1.0:
            raise ValueError("message_loss must be in [0, 1)")
        object.__setattr__(self, "bursts", tuple(self.bursts))

    @property
    def empty(self) -> bool:
        return not self.bursts and self.message_loss == 0.0


class FaultInjector:
    """Applies a :class:`FaultPlan` to a FaultyGridSimulation."""

    def __init__(self, sim, plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        self.bursts_fired = 0
        self.crashes_injected = 0

    def install(self) -> None:
        """Schedule the plan; call once before the simulation runs."""
        sim = self.sim
        if self.plan.message_loss > 0.0 and sim.protocol is not None:
            sim.protocol.set_message_loss(
                self.plan.message_loss, sim.rngs.stream("hb-loss")
            )
        for burst in self.plan.bursts:
            sim.env.schedule_callback(
                burst.at - sim.env.now, lambda b=burst: self._fire(b)
            )

    def _fire(self, burst: CrashBurst) -> None:
        sim = self.sim
        victims = self._pick_victims(burst, sim.rngs.stream("fault-bursts"))
        for victim_id in victims:
            sim._fail_node(victim_id)
        self.bursts_fired += 1
        self.crashes_injected += len(victims)
        if sim.tracer is not None:
            sim.tracer.emit(
                sim.env.now,
                "fault.burst",
                count=len(victims),
                correlated=burst.correlated,
                victims=victims,
            )

    def _pick_victims(
        self, burst: CrashBurst, rng: np.random.Generator
    ) -> List[int]:
        """Victims for one burst, honouring the population floor."""
        sim = self.sim
        alive = sorted(sim.overlay.alive_ids())
        floor = int(
            sim.config.preset.nodes * sim.fault_config.min_population_fraction
        )
        headroom = len(alive) - floor
        count = min(burst.count, max(headroom, 0))
        if count <= 0:
            return []
        if not burst.correlated:
            picks = rng.choice(len(alive), size=count, replace=False)
            return [int(alive[i]) for i in sorted(picks)]
        # Correlated: a seed node and its ground-truth neighborhood go down
        # together.  Neighbors are sorted for determinism; if the cluster is
        # smaller than the requested count the burst is clipped to it.
        seed = int(alive[int(rng.integers(len(alive)))])
        alive_set = set(alive)
        cluster = [seed] + sorted(
            nid for nid in sim.overlay.neighbors(seed) if nid in alive_set
        )
        return cluster[:count]
