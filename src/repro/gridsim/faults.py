"""Deterministic fault injection and the adversarial scenario pack.

The background churn processes model steady-state attrition (exponential
gaps).  This module adds *scripted* adversity on top:

* :class:`CrashBurst` — ``count`` nodes crash at simulated time ``at``;
  with ``correlated=True`` the victims cluster into ``groups``
  rack-failure groups, each a zone owner plus its ground-truth overlay
  neighbors (a rack/subnet loss), the worst case for the take-over path
  because claimants and their stored tables die together.
* :class:`JoinBurst` — a flash crowd: ``count`` nodes join at once.
* :class:`DiurnalChurn` — a day/night curve modulating the background
  churn process's event gaps (amplitude 0 leaves the process untouched).
* :class:`FaultPlan` — an immutable schedule of the above plus a network
  description: either the legacy ``message_loss`` Bernoulli knob or a
  full :class:`repro.net.NetworkSpec` (latency, asymmetric partitions,
  flapping links).
* :class:`FaultInjector` — wires a plan into a running
  :class:`~repro.gridsim.faulty.FaultyGridSimulation`;
  :class:`ChurnFaultDriver` does the same for
  :class:`~repro.gridsim.churn.ChurnSimulation`.
* :func:`scenario_pack` — the named adversarial scenarios the
  ``python -m repro.experiments scenarios`` harness runs.

All victim choices draw from the simulation's seeded ``fault-bursts``
stream and the network model draws from ``hb-loss``, so a plan replays
byte-identically under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..net import FlapSpec, NetworkSpec

__all__ = [
    "CrashBurst",
    "JoinBurst",
    "DiurnalChurn",
    "FaultPlan",
    "FaultInjector",
    "ChurnFaultDriver",
    "Scenario",
    "scenario_pack",
]


@dataclass(frozen=True)
class CrashBurst:
    """``count`` simultaneous crashes at time ``at``."""

    at: float
    count: int = 1
    #: cluster the victims: seed node(s) plus their overlay neighbors
    correlated: bool = False
    #: number of correlated clusters the count is split across (rack
    #: groups); only meaningful with ``correlated=True``
    groups: int = 1

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("burst time must be non-negative")
        if self.count < 1:
            raise ValueError("burst must crash at least one node")
        if self.groups < 1:
            raise ValueError("burst needs at least one group")


@dataclass(frozen=True)
class JoinBurst:
    """A flash crowd: ``count`` nodes join at time ``at``."""

    at: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("burst time must be non-negative")
        if self.count < 1:
            raise ValueError("burst must join at least one node")


@dataclass(frozen=True)
class DiurnalChurn:
    """Day/night modulation of the background churn rate.

    The instantaneous churn rate is scaled by
    ``1 + amplitude * sin(2*pi * (now - phase) / period)`` — event gaps
    are *divided* by that factor, so peaks churn faster and troughs
    slower while the mean stays near the configured gap.  ``amplitude``
    must stay below 1 (the rate never goes negative); 0 is the identity.
    """

    period: float
    amplitude: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("diurnal period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")

    def gap_multiplier(self, now: float) -> float:
        if self.amplitude == 0.0:
            return 1.0
        rate = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (now - self.phase) / self.period
        )
        return 1.0 / rate


@dataclass(frozen=True)
class FaultPlan:
    """A scripted fault schedule layered onto the background churn."""

    bursts: Tuple[CrashBurst, ...] = ()
    #: probability that any single unreliable delivery is lost in flight
    #: (legacy Bernoulli knob; closed interval — 1.0 is a total blackout)
    message_loss: float = 0.0
    #: flash-crowd arrivals
    joins: Tuple[JoinBurst, ...] = ()
    #: day/night churn-rate curve (ChurnSimulation only)
    diurnal: Optional[DiurnalChurn] = None
    #: full network model (latency/partitions/flaps); mutually exclusive
    #: with the legacy ``message_loss`` knob
    network: Optional[NetworkSpec] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.message_loss <= 1.0:
            raise ValueError("message_loss must be in [0, 1]")
        if self.network is not None and self.message_loss > 0.0:
            raise ValueError(
                "set loss inside the NetworkSpec, not alongside it"
            )
        object.__setattr__(self, "bursts", tuple(self.bursts))
        object.__setattr__(self, "joins", tuple(self.joins))

    @property
    def empty(self) -> bool:
        return (
            not self.bursts
            and not self.joins
            and self.diurnal is None
            and self.message_loss == 0.0
            and (self.network is None or self.network.identity)
        )

    def network_spec(self) -> Optional[NetworkSpec]:
        """The channel this plan installs, or None for the ideal channel."""
        if self.network is not None and not self.network.identity:
            return self.network
        if self.message_loss > 0.0:
            return NetworkSpec(loss=self.message_loss)
        return None


def _burst_victims(
    burst: CrashBurst,
    alive: List[int],
    count: int,
    rng: np.random.Generator,
    overlay,
) -> List[int]:
    """Victims for one crash burst (already clipped to ``count``).

    Uncorrelated bursts sample uniformly.  Correlated bursts pick
    ``groups`` seed nodes and take each seed plus its ground-truth
    neighborhood — rack groups going down together.  Draw order is
    stable, so a plan replays identically under a fixed seed.
    """
    if count <= 0:
        return []
    if not burst.correlated:
        picks = rng.choice(len(alive), size=count, replace=False)
        return [int(alive[i]) for i in sorted(picks)]
    victims: List[int] = []
    remaining = list(alive)
    groups = burst.groups
    for g in range(groups):
        if len(victims) >= count or not remaining:
            break
        quota = count // groups + (1 if g < count % groups else 0)
        if quota <= 0:
            continue
        seed = int(remaining[int(rng.integers(len(remaining)))])
        remaining_set = set(remaining)
        cluster = [seed] + sorted(
            nid for nid in overlay.neighbors(seed) if nid in remaining_set
        )
        chosen = cluster[:quota]
        victims.extend(chosen)
        chosen_set = set(chosen)
        remaining = [nid for nid in remaining if nid not in chosen_set]
    return victims[:count]


class FaultInjector:
    """Applies a :class:`FaultPlan` to a FaultyGridSimulation."""

    def __init__(self, sim, plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        self.bursts_fired = 0
        self.crashes_injected = 0
        self.joins_injected = 0

    def install(self) -> None:
        """Schedule the plan; call once before the simulation runs."""
        sim = self.sim
        spec = self.plan.network_spec()
        if spec is not None and sim.protocol is not None:
            sim.protocol.set_network(spec.build(sim.rngs.stream("hb-loss")))
        for burst in self.plan.bursts:
            sim.env.schedule_callback(
                burst.at - sim.env.now, lambda b=burst: self._fire(b)
            )
        for jburst in self.plan.joins:
            sim.env.schedule_callback(
                jburst.at - sim.env.now, lambda b=jburst: self._fire_joins(b)
            )

    def _fire(self, burst: CrashBurst) -> None:
        sim = self.sim
        victims = self._pick_victims(burst, sim.rngs.stream("fault-bursts"))
        for victim_id in victims:
            sim._fail_node(victim_id)
        self.bursts_fired += 1
        self.crashes_injected += len(victims)
        if sim.tracer is not None:
            sim.tracer.emit(
                sim.env.now,
                "fault.burst",
                count=len(victims),
                correlated=burst.correlated,
                victims=victims,
            )

    def _fire_joins(self, burst: JoinBurst) -> None:
        sim = self.sim
        join_rng = sim.rngs.stream("fault-joins")
        for _ in range(burst.count):
            sim._join_new_node(join_rng)
        self.joins_injected += burst.count
        if sim.tracer is not None:
            sim.tracer.emit(
                sim.env.now, "fault.flash_crowd", count=burst.count
            )

    def _pick_victims(
        self, burst: CrashBurst, rng: np.random.Generator
    ) -> List[int]:
        """Victims for one burst, honouring the population floor."""
        sim = self.sim
        alive = sorted(sim.overlay.alive_ids())
        floor = int(
            sim.config.preset.nodes * sim.fault_config.min_population_fraction
        )
        count = min(burst.count, max(len(alive) - floor, 0))
        return _burst_victims(burst, alive, count, rng, sim.overlay)


class ChurnFaultDriver:
    """Applies a :class:`FaultPlan` to a ChurnSimulation.

    The network model goes onto the maintenance protocol, scripted
    crash/join bursts become kernel callbacks, and the diurnal curve is
    consulted by the simulation's churn process for each event gap.
    """

    def __init__(self, sim, plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        self.bursts_fired = 0
        self.crashes_injected = 0
        self.joins_injected = 0

    def install(self) -> None:
        sim = self.sim
        spec = self.plan.network_spec()
        if spec is not None:
            sim.protocol.set_network(spec.build(sim.rngs.stream("hb-loss")))
        for burst in self.plan.bursts:
            sim.env.schedule_callback(
                burst.at - sim.env.now, lambda b=burst: self._fire_crash(b)
            )
        for jburst in self.plan.joins:
            sim.env.schedule_callback(
                jburst.at - sim.env.now, lambda b=jburst: self._fire_joins(b)
            )

    def gap_multiplier(self, now: float) -> float:
        diurnal = self.plan.diurnal
        return 1.0 if diurnal is None else diurnal.gap_multiplier(now)

    def _fire_crash(self, burst: CrashBurst) -> None:
        sim = self.sim
        alive = sorted(sim.overlay.alive_ids())
        # same floor the background churn respects: never collapse the grid
        floor = max(4, sim.config.initial_nodes // 4)
        count = min(burst.count, max(len(alive) - floor, 0))
        victims = _burst_victims(
            burst, alive, count, sim.rngs.stream("fault-bursts"), sim.overlay
        )
        for victim_id in victims:
            sim.protocol.fail(victim_id, now=sim.env.now)
        self.bursts_fired += 1
        self.crashes_injected += len(victims)
        sim._population.update(
            sim.env.now, float(len(sim.overlay.alive_ids()))
        )
        if sim.tracer is not None:
            sim.tracer.emit(
                sim.env.now,
                "fault.burst",
                count=len(victims),
                correlated=burst.correlated,
                victims=victims,
            )

    def _fire_joins(self, burst: JoinBurst) -> None:
        sim = self.sim
        for _ in range(burst.count):
            node_id, coord = sim._new_coord()
            sim.protocol.join(node_id, coord, now=sim.env.now)
        self.joins_injected += burst.count
        sim._population.update(
            sim.env.now, float(len(sim.overlay.alive_ids()))
        )
        if sim.tracer is not None:
            sim.tracer.emit(
                sim.env.now, "fault.flash_crowd", count=burst.count
            )


# ------------------------------------------------------------- scenarios --
@dataclass(frozen=True)
class Scenario:
    """A named adversarial condition for the scenarios harness."""

    name: str
    description: str
    plan: FaultPlan


def scenario_pack(
    duration: float, nodes: int, period: float = 60.0
) -> Tuple[Scenario, ...]:
    """The adversarial scenario pack, scaled to one run shape.

    Times are fractions of ``duration`` so fast and full runs exercise
    the same story; magnitudes scale with ``nodes``.  ``baseline`` is the
    ideal-channel control every other scenario is read against.
    """
    return (
        Scenario(
            "baseline",
            "ideal channel, background churn only",
            FaultPlan(),
        ),
        Scenario(
            "diurnal",
            "day/night churn curve: peaks churn ~5x faster than troughs",
            FaultPlan(
                diurnal=DiurnalChurn(period=duration / 2.0, amplitude=0.7)
            ),
        ),
        Scenario(
            "flash_crowd",
            "arrival burst: a third of the population joins at once",
            FaultPlan(
                joins=(JoinBurst(at=0.4 * duration, count=max(nodes // 3, 5)),)
            ),
        ),
        Scenario(
            "rack_failure",
            "correlated rack groups: three neighborhoods crash together, twice",
            FaultPlan(
                bursts=(
                    CrashBurst(
                        at=0.35 * duration,
                        count=max(nodes // 8, 6),
                        correlated=True,
                        groups=3,
                    ),
                    CrashBurst(
                        at=0.7 * duration,
                        count=max(nodes // 8, 6),
                        correlated=True,
                        groups=3,
                    ),
                )
            ),
        ),
        Scenario(
            "flap_storm",
            "a third of links flap down longer than the failure timeout",
            FaultPlan(
                network=NetworkSpec(
                    flaps=(
                        FlapSpec(
                            down=4.0 * period,
                            up=2.0 * period,
                            fraction=0.35,
                            start=0.3 * duration,
                            end=0.85 * duration,
                        ),
                    ),
                )
            ),
        ),
    )
