"""End-to-end simulations: load-balancing runs and churn runs."""

from .churn import ChurnSimulation
from .config import ChurnConfig, MatchmakingConfig
from .faulty import FaultyGridConfig, FaultyGridResult, FaultyGridSimulation
from .metrics import cdf_at, empirical_cdf, jains_fairness, wait_time_table
from .results import ChurnResult, MatchmakingResult
from .simulation import GridSimulation, build_grid

__all__ = [
    "ChurnSimulation",
    "ChurnConfig",
    "MatchmakingConfig",
    "FaultyGridConfig",
    "FaultyGridResult",
    "FaultyGridSimulation",
    "cdf_at",
    "empirical_cdf",
    "jains_fairness",
    "wait_time_table",
    "ChurnResult",
    "MatchmakingResult",
    "GridSimulation",
    "build_grid",
]
