"""End-to-end simulations: load-balancing runs and churn runs."""

from .churn import ChurnSimulation
from .config import ChurnConfig, MatchmakingConfig
from .faults import (
    ChurnFaultDriver,
    CrashBurst,
    DiurnalChurn,
    FaultInjector,
    FaultPlan,
    JoinBurst,
    Scenario,
    scenario_pack,
)
from .faulty import FaultyGridConfig, FaultyGridResult, FaultyGridSimulation
from .invariants import (
    InvariantViolation,
    check_churn_invariants,
    check_faulty_invariants,
    check_matchmaking_accounting,
)
from .metrics import cdf_at, empirical_cdf, jains_fairness, wait_time_table
from .recovery import PendingRecovery, RecoveryTracker, RetryPolicy
from .results import ChurnResult, MatchmakingResult
from .simulation import GridSimulation, build_grid

__all__ = [
    "ChurnSimulation",
    "ChurnConfig",
    "MatchmakingConfig",
    "ChurnFaultDriver",
    "CrashBurst",
    "DiurnalChurn",
    "FaultInjector",
    "FaultPlan",
    "JoinBurst",
    "Scenario",
    "scenario_pack",
    "FaultyGridConfig",
    "FaultyGridResult",
    "FaultyGridSimulation",
    "InvariantViolation",
    "check_churn_invariants",
    "check_faulty_invariants",
    "check_matchmaking_accounting",
    "PendingRecovery",
    "RecoveryTracker",
    "RetryPolicy",
    "cdf_at",
    "empirical_cdf",
    "jains_fairness",
    "wait_time_table",
    "ChurnResult",
    "MatchmakingResult",
    "GridSimulation",
    "build_grid",
]
