"""Locality-preserving mapping from ResourceSpace points to Chord ring keys.

Chord identifies nodes and data by a single integer key on a ring of size
``2**RING_BITS``.  The grid's matchmaking, however, lives in the
d-dimensional :class:`~repro.can.space.ResourceSpace` — so the mapping from
points to keys must preserve multi-attribute locality for range queries to
touch contiguous ring segments.  We use a Morton (z-order) interleave:

* each dimension's coordinate in [0, 1) is quantised to ``bits[i]`` bits
  (``COORD_BITS`` total, distributed round-robin so early dimensions get
  the spare bits);
* the quantised values are bit-interleaved MSB-first across dimensions,
  giving a ``COORD_BITS``-bit z-order code.  Holding all other dimensions
  fixed, the code is monotone in each dimension, and an axis-aligned query
  box decomposes into a bounded set of contiguous code intervals (see
  :mod:`repro.chord.range_query`);
* the code occupies the *top* bits of the ring key; the bottom
  ``TIEBREAK_BITS`` come from a hash of the node id, so distinct nodes at
  identical coordinates still get distinct keys (the ring analogue of
  CAN's virtual dimension — which also participates in the interleave,
  spreading otherwise-identical nodes apart).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "ChordKeyspace",
    "RING_BITS",
    "RING_SIZE",
    "COORD_BITS",
    "TIEBREAK_BITS",
]

#: ring keys are integers modulo 2**RING_BITS
RING_BITS = 64
RING_SIZE = 1 << RING_BITS
#: bits of the key carrying the interleaved coordinate (the top bits)
COORD_BITS = 48
#: bits carrying the node-id tiebreak (the bottom bits)
TIEBREAK_BITS = RING_BITS - COORD_BITS

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Deterministic 64-bit mix (splitmix64 finalizer)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class ChordKeyspace:
    """Morton key mapping for one :class:`ResourceSpace` dimensionality."""

    def __init__(self, dims: int):
        if dims <= 0:
            raise ValueError("dims must be positive")
        if dims > COORD_BITS:
            raise ValueError(f"at most {COORD_BITS} dimensions supported")
        self.dims = dims
        base, extra = divmod(COORD_BITS, dims)
        #: quantisation bits per dimension
        self.bits: Tuple[int, ...] = tuple(
            base + (1 if d < extra else 0) for d in range(dims)
        )
        # Interleave schedule: (dim, bit-index) pairs, MSB-first round-robin
        # across dimensions — schedule[t] names the source bit of output
        # bit (COORD_BITS - 1 - t).
        schedule: List[Tuple[int, int]] = []
        for level in range(max(self.bits)):
            for d in range(dims):
                if level < self.bits[d]:
                    schedule.append((d, self.bits[d] - 1 - level))
        assert len(schedule) == COORD_BITS
        self.schedule: Tuple[Tuple[int, int], ...] = tuple(schedule)

    # -- quantisation -------------------------------------------------------
    def quantize(self, point: Sequence[float]) -> Tuple[int, ...]:
        """Per-dimension integer cells of a point (clamped into [0, 1))."""
        if len(point) != self.dims:
            raise ValueError(
                f"point has {len(point)} dims, keyspace has {self.dims}"
            )
        cells = []
        for d, x in enumerate(point):
            n = 1 << self.bits[d]
            q = int(min(max(float(x), 0.0), 1.0) * n)
            cells.append(min(q, n - 1))
        return tuple(cells)

    def interleave(self, cells: Sequence[int]) -> int:
        """Z-order code of quantised cells (``COORD_BITS`` bits)."""
        code = 0
        for dim, bit in self.schedule:
            code = (code << 1) | ((cells[dim] >> bit) & 1)
        return code

    # -- keys ---------------------------------------------------------------
    def point_key(self, point: Sequence[float]) -> int:
        """Ring key of a data point (tiebreak bits zero: the *smallest* key
        of the point's coordinate cell, so its owner is the successor of
        every node key sharing the cell)."""
        return self.interleave(self.quantize(point)) << TIEBREAK_BITS

    def node_key(self, node_id: int, coord: Sequence[float]) -> int:
        """Ring key of a node: its coordinate's z-code + an id tiebreak."""
        tiebreak = _splitmix64(node_id) & ((1 << TIEBREAK_BITS) - 1)
        return self.point_key(coord) | tiebreak

    def cell_key_range(self, cells: Sequence[int]) -> Tuple[int, int]:
        """Inclusive ring-key interval covered by one coordinate cell."""
        code = self.interleave(cells)
        lo = code << TIEBREAK_BITS
        return lo, lo | ((1 << TIEBREAK_BITS) - 1)
