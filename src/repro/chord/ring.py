"""Authoritative Chord ring: membership, key ownership, successor structure.

This is the ground-truth rival of :class:`~repro.can.overlay.CanOverlay`
behind the :class:`~repro.overlay.OverlaySubstrate` protocol.  Nodes sit on
a ``2**64`` key ring at the Morton key of their resource coordinate
(:mod:`repro.chord.keyspace`); a node *owns* the arc between its
predecessor's key (exclusive) and its own key (inclusive), so
``locate_owner(point)`` is the successor of the point's key — the exact
ring analogue of CAN's containing-leaf lookup.

Failure handling mirrors CAN's two-phase model: :meth:`fail` marks a member
dead while its arc lingers with the ghost (``locate_owner`` may return a
dead node until believers time it out), and :meth:`claim_zones` executes
the take-over — removal from the ring, which merges the vacated arc into
its successor.

The routing structure is configurable: ``successor_list_size`` ring
successors per node plus a finger table with ``finger_count`` exponents
(finger ``e`` points at ``successor(key + 2**e)``).  ``neighbors`` exposes
predecessor + successor list + fingers; ``neighbors_along(dim, dir)``
filters them by resource-coordinate order along one dimension, which is
what the directional aggregation flow and the matchmakers' push scopes
consume.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..overlay.base import SubstrateError
from .keyspace import RING_BITS, RING_SIZE, ChordKeyspace

__all__ = ["ChordRing", "ChordError", "ChordJoinResult", "ArcTransfer"]


class ChordError(SubstrateError):
    """Structural ring violation (bad join, unknown member, ...)."""


@dataclass(frozen=True)
class ChordJoinResult:
    """What happened during a join: the key and the prior arc owner."""

    node_id: int
    splitter_id: Optional[int]  # prior owner of the newcomer's arc; None for bootstrap
    key: int


@dataclass(frozen=True)
class ArcTransfer:
    """One arc hand-off produced by a leave or a post-failure claim."""

    lo_key: int  # exclusive
    hi_key: int  # inclusive
    from_node: int
    to_node: int


@dataclass
class ChordMember:
    node_id: int
    coord: Tuple[float, ...]
    key: int
    alive: bool = True


class ChordRing:
    """Ground-truth Chord: sorted key ring + membership + derived structure."""

    def __init__(
        self,
        space,
        successor_list_size: int = 4,
        finger_count: int = RING_BITS,
    ):
        if successor_list_size < 1:
            raise ValueError("successor_list_size must be >= 1")
        if not 0 <= finger_count <= RING_BITS:
            raise ValueError(f"finger_count must be in [0, {RING_BITS}]")
        self.space = space
        self.keyspace = ChordKeyspace(space.dims)
        self.successor_list_size = successor_list_size
        #: finger exponents, highest spans first (the low exponents are
        #: subsumed by the successor list)
        self.finger_exponents: Tuple[int, ...] = tuple(
            range(RING_BITS - 1, RING_BITS - 1 - finger_count, -1)
        )
        self.members: Dict[int, ChordMember] = {}
        self._ring: List[int] = []  # sorted member keys
        self._by_key: Dict[int, int] = {}
        #: bumped on every structural change; caches key off it
        self.topology_version: int = 0
        # lazy derived-structure caches, all invalidated by a version bump
        self._cache_version: int = -1
        self._nbr_cache: Dict[int, Set[int]] = {}
        self._dir_cache: Dict[int, Dict[Tuple[int, int], Set[int]]] = {}
        self._succ_cache: Dict[int, Tuple[int, ...]] = {}
        self._finger_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ queries --
    @property
    def size(self) -> int:
        """Number of members, dead-but-unclaimed included."""
        return len(self.members)

    def alive_ids(self) -> List[int]:
        return [m.node_id for m in self.members.values() if m.alive]

    def dead_ids(self) -> Set[int]:
        """Members still holding arcs but no longer alive."""
        return {m.node_id for m in self.members.values() if not m.alive}

    def is_alive(self, node_id: int) -> bool:
        member = self.members.get(node_id)
        return member is not None and member.alive

    def coordinate(self, node_id: int) -> Tuple[float, ...]:
        return self._member(node_id).coord

    def key_of(self, node_id: int) -> int:
        return self._member(node_id).key

    # -- ring order ---------------------------------------------------------
    def _succ_index(self, key: int) -> int:
        """Index in ``_ring`` of the first member key >= ``key`` (wrapped)."""
        i = bisect_left(self._ring, key)
        return 0 if i == len(self._ring) else i

    def successor_of_key(self, key: int) -> int:
        """The member owning ``key``: the first node at or after it."""
        if not self._ring:
            raise ChordError("overlay is empty")
        return self._by_key[self._ring[self._succ_index(key)]]

    def locate_owner(self, point: Sequence[float]) -> int:
        """Owner of a resource-space point (dead ghosts included)."""
        return self.successor_of_key(self.keyspace.point_key(point))

    def successor_list(self, node_id: int) -> Tuple[int, ...]:
        """The next ``successor_list_size`` members clockwise (dead included)."""
        self._fresh_caches()
        cached = self._succ_cache.get(node_id)
        if cached is not None:
            return cached
        member = self._member(node_id)
        n = len(self._ring)
        count = min(self.successor_list_size, n - 1)
        start = bisect_left(self._ring, member.key)
        succ = tuple(
            self._by_key[self._ring[(start + 1 + j) % n]] for j in range(count)
        )
        self._succ_cache[node_id] = succ
        return succ

    def predecessor(self, node_id: int) -> Optional[int]:
        member = self._member(node_id)
        n = len(self._ring)
        if n < 2:
            return None
        i = bisect_left(self._ring, member.key)
        return self._by_key[self._ring[(i - 1) % n]]

    def fingers(self, node_id: int) -> Tuple[int, ...]:
        """Finger targets: ``successor(key + 2**e)`` per exponent (deduped,
        self excluded, ring order of exponents preserved)."""
        self._fresh_caches()
        cached = self._finger_cache.get(node_id)
        if cached is not None:
            return cached
        member = self._member(node_id)
        seen: Set[int] = {node_id}
        out: List[int] = []
        for e in self.finger_exponents:
            target = self.successor_of_key((member.key + (1 << e)) % RING_SIZE)
            if target not in seen:
                seen.add(target)
                out.append(target)
        fingers = tuple(out)
        self._finger_cache[node_id] = fingers
        return fingers

    def neighbors(self, node_id: int) -> Set[int]:
        """Ground-truth routing neighbors: predecessor + successor list +
        fingers (liveness not filtered, as in the CAN overlay)."""
        self._fresh_caches()
        cached = self._nbr_cache.get(node_id)
        if cached is not None:
            return set(cached)
        nbrs: Set[int] = set(self.successor_list(node_id))
        pred = self.predecessor(node_id)
        if pred is not None:
            nbrs.add(pred)
        nbrs.update(self.fingers(node_id))
        nbrs.discard(node_id)
        self._nbr_cache[node_id] = nbrs
        return set(nbrs)

    def neighbors_along(self, node_id: int, dim: int, direction: int) -> Set[int]:
        """Ring neighbors whose coordinate lies toward ``direction`` along
        resource dimension ``dim`` (ties excluded, like a CAN face crossing)."""
        if direction not in (-1, +1):
            raise ValueError("direction must be +1 or -1")
        self._fresh_caches()
        per_node = self._dir_cache.get(node_id)
        if per_node is None:
            per_node = self._dir_cache[node_id] = {}
        key = (dim, direction)
        cached = per_node.get(key)
        if cached is None:
            own = self._member(node_id).coord[dim]
            members = self.members
            if direction > 0:
                cached = {
                    nid
                    for nid in self.neighbors(node_id)
                    if members[nid].coord[dim] > own
                }
            else:
                cached = {
                    nid
                    for nid in self.neighbors(node_id)
                    if members[nid].coord[dim] < own
                }
            per_node[key] = cached
        return set(cached)

    def takeover_targets(
        self, node_id: int, dead: Optional[Set[int]] = None
    ) -> Set[int]:
        """Who would absorb this node's arc if it vanished right now: its
        first non-dead successor (what the node computes locally from its
        successor list)."""
        member = self._member(node_id)
        dead_now = self.dead_ids() if dead is None else dead
        n = len(self._ring)
        start = bisect_left(self._ring, member.key)
        for j in range(1, n):
            candidate = self._by_key[self._ring[(start + j) % n]]
            if candidate != node_id and candidate not in dead_now:
                return {candidate}
        return set()

    # ------------------------------------------------------------------ mutation --
    def _bump(self) -> None:
        self.topology_version += 1

    def _fresh_caches(self) -> None:
        if self._cache_version != self.topology_version:
            self._cache_version = self.topology_version
            self._nbr_cache = {}
            self._dir_cache = {}
            self._succ_cache = {}
            self._finger_cache = {}

    def add_node(self, node_id: int, coord: Sequence[float]) -> ChordJoinResult:
        """Bootstrap (first member) or join by taking over part of an arc."""
        coord = tuple(float(c) for c in coord)
        if len(coord) != self.space.dims:
            raise ChordError(
                f"coordinate has {len(coord)} dims, space has {self.space.dims}"
            )
        if node_id in self.members:
            raise ChordError(f"node {node_id} already present")
        key = self.keyspace.node_key(node_id, coord)
        while key in self._by_key:
            key = (key + 1) % RING_SIZE  # deterministic collision probe
        if not self._ring:
            self.members[node_id] = ChordMember(node_id, coord, key)
            self._by_key[key] = node_id
            self._ring.append(key)
            self._bump()
            return ChordJoinResult(node_id, None, key)
        splitter_id = self.successor_of_key(key)
        if not self.members[splitter_id].alive:
            raise ChordError(
                f"join arc owned by dead node {splitter_id}; "
                "retry after the arc is claimed"
            )
        self.members[node_id] = ChordMember(node_id, coord, key)
        self._by_key[key] = node_id
        insort(self._ring, key)
        self._bump()
        return ChordJoinResult(node_id, splitter_id, key)

    def graceful_leave(self, node_id: int) -> List[ArcTransfer]:
        """Voluntary departure: the arc hands off to the successor at once."""
        member = self._member(node_id)
        if not member.alive:
            raise ChordError(f"node {node_id} already failed")
        return self._remove(member)

    def fail(self, node_id: int) -> None:
        """Silent crash: the arc stays registered to the ghost until claimed."""
        member = self._member(node_id)
        if not member.alive:
            raise ChordError(f"node {node_id} already failed")
        member.alive = False
        self._bump()

    def claim_zones(self, dead_id: int) -> List[ArcTransfer]:
        """Execute the take-over for a detected failure: ring removal, which
        merges the vacated arc into its successor."""
        member = self._member(dead_id)
        if member.alive:
            raise ChordError(f"node {dead_id} has not failed")
        return self._remove(member)

    def _remove(self, member: ChordMember) -> List[ArcTransfer]:
        n = len(self._ring)
        i = bisect_left(self._ring, member.key)
        transfers: List[ArcTransfer] = []
        if n > 1:
            pred_key = self._ring[(i - 1) % n]
            heir = self._by_key[self._ring[(i + 1) % n]]
            transfers.append(
                ArcTransfer(pred_key, member.key, member.node_id, heir)
            )
        # Last member standing: the arc simply disappears with it.
        del self._ring[i]
        del self._by_key[member.key]
        del self.members[member.node_id]
        self._bump()
        return transfers

    # ------------------------------------------------------------------ invariants --
    def check_invariants(self) -> None:
        """Ring order + key bijection + full-ring arc coverage + derived
        structure spot checks (the ring analogue of CAN's zone-partition
        audit).  Raises ``AssertionError`` on violation."""
        keys = self._ring
        if len(keys) != len(self.members) or len(keys) != len(self._by_key):
            raise AssertionError(
                f"ring desync: {len(keys)} keys, {len(self.members)} members, "
                f"{len(self._by_key)} key map entries"
            )
        for a, b in zip(keys, keys[1:]):
            if a >= b:
                raise AssertionError(f"ring keys not strictly sorted: {a} >= {b}")
        # independent recompute of the sorted order from the member records
        expected = sorted(m.key for m in self.members.values())
        if keys != expected:
            raise AssertionError("ring order desynced from member keys")
        for member in self.members.values():
            if not 0 <= member.key < RING_SIZE:
                raise AssertionError(f"key out of range: {member.key}")
            if self._by_key.get(member.key) != member.node_id:
                raise AssertionError(
                    f"key map desync for node {member.node_id}"
                )
        # full coverage: the arcs (pred, self] partition the whole ring
        if len(keys) > 1:
            covered = sum(
                (keys[i] - keys[i - 1]) % RING_SIZE for i in range(len(keys))
            )
            if covered != RING_SIZE:
                raise AssertionError(
                    f"arcs cover {covered} of {RING_SIZE} ring positions"
                )
        self._check_derived_sample()

    def _check_derived_sample(self, sample: int = 8) -> None:
        """Verify successor lists, predecessors and fingers for a sample of
        members by independent linear scan (not the bisect fast path)."""
        if not self.members:
            return
        ordered = sorted(
            self.members.values(), key=lambda m: m.key
        )  # independent of _ring
        n = len(ordered)
        index_of = {m.node_id: i for i, m in enumerate(ordered)}
        for member in sorted(self.members.values(), key=lambda m: m.node_id)[
            :sample
        ]:
            i = index_of[member.node_id]
            count = min(self.successor_list_size, n - 1)
            expect_succ = tuple(
                ordered[(i + 1 + j) % n].node_id for j in range(count)
            )
            if self.successor_list(member.node_id) != expect_succ:
                raise AssertionError(
                    f"successor list of {member.node_id} desynced"
                )
            expect_pred = ordered[(i - 1) % n].node_id if n > 1 else None
            if self.predecessor(member.node_id) != expect_pred:
                raise AssertionError(f"predecessor of {member.node_id} desynced")
            for e in self.finger_exponents:
                start = (member.key + (1 << e)) % RING_SIZE
                # independent linear scan: the member at minimal clockwise
                # distance from the finger start
                expect = min(
                    ordered, key=lambda m: (m.key - start) % RING_SIZE
                ).node_id
                if self.successor_of_key(start) != expect:
                    raise AssertionError(
                        f"finger 2**{e} of {member.node_id} desynced"
                    )

    def _member(self, node_id: int) -> ChordMember:
        member = self.members.get(node_id)
        if member is None:
            raise ChordError(f"unknown node {node_id}")
        return member
