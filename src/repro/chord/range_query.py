"""Multi-attribute range queries over the Chord ring.

The Morton key mapping (:mod:`repro.chord.keyspace`) makes an axis-aligned
box in the :class:`~repro.can.space.ResourceSpace` decompose into a bounded
set of *contiguous ring-key intervals*: walking the z-order trie along the
interleave schedule, a subtree is emitted whole when its per-dimension cell
ranges sit entirely inside the query box, pruned when disjoint, and split
otherwise.  Descent depth is capped — a capped subtree is emitted whole,
giving a slightly over-approximate but still contiguous cover, and the
exact coordinate filter at the end removes false positives.

Guarantee: every ring member whose coordinate lies inside the box has its
node key inside the emitted cover (intervals are cell-aligned, so the
tiebreak bits are always fully covered), hence appears among the owners of
the cover.  This is what lets a matchmaker resolve a multi-attribute
requirement ("cpu >= x and memory >= y") to the exact set of arc owners to
contact — the ring analogue of CAN's zone-overlap enumeration.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .keyspace import TIEBREAK_BITS, ChordKeyspace
from .ring import ChordError, ChordRing

__all__ = ["KeyInterval", "RangeQueryResult", "box_key_intervals", "range_query"]

#: trie levels explored before a subtree is emitted whole; bounds the
#: number of intervals at 2**MAX_SPLIT_DEPTH while keeping the cover tight
#: on the coarse (high-order) bits that dominate ring placement
MAX_SPLIT_DEPTH = 16


@dataclass(frozen=True)
class KeyInterval:
    """Inclusive ring-key interval ``[lo, hi]`` (never wraps)."""

    lo: int
    hi: int


@dataclass(frozen=True)
class RangeQueryResult:
    """Resolved range query: the key cover, its owners, and exact matches."""

    intervals: Tuple[KeyInterval, ...]
    owners: Tuple[int, ...]  # alive arc owners covering the intervals
    matches: Tuple[int, ...]  # members whose coordinate is inside the box


def box_key_intervals(
    keyspace: ChordKeyspace,
    lows: Sequence[float],
    highs: Sequence[float],
    max_split_depth: int = MAX_SPLIT_DEPTH,
) -> Tuple[KeyInterval, ...]:
    """Contiguous ring-key cover of the box ``[lows, highs]`` (inclusive).

    The returned intervals are disjoint, sorted ascending, cell-aligned
    (tiebreak bits fully covered) and a superset of the exact box image.
    """
    if len(lows) != keyspace.dims or len(highs) != keyspace.dims:
        raise ValueError("box bounds must match keyspace dims")
    lo_cells = keyspace.quantize(lows)
    hi_cells = keyspace.quantize(highs)
    for d in range(keyspace.dims):
        if lo_cells[d] > hi_cells[d]:
            return ()

    schedule = keyspace.schedule
    total_bits = len(schedule)
    raw: List[Tuple[int, int]] = []

    # Iterative descent: (depth, code-prefix, per-dim consumed-bit prefixes).
    # A prefix of b_d bits for dimension d constrains its cell to
    # [p_d << (bits_d - b_d), ((p_d + 1) << (bits_d - b_d)) - 1].
    stack: List[Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]] = [
        (0, 0, (0,) * keyspace.dims, (0,) * keyspace.dims)
    ]
    while stack:
        depth, code, prefixes, consumed = stack.pop()
        inside = True
        for d in range(keyspace.dims):
            rem = keyspace.bits[d] - consumed[d]
            cell_lo = prefixes[d] << rem
            cell_hi = ((prefixes[d] + 1) << rem) - 1
            if cell_hi < lo_cells[d] or cell_lo > hi_cells[d]:
                inside = False
                break  # disjoint: prune the subtree
            if cell_lo < lo_cells[d] or cell_hi > hi_cells[d]:
                inside = None  # straddles the boundary in this dimension
        if inside is False:
            continue
        remaining = total_bits - depth
        if inside is True or depth >= max_split_depth:
            lo_code = code << remaining
            hi_code = ((code + 1) << remaining) - 1
            raw.append((lo_code, hi_code))
            continue
        dim, _bit = schedule[depth]
        for branch in (1, 0):  # LIFO stack: push 1 first, visit 0 first
            new_prefixes = list(prefixes)
            new_prefixes[dim] = (prefixes[dim] << 1) | branch
            new_consumed = list(consumed)
            new_consumed[dim] += 1
            stack.append(
                (
                    depth + 1,
                    (code << 1) | branch,
                    tuple(new_prefixes),
                    tuple(new_consumed),
                )
            )

    raw.sort()
    merged: List[KeyInterval] = []
    for lo_code, hi_code in raw:
        lo = lo_code << TIEBREAK_BITS
        hi = (hi_code << TIEBREAK_BITS) | ((1 << TIEBREAK_BITS) - 1)
        if merged and merged[-1].hi + 1 == lo:
            merged[-1] = KeyInterval(merged[-1].lo, hi)
        else:
            merged.append(KeyInterval(lo, hi))
    return tuple(merged)


def range_query(
    overlay: ChordRing,
    lows: Sequence[float],
    highs: Sequence[float],
    max_split_depth: int = MAX_SPLIT_DEPTH,
) -> RangeQueryResult:
    """Resolve a multi-attribute box query to arc owners and exact matches.

    ``owners`` is every *alive* member whose arc intersects the key cover
    (the nodes a matchmaker would contact); ``matches`` is the alive
    members whose resource coordinate actually lies inside the box — by
    the cover guarantee, ``matches`` owners are a subset of ``owners``.
    """
    intervals = box_key_intervals(overlay.keyspace, lows, highs, max_split_depth)
    if not intervals:
        return RangeQueryResult((), (), ())
    if not overlay.members:
        raise ChordError("range query over an empty ring")

    ring_keys = sorted(m.key for m in overlay.members.values())
    by_key = {m.key: m for m in overlay.members.values()}
    n = len(ring_keys)

    owner_ids: List[int] = []
    seen = set()
    for iv in intervals:
        # members with keys inside [lo, hi] own keys there...
        i = bisect_left(ring_keys, iv.lo)
        j = bisect_right(ring_keys, iv.hi)
        span = list(range(i, j))
        # ...and the successor of hi owns the tail past the last such key
        span.append(j % n)
        for idx in dict.fromkeys(span):
            member = by_key[ring_keys[idx % n]]
            if member.alive and member.node_id not in seen:
                seen.add(member.node_id)
                owner_ids.append(member.node_id)

    lo_t = tuple(float(x) for x in lows)
    hi_t = tuple(float(x) for x in highs)
    matches = tuple(
        sorted(
            m.node_id
            for m in overlay.members.values()
            if m.alive
            and all(lo_t[d] <= m.coord[d] <= hi_t[d] for d in range(len(lo_t)))
        )
    )
    return RangeQueryResult(intervals, tuple(sorted(owner_ids)), matches)
