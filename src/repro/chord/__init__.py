"""Chord ring substrate: the CAN rival behind the overlay protocol.

Layout mirrors :mod:`repro.can`:

* :mod:`~repro.chord.keyspace` — locality-preserving (Morton) mapping from
  resource-space points to ring keys
* :mod:`~repro.chord.ring` — ground-truth ring membership and structure
* :mod:`~repro.chord.routing` — O(log n) key routing (ground truth and on
  believed state)
* :mod:`~repro.chord.protocol` — heartbeat maintenance, failure detection,
  take-over (the information plane)
* :mod:`~repro.chord.range_query` — multi-attribute box queries over the
  z-order key cover
"""

from .keyspace import COORD_BITS, RING_BITS, RING_SIZE, TIEBREAK_BITS, ChordKeyspace
from .protocol import ChordMaintenanceProtocol, ChordProtocolNode
from .range_query import KeyInterval, RangeQueryResult, box_key_intervals, range_query
from .ring import ArcTransfer, ChordError, ChordJoinResult, ChordMember, ChordRing
from .routing import chord_route, chord_route_on_beliefs

__all__ = [
    "COORD_BITS",
    "RING_BITS",
    "RING_SIZE",
    "TIEBREAK_BITS",
    "ChordKeyspace",
    "ChordMaintenanceProtocol",
    "ChordProtocolNode",
    "KeyInterval",
    "RangeQueryResult",
    "box_key_intervals",
    "range_query",
    "ArcTransfer",
    "ChordError",
    "ChordJoinResult",
    "ChordMember",
    "ChordRing",
    "chord_route",
    "chord_route_on_beliefs",
]
