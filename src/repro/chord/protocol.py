"""The Chord maintenance protocol: heartbeats, failures, take-overs, repair.

The information-plane rival of :class:`~repro.can.heartbeat
.HeartbeatProtocol`, exposing the same external surface (the
:class:`~repro.overlay.MaintenanceProtocol` protocol) so the churn/fault
simulations and invariant checkers drive either substrate identically.
Ground truth (ring order, arc ownership) lives in
:class:`~repro.chord.ring.ChordRing`; what each node *believes* lives here.

A node's believed state is a set of known peers with last-heard evidence;
its successor list, predecessor and finger table are *derived* from that
set by ring order (the same computation a real Chord node performs over
learned peer keys).  Peers that fall out of the derived structure are
pruned — believed state stays O(successors + fingers), the ring analogue
of CAN tables keeping only abutting records.

The three heartbeat schemes mirror the paper's Section IV semantics:

* **vanilla** — every heartbeat carries the sender's full peer list;
  receivers repair their structure from third-party entries.
* **compact** — the full list goes only to the sender's believed first
  successor (its predetermined take-over node); everyone else gets a bare
  heartbeat.  Mutual losses can no longer self-heal.
* **adaptive** — compact, plus an on-demand full-update request broadcast
  when the local detector notices a structural gap (successor list shorter
  than configured; the ring analogue of CAN's zone-coverage check).

Heartbeats are *round-trip probes*, as Chord's stabilize/fix-fingers RPCs
are: a delivered heartbeat refreshes the receiver's evidence of the sender
AND the sender's evidence of the target (the ack — tiny, untallied), so
every node directly monitors its whole believed peer set and a dead peer
goes silent to all its believers at once.  Third-party gossip carries the
*source's* evidence timestamps, never fresher, so a gossip cycle cannot
keep a dead node believed-alive.  A compact heartbeat also doubles as
Chord's *notify*: hearing from an unknown peer inserts it into the
receiver's known set, where derivation keeps it iff it improves the
predecessor/successor structure.

Failure handling follows the CAN two-phase model byte-for-byte in shape:
silent crashes are noticed by believers' timeouts (detection latency is
emergent), and after ``failure_timeout`` the ring executes the take-over —
the vacated arc merges into the successor, which notifies the dead node's
believers from the state it stored via full heartbeats.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..can.heartbeat import HeartbeatScheme, ProtocolConfig
from ..can.messages import MessageType
from ..can.stats import MessageStats
from ..net import IDENTITY, NetworkModel, NetworkSpec
from ..obs.profiling import NULL_PROFILER
from ..sim.monitor import TimeSeries
from .keyspace import RING_SIZE
from .ring import ChordError, ChordRing

__all__ = ["ChordMaintenanceProtocol", "ChordProtocolNode"]


class DerivedStructure(NamedTuple):
    """A node's believed ring structure, derived from its known peers."""

    successors: Tuple[int, ...]
    predecessor: Optional[int]
    fingers: Tuple[int, ...]
    peers: Tuple[int, ...]  # deduped successors + predecessor + fingers
    peer_set: frozenset


_EMPTY = DerivedStructure((), None, (), (), frozenset())


class ChordProtocolNode:
    """Per-node protocol state: known peers, stored peer lists, gap flags."""

    __slots__ = (
        "node_id",
        "known",
        "epoch",
        "stored_state",
        "gap_dirty",
        "gap_attempts",
        "_derived_cache",
        "_derived_epoch",
    )

    def __init__(self, node_id: int):
        self.node_id = node_id
        #: believed peer -> last-heard time (direct messages stamp ``now``;
        #: gossip carries the sender's evidence, never fresher)
        self.known: Dict[int, float] = {}
        #: bumped on every structural change of ``known`` (id added/removed)
        self.epoch = 0
        #: peer -> snapshot of its known map (from full heartbeats) — what
        #: makes an informed take-over notification possible
        self.stored_state: Dict[int, Dict[int, float]] = {}
        self.gap_dirty = False
        self.gap_attempts = 0
        self._derived_cache: Optional[DerivedStructure] = None
        self._derived_epoch = -1


class ChordMaintenanceProtocol:
    """Drives heartbeat rounds plus the join/leave/failure protocol."""

    def __init__(
        self,
        overlay: ChordRing,
        config: ProtocolConfig,
        rng: Optional["np.random.Generator"] = None,
        tracer: Optional[object] = None,
        profiler: Optional[object] = None,
        metrics: Optional[object] = None,
    ):
        self.overlay = overlay
        self.config = config
        self._rng = rng
        self.tracer = tracer
        self.metrics = metrics
        self._detection_sketch = (
            metrics.scope("hb").quantile_sketch("detection_latency")
            if metrics is not None
            else None
        )
        self.profiler = profiler
        self.stats = MessageStats()
        self.nodes: Dict[int, ChordProtocolNode] = {}
        self.broken_links = TimeSeries("broken_links")
        self._fail_times: Dict[int, float] = {}
        self._pending_joins: List[Tuple[int, Tuple[float, ...]]] = []
        self._round = 0
        self._now = 0.0
        #: append-only id -> ring key (node keys never change; believed
        #: records outliving the member still resolve)
        self._key: Dict[int, int] = {}
        #: full-update replies in flight: (receiver id, responder id,
        #: responder known snapshot) — delivered next round
        self._reply_queue: List[Tuple[int, int, Dict[int, float]]] = []
        self.events = {"joins": 0, "leaves": 0, "failures": 0, "claims": 0}
        #: reverse index of stored_state: subject id -> holder ids
        self._stored_in: Dict[int, Set[int]] = {}
        self.on_failure_detected: Optional[Callable[[int, float], None]] = None
        self._detected_failures: Set[int] = set()
        #: the network channel every unreliable send traverses; IDENTITY
        #: is bypassed entirely (no RNG draws), keeping seeded runs
        #: unchanged
        self.net: NetworkModel = IDENTITY
        #: heartbeats in flight with super-period latency, as (arrival,
        #: kind, receiver id, sender id, known snapshot|None, send time)
        self._deferred: List[
            Tuple[float, str, int, int, Optional[Dict[int, float]], float]
        ] = []
        self._net_sketch = (
            metrics.scope("net").quantile_sketch("delivery_latency")
            if metrics is not None
            else None
        )

    # ------------------------------------------------------------------ accounting --
    def _record(
        self, now: float, mtype: MessageType, size_bytes: int, copies: int = 1
    ) -> None:
        self.stats.record(mtype, size_bytes, copies)
        if self.tracer is not None and copies:
            self.tracer.emit(
                now, "msg.sent", mtype=mtype.value, bytes=size_bytes, copies=copies
            )

    # ------------------------------------------------------------------ derived state --
    def key_of(self, node_id: int) -> int:
        """Ring key of any id ever seen (members and former members)."""
        return self._key[node_id]

    def _derived(self, pnode: ChordProtocolNode) -> DerivedStructure:
        """Believed structure from known peers, pruning irrelevant ids.

        Pruning is stable: the derived structure over the kept peers equals
        the structure over the full known set (every successor/predecessor/
        finger is itself kept), so one recompute after a prune suffices.
        """
        if (
            pnode._derived_cache is not None
            and pnode._derived_epoch == pnode.epoch
        ):
            return pnode._derived_cache
        while True:
            derived = self._compute_derived(pnode)
            drop = [n for n in pnode.known if n not in derived.peer_set]
            if not drop:
                pnode._derived_cache = derived
                pnode._derived_epoch = pnode.epoch
                return derived
            for nid in drop:
                del pnode.known[nid]
            pnode.epoch += 1

    def _compute_derived(self, pnode: ChordProtocolNode) -> DerivedStructure:
        if not pnode.known:
            return _EMPTY
        key = self._key
        ids = sorted(pnode.known, key=key.__getitem__)
        keys = [key[nid] for nid in ids]
        n = len(ids)
        own_key = key[pnode.node_id]
        pos = bisect_left(keys, own_key) % n
        succ_count = min(self.overlay.successor_list_size, n)
        successors = tuple(ids[(pos + j) % n] for j in range(succ_count))
        predecessor = ids[(pos - 1) % n]
        fingers: List[int] = []
        seen: Set[int] = set(successors)
        seen.add(predecessor)
        for e in self.overlay.finger_exponents:
            j = bisect_left(keys, (own_key + (1 << e)) % RING_SIZE) % n
            fid = ids[j]
            if fid not in seen:
                seen.add(fid)
                fingers.append(fid)
        peers = successors + (predecessor,) + tuple(fingers)
        peers = tuple(dict.fromkeys(peers))
        return DerivedStructure(
            successors, predecessor, tuple(fingers), peers, frozenset(peers)
        )

    def believed_peers(self, node_id: int) -> Tuple[int, ...]:
        """The node's believed routing peers (successors, pred, fingers)."""
        return self._derived(self.nodes[node_id]).peers

    def believed_successors(self, node_id: int) -> Tuple[int, ...]:
        return self._derived(self.nodes[node_id]).successors

    # ------------------------------------------------------------------ belief edits --
    def _hear(self, pnode: ChordProtocolNode, sender_id: int, now: float) -> None:
        """A direct message from ``sender_id`` arrived: fresh evidence."""
        if sender_id == pnode.node_id:
            return
        if sender_id in pnode.known:
            pnode.known[sender_id] = now
        else:
            pnode.known[sender_id] = now
            pnode.epoch += 1

    def _gossip(
        self, pnode: ChordProtocolNode, subject_id: int, heard_at: float
    ) -> None:
        """A third-party entry arrived: evidence capped at the source's."""
        if subject_id == pnode.node_id:
            return
        existing = pnode.known.get(subject_id)
        if existing is None:
            pnode.known[subject_id] = heard_at
            pnode.epoch += 1
        elif heard_at > existing:
            pnode.known[subject_id] = heard_at

    def _forget(self, pnode: ChordProtocolNode, subject_id: int) -> bool:
        if subject_id in pnode.known:
            del pnode.known[subject_id]
            pnode.epoch += 1
            pnode.gap_dirty = True
            return True
        return False

    # ------------------------------------------------------------------ membership --
    def _make_node(self, node_id: int) -> ChordProtocolNode:
        node = ChordProtocolNode(node_id)
        self.nodes[node_id] = node
        self._key[node_id] = self.overlay.key_of(node_id)
        return node

    def _drop_node(self, node_id: int) -> None:
        del self.nodes[node_id]

    def bootstrap(self, node_id: int, coord: Sequence[float], now: float = 0.0) -> None:
        """Insert the very first ring member."""
        self.overlay.add_node(node_id, coord)
        self._make_node(node_id)

    def join(self, node_id: int, coord: Sequence[float], now: float) -> bool:
        """A node joins; returns False when deferred (target arc in limbo)."""
        coord = tuple(coord)
        try:
            result = self.overlay.add_node(node_id, coord)
        except ChordError:
            # The containing arc belongs to a failed-but-unclaimed node;
            # retry once the take-over has happened.
            self._pending_joins.append((node_id, coord))
            if self.tracer is not None:
                self.tracer.emit(now, "chord.join_deferred", node=node_id)
            return False
        self.events["joins"] += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, "chord.join", node=node_id, splitter=result.splitter_id
            )
        newcomer = self._make_node(node_id)
        if result.splitter_id is None:
            return True
        splitter = self.nodes[result.splitter_id]

        model = self.config.size_model
        dims = self.overlay.space.dims

        # Join reply: the prior arc owner hands the newcomer its own entry
        # plus its full peer list — the newcomer derives its structure from
        # that (Chord's join-by-successor bootstrapping).
        self._record(
            now,
            MessageType.JOIN_REPLY,
            model.table_bytes_from_totals(
                dims, len(splitter.known) + 1, len(splitter.known) + 1
            ),
        )
        for nid, heard_at in splitter.known.items():
            self._gossip(newcomer, nid, heard_at)
        self._hear(newcomer, splitter.node_id, now)
        newcomer.gap_dirty = True
        self._hear(splitter, node_id, now)
        splitter.gap_dirty = True

        # Join notify: the splitter announces the newcomer to its believed
        # peers so predecessors/fingers can adopt it.
        targets = [
            t for t in self._derived(splitter).peers if t != node_id
        ]
        self._record(
            now, MessageType.JOIN_NOTIFY, model.notify_bytes(dims), len(targets)
        )
        net_active = not self.net.is_identity
        for target_id in sorted(targets):
            if (
                net_active
                and self._transmit(splitter.node_id, target_id, now) is None
            ):
                continue  # notify lost; heartbeats converge the structure
            receiver = self._deliverable(target_id)
            if receiver is None:
                continue
            self._hear(receiver, splitter.node_id, now)
            self._gossip(receiver, node_id, now)
        return True

    def graceful_leave(self, node_id: int, now: float) -> None:
        """Voluntary departure with explicit hand-off to the successor."""
        leaver = self.nodes[node_id]
        leaver_known = dict(leaver.known)
        transfers = self.overlay.graceful_leave(node_id)
        self.events["leaves"] += 1
        if self.tracer is not None:
            self.tracer.emit(now, "chord.leave", node=node_id)
        model = self.config.size_model
        dims = self.overlay.space.dims
        handoff_size = model.table_bytes_from_totals(
            dims, len(leaver_known) + 1, len(leaver_known) + 1
        )
        for transfer in transfers:
            heir = self.nodes.get(transfer.to_node)
            if heir is None or not self.overlay.is_alive(transfer.to_node):
                continue  # the arc landed on a ghost; claimed later
            self._record(now, MessageType.HANDOFF, handoff_size)
            for nid, heard_at in leaver_known.items():
                self._gossip(heir, nid, heard_at)
            self._forget(heir, node_id)
            heir.gap_dirty = True
            self._notify_takeover(heir, node_id, leaver_known, now)
        self._drop_node(node_id)
        self._purge_stored(node_id)

    def fail(self, node_id: int, now: float) -> None:
        """Silent crash: no messages; believers find out via timeouts."""
        self.overlay.fail(node_id)
        self.events["failures"] += 1
        self._fail_times[node_id] = now
        if self.tracer is not None:
            self.tracer.emit(now, "chord.fail", node=node_id)

    def adopt_overlay(self, now: float = 0.0) -> None:
        """Warm-start believed state for a ring built outside the protocol.

        Every member gets a protocol node whose known set is seeded with
        its ground-truth predecessor, successor list and fingers, freshly
        heard at ``now`` — the state a long-converged protocol would be in.
        """
        for node_id in sorted(self.overlay.members):
            if node_id not in self.nodes:
                self._make_node(node_id)
        for node_id, pnode in self.nodes.items():
            seeds: Set[int] = set(self.overlay.successor_list(node_id))
            pred = self.overlay.predecessor(node_id)
            if pred is not None:
                seeds.add(pred)
            seeds.update(self.overlay.fingers(node_id))
            seeds.discard(node_id)
            for nid in sorted(seeds):
                if nid in self.nodes:
                    self._hear(pnode, nid, now)

    def set_network(self, model: Optional[NetworkModel]) -> None:
        """Install the channel every unreliable send traverses.

        Same contract as the CAN protocol: heartbeats, notifies, and the
        adaptive request/reply path all go through ``model.transmit``;
        the join reply and graceful-leave hand-off stay reliable
        (acknowledged transfers, not datagrams).
        """
        self.net = IDENTITY if model is None else model

    def set_message_loss(
        self, rate: float, rng: Optional["np.random.Generator"]
    ) -> None:
        """Drop each unreliable delivery independently with ``rate``.

        Compatibility wrapper over :meth:`set_network`; ``rate == 1`` is
        a total blackout (every send dropped).
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        if rate == 0.0:
            self.net = IDENTITY
        else:
            self.net = NetworkModel(NetworkSpec(loss=rate), rng)

    def _transmit(self, src: int, dst: int, now: float) -> Optional[float]:
        """Send one message through the channel: None = dropped in flight."""
        lat = self.net.transmit(src, dst, now)
        if lat is None:
            if self.tracer is not None:
                self.tracer.emit(now, "net.drop", src=src, dst=dst)
            return None
        if self._net_sketch is not None:
            self._net_sketch.insert(lat)
        return lat

    # ------------------------------------------------------------------ the round --
    def run_round(self, now: float) -> None:
        """One heartbeat period: exchange, detect, claim, repair, measure."""
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        self._round += 1
        self._now = now
        self.stats.track_population(now, len(self.overlay.alive_ids()))
        with prof.scope(f"hb.round.{self.config.scheme.value}"):
            with prof.scope("hb.retry_joins"):
                self._retry_pending_joins(now)
            with prof.scope("hb.exchange"):
                self._exchange_heartbeats(now)
            with prof.scope("hb.deliver_replies"):
                self._deliver_replies(now)
            with prof.scope("hb.detect_failures"):
                self._detect_failures(now)
            with prof.scope("hb.claim_zones"):
                self._claim_timed_out_zones(now)
            if self.config.scheme is HeartbeatScheme.ADAPTIVE:
                with prof.scope("hb.gap_checks"):
                    self._adaptive_gap_checks(now)
            with prof.scope("hb.count_broken_links"):
                broken = self.count_broken_links()
        self.broken_links.record(now, float(broken))
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "hb.round",
                round=self._round,
                population=len(self.overlay.alive_ids()),
                broken_links=broken,
            )

    # -- heartbeat exchange -------------------------------------------------
    def _exchange_heartbeats(self, now: float) -> None:
        vanilla = self.config.scheme is HeartbeatScheme.VANILLA
        model = self.config.size_model
        dims = self.overlay.space.dims
        compact_size = model.heartbeat_bytes(dims, 1, None)
        net = self.net if not self.net.is_identity else None
        period = self.config.period
        for node_id in sorted(self.nodes):
            if not self.overlay.is_alive(node_id):
                continue  # ghosts are silent
            sender = self.nodes[node_id]
            derived = self._derived(sender)
            targets = sorted(derived.peers)
            if not targets:
                continue
            full_size = model.heartbeat_bytes_from_totals(
                dims, 1, len(sender.known), len(sender.known)
            )
            if vanilla:
                full_targets: List[int] = targets
                compact_targets: List[int] = []
            else:
                # full state only to the believed take-over node: the first
                # believed successor, which would absorb this node's arc
                tset = set(derived.successors[:1])
                full_targets = [t for t in targets if t in tset]
                compact_targets = [t for t in targets if t not in tset]
            self._record(
                now, MessageType.HEARTBEAT_FULL, full_size, len(full_targets)
            )
            self._record(
                now, MessageType.HEARTBEAT, compact_size, len(compact_targets)
            )
            for target_id in full_targets:
                if net is not None:
                    lat = self._transmit(node_id, target_id, now)
                    if lat is None:
                        continue  # dropped in flight (sender paid bytes)
                    if lat > period:
                        # slower than the round granularity: lands later
                        # (the ack shares the forward message's fate)
                        self._deferred.append(
                            (now + lat, "full", target_id, node_id,
                             dict(sender.known), now)
                        )
                        continue
                receiver = self._deliverable(target_id)
                if receiver is None:
                    continue  # dead target: no ack, sender's evidence ages
                self._hear(receiver, node_id, now)
                # the (untallied) ack travels the reverse link, so a cut
                # of target->sender starves the sender's evidence even
                # when the forward direction delivers; ack latency is a
                # sub-round detail (evidence is stamped at send time)
                if net is None or self._transmit(
                    target_id, node_id, now
                ) is not None:
                    self._hear(sender, target_id, now)
                receiver.stored_state[node_id] = dict(sender.known)
                self._stored_in.setdefault(node_id, set()).add(target_id)
                for nid, heard_at in sender.known.items():
                    self._gossip(receiver, nid, heard_at)
            for target_id in compact_targets:
                if net is not None:
                    lat = self._transmit(node_id, target_id, now)
                    if lat is None:
                        continue
                    if lat > period:
                        self._deferred.append(
                            (now + lat, "compact", target_id, node_id,
                             None, now)
                        )
                        continue
                receiver = self._deliverable(target_id)
                if receiver is None:
                    continue  # dead target: no ack, sender's evidence ages
                # doubles as stabilize/notify: an unknown sender enters the
                # receiver's known set and survives iff it improves the
                # derived predecessor/successor structure
                self._hear(receiver, node_id, now)
                if net is None or self._transmit(
                    target_id, node_id, now
                ) is not None:
                    self._hear(sender, target_id, now)  # the (untallied) ack

    def _deliver_deferred(self, now: float) -> None:
        """Land heartbeats whose link latency outran the round period.

        A late heartbeat proves the sender was alive at *send* time:
        evidence (including the ack the sender gets back) is stamped with
        the send time, so slow links delay detection-relevant freshness
        instead of forging it.
        """
        if not self._deferred:
            return
        due = [entry for entry in self._deferred if entry[0] <= now]
        if not due:
            return
        self._deferred = [entry for entry in self._deferred if entry[0] > now]
        due.sort(key=lambda entry: entry[0])  # stable: FIFO within a round
        for arrival, kind, receiver_id, sender_id, snapshot, sent_at in due:
            receiver = self._deliverable(receiver_id)
            if receiver is None:
                continue  # receiver died while the message was in flight
            if self.tracer is not None:
                self.tracer.emit(
                    now, "net.deliver_late", dst=receiver_id,
                    src=sender_id, sent_at=sent_at,
                )
            self._gossip(receiver, sender_id, sent_at)
            sender = self._deliverable(sender_id)
            if sender is not None and self._transmit(
                receiver_id, sender_id, now
            ) is not None:
                self._gossip(sender, receiver_id, sent_at)  # the late ack
            if kind == "full" and snapshot is not None:
                receiver.stored_state[sender_id] = snapshot
                self._stored_in.setdefault(sender_id, set()).add(receiver_id)
                for nid, heard_at in snapshot.items():
                    self._gossip(receiver, nid, heard_at)

    def _deliver_replies(self, now: float) -> None:
        """Deliver last round's full-update replies to their requesters."""
        self._deliver_deferred(now)
        queue, self._reply_queue = self._reply_queue, []
        for receiver_id, responder_id, snapshot in queue:
            receiver = self._deliverable(receiver_id)
            if receiver is None:
                continue
            self._hear(receiver, responder_id, now)
            for nid, heard_at in snapshot.items():
                self._gossip(receiver, nid, heard_at)
            if not self._detects_gap(receiver_id):
                if self.tracer is not None and (
                    receiver.gap_attempts or receiver.gap_dirty
                ):
                    self.tracer.emit(now, "hb.gap_repaired", node=receiver_id)
                receiver.gap_attempts = 0
                receiver.gap_dirty = False

    # -- failure detection & take-over --------------------------------------
    def _detect_failures(self, now: float) -> None:
        timeout = self.config.failure_timeout
        for node_id in sorted(self.nodes):
            if not self.overlay.is_alive(node_id):
                continue
            pnode = self.nodes[node_id]
            stale = sorted(
                nid
                for nid, heard_at in pnode.known.items()
                if now - heard_at > timeout
            )
            for stale_id in stale:
                self._forget(pnode, stale_id)
                if self.tracer is not None:
                    self.tracer.emit(
                        now, "hb.failure_detected", node=node_id, suspect=stale_id
                    )
                if (
                    stale_id in self._fail_times
                    and stale_id not in self._detected_failures
                ):
                    self._detected_failures.add(stale_id)
                    if self._detection_sketch is not None:
                        self._detection_sketch.insert(
                            now - self._fail_times[stale_id]
                        )
                    if self.on_failure_detected is not None:
                        self.on_failure_detected(stale_id, now)

    def _claim_timed_out_zones(self, now: float) -> None:
        """Execute ring take-overs for detected failures.

        What differs per scheme is how much the claimant *knows*: whether
        it stored the dead node's peer list (from full heartbeats) and can
        notify the vacated arc's believers.
        """
        timeout = self.config.failure_timeout
        due = sorted(
            nid for nid, t in self._fail_times.items() if now - t >= timeout
        )
        for dead_id in due:
            if dead_id not in self._detected_failures:
                # fallback detection at claim time, so the recovery layer
                # never waits forever
                if self._detection_sketch is not None:
                    self._detection_sketch.insert(
                        now - self._fail_times[dead_id]
                    )
                if self.on_failure_detected is not None:
                    self.on_failure_detected(dead_id, now)
            self._detected_failures.discard(dead_id)
            transfers = self.overlay.claim_zones(dead_id)
            self.events["claims"] += 1
            for transfer in transfers:
                claimant = self.nodes.get(transfer.to_node)
                if claimant is None or not self.overlay.is_alive(
                    transfer.to_node
                ):
                    continue  # the arc landed on a ghost; claimed later
                known_state = claimant.stored_state.get(dead_id)
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "hb.takeover",
                        claimant=claimant.node_id,
                        dead=dead_id,
                        informed=known_state is not None,
                    )
                self._forget(claimant, dead_id)
                if known_state:
                    for nid, heard_at in known_state.items():
                        self._gossip(claimant, nid, heard_at)
                self._notify_takeover(
                    claimant, dead_id, known_state or {}, now
                )
            del self._fail_times[dead_id]
            self._drop_node(dead_id)
            self._purge_stored(dead_id)

    def _notify_takeover(
        self,
        claimant: ChordProtocolNode,
        vacated_id: int,
        source_known: Dict[int, float],
        now: float,
    ) -> None:
        """Announce the new arc ownership to everyone the claimant knows."""
        model = self.config.size_model
        dims = self.overlay.space.dims
        candidates = set(self._derived(claimant).peers)
        candidates.update(source_known)
        candidates.discard(claimant.node_id)
        candidates.discard(vacated_id)
        targets = sorted(candidates)
        self._record(
            now, MessageType.TAKEOVER_NOTIFY, model.notify_bytes(dims), len(targets)
        )
        net_active = not self.net.is_identity
        for target_id in targets:
            if (
                net_active
                and self._transmit(claimant.node_id, target_id, now) is None
            ):
                continue  # notify lost; the believer times the ghost out
            receiver = self._deliverable(target_id)
            if receiver is None:
                continue
            self._forget(receiver, vacated_id)
            self._hear(receiver, claimant.node_id, now)

    def _purge_stored(self, dead_id: int) -> None:
        for holder_id in self._stored_in.pop(dead_id, ()):
            holder = self.nodes.get(holder_id)
            if holder is not None:
                holder.stored_state.pop(dead_id, None)

    # -- adaptive repair -----------------------------------------------------
    def _adaptive_gap_checks(self, now: float) -> None:
        model = self.config.size_model
        dims = self.overlay.space.dims
        periodic = (
            self.config.periodic_gap_check_every
            and self._round % self.config.periodic_gap_check_every == 0
        )
        candidates = sorted(
            nid
            for nid, pnode in self.nodes.items()
            if pnode.gap_dirty or periodic
        )
        for node_id in candidates:
            pnode = self.nodes.get(node_id)
            if pnode is None or not self.overlay.is_alive(node_id):
                continue
            if self.config.gap_detection_prob < 1.0 and self._rng is not None:
                if self._rng.random() >= self.config.gap_detection_prob:
                    continue  # the local check missed the gap this round
            # A dirty node just forgot a believed peer — that removal is
            # local knowledge, so it requests repair even when its derived
            # successor list has refilled to full length from farther ids
            # (a substitution gap the length check cannot see).
            if not pnode.gap_dirty and not self._detects_gap(node_id):
                pnode.gap_attempts = 0
                continue
            if self.tracer is not None:
                self.tracer.emit(
                    now, "hb.gap_found", node=node_id, attempt=pnode.gap_attempts + 1
                )
            targets = sorted(self._derived(pnode).peers)
            self._record(
                now,
                MessageType.FULL_UPDATE_REQUEST,
                model.request_bytes(),
                len(targets),
            )
            net_active = not self.net.is_identity
            for target_id in targets:
                if (
                    net_active
                    and self._transmit(node_id, target_id, now) is None
                ):
                    continue  # request lost; the gap stays dirty, retried
                responder = self._deliverable(target_id)
                if responder is None:
                    continue
                self._record(
                    now,
                    MessageType.FULL_UPDATE_REPLY,
                    model.table_bytes_from_totals(
                        dims, len(responder.known) + 1, len(responder.known) + 1
                    ),
                )
                if (
                    net_active
                    and self._transmit(target_id, node_id, now) is None
                ):
                    continue  # reply lost in flight (responder paid bytes)
                # The reply crosses the network; it lands next round.
                self._reply_queue.append(
                    (node_id, target_id, dict(responder.known))
                )
            pnode.gap_attempts += 1
            pnode.gap_dirty = pnode.gap_attempts < self.config.gap_retry_rounds

    def _detects_gap(self, node_id: int) -> bool:
        """Would this node's local structure detector fire right now?

        ``coverage`` mode is the honest local check: the believed successor
        list is shorter than configured (a removal punched a hole the node
        cannot refill from what it knows).  ``oracle`` mode compares
        against ground truth (an idealised upper bound, as in CAN).
        """
        pnode = self.nodes[node_id]
        if self.config.detection == "oracle":
            return bool(self._missing_neighbors(node_id))
        derived = self._derived(pnode)
        if not derived.successors:
            return True
        return len(derived.successors) < self.overlay.successor_list_size

    # -- metrics -------------------------------------------------------------
    def _truth_neighbors(self, node_id: int) -> Set[int]:
        """Ground-truth *correctness-critical* ring links: the alive members
        of the successor list plus the predecessor.  Fingers are derived
        performance state and excluded, the analogue of CAN counting only
        abutting neighbors."""
        overlay = self.overlay
        truth: Set[int] = {
            nid
            for nid in overlay.successor_list(node_id)
            if overlay.is_alive(nid)
        }
        pred = overlay.predecessor(node_id)
        if pred is not None and overlay.is_alive(pred):
            truth.add(pred)
        return truth

    def _missing_neighbors(self, node_id: int) -> Set[int]:
        return self._truth_neighbors(node_id) - set(self.nodes[node_id].known)

    def count_broken_links(self) -> int:
        """Directed count of ground-truth ring links missing from beliefs."""
        total = 0
        for node_id, pnode in self.nodes.items():
            if not self.overlay.is_alive(node_id):
                continue
            known = pnode.known
            for nid in self._truth_neighbors(node_id):
                if nid not in known:
                    total += 1
        return total

    # -- plumbing ------------------------------------------------------------
    def _deliverable(self, node_id: int) -> Optional[ChordProtocolNode]:
        """Target of a message: None when it is dead or gone (message lost)."""
        if not self.overlay.is_alive(node_id):
            return None
        return self.nodes.get(node_id)

    def _retry_pending_joins(self, now: float) -> None:
        pending, self._pending_joins = self._pending_joins, []
        for node_id, coord in pending:
            self.join(node_id, coord, now)
