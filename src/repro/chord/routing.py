"""Chord key routing: O(log n) clockwise descent over fingers.

Ground-truth routing (:func:`chord_route`) mirrors the role of
:func:`repro.can.routing.route`: place a lookup at the node owning a
resource-space point, measuring path lengths on the authoritative
structure.  Believed-state routing (:func:`chord_route_on_beliefs`) runs
the same descent over what each hop's *maintenance-protocol state*
believes its successors and fingers are — broken beliefs strand lookups,
turning fig7's broken-link counts into undeliverable messages, exactly as
the CAN belief router does.

The forwarding rule is classic Chord: from ``current``, jump to the known
peer that lies farthest clockwise *without passing the target key* (the
closest preceding node); when no known peer precedes the target, the
target lies in ``(current, successor]``, so the final hop is the first
alive successor — in a consistent ring that is the owner.  The clockwise
distance to the target strictly decreases on preceding-node hops and the
final hop is taken at most once consecutively, so routing terminates.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..can.routing import BeliefRouteResult
from .keyspace import RING_SIZE
from .ring import ChordError, ChordRing

__all__ = ["chord_route", "chord_route_on_beliefs"]


def _walk(
    target: int,
    owner: int,
    start_id: int,
    start_key: int,
    peers: Callable[[int], Tuple[int, ...]],
    successors: Callable[[int], Tuple[int, ...]],
    key_of: Callable[[int], int],
    alive: Callable[[int], bool],
    max_hops: int,
) -> Tuple[List[int], bool]:
    """Shared descent; returns (path, delivered)."""
    current = start_id
    current_key = start_key
    path = [current]
    distance = (target - current_key) % RING_SIZE
    for _ in range(max_hops):
        if current == owner:
            return path, True
        # closest preceding peer: minimal clockwise distance to the target
        # among peers that do not overshoot it
        best_id: Optional[int] = None
        best_distance = distance
        for nid in peers(current):
            if not alive(nid):
                continue  # forwarding to a ghost loses the message
            d = (target - key_of(nid)) % RING_SIZE
            if d < best_distance:
                best_distance = d
                best_id = nid
        if best_id is None:
            # nobody known precedes the target: it lies in
            # (current, successor], so hand to the first alive successor
            final = None
            for nid in successors(current):
                if alive(nid):
                    final = nid
                    break
            if final is None:
                return path, False
            path.append(final)
            if final == owner:
                return path, True
            best_distance = (target - key_of(final)) % RING_SIZE
            if best_distance >= distance:
                # overshot the target onto a non-owner: the owner is a
                # ghost or hidden by broken beliefs — undeliverable
                return path, False
            best_id = final
            current = best_id
            distance = best_distance
            continue
        current = best_id
        distance = best_distance
        path.append(current)
    return path, False


def chord_route(
    overlay: ChordRing,
    start_id: int,
    point: Sequence[float],
    max_hops: int = 10_000,
    profiler=None,
) -> List[int]:
    """Path of node ids from ``start_id`` to the owner of ``point``.

    Hops only through alive members (dead fingers are skipped, as the CAN
    router skips dead zone neighbors); raises :class:`ChordError` when the
    walk cannot progress — e.g. the owner is an unclaimed ghost.
    """
    if profiler is not None and profiler.enabled:
        profiler.push("chord.route")
        try:
            return chord_route(overlay, start_id, point, max_hops)
        finally:
            profiler.pop()
    target = overlay.keyspace.point_key(tuple(float(p) for p in point))
    owner = overlay.successor_of_key(target)
    path, delivered = _walk(
        target,
        owner,
        start_id,
        overlay.key_of(start_id),
        peers=lambda nid: overlay.neighbors(nid),
        successors=lambda nid: overlay.successor_list(nid),
        key_of=overlay.key_of,
        alive=overlay.is_alive,
        max_hops=max_hops,
    )
    if not delivered:
        raise ChordError(
            f"no progress from node {path[-1]} toward key {target}"
        )
    return path


def chord_route_on_beliefs(
    protocol,
    start_id: int,
    point: Sequence[float],
    max_hops: int = 10_000,
    profiler=None,
) -> BeliefRouteResult:
    """Route using only each hop's believed successor/finger peers.

    ``protocol`` is a :class:`~repro.chord.protocol
    .ChordMaintenanceProtocol`; delivery means reaching the *ground-truth*
    owner of the point.  Messages to dead peers are lost (the hop is
    unusable) and peers missing from beliefs are invisible — a stuck walk
    reports ``delivered=False``.
    """
    if profiler is not None and profiler.enabled:
        profiler.push("chord.route_on_beliefs")
        try:
            return chord_route_on_beliefs(protocol, start_id, point, max_hops)
        finally:
            profiler.pop()
    overlay = protocol.overlay
    target = overlay.keyspace.point_key(tuple(float(p) for p in point))
    owner = overlay.successor_of_key(target)

    def peers(nid: int) -> Tuple[int, ...]:
        return protocol.believed_peers(nid) if nid in protocol.nodes else ()

    def successors(nid: int) -> Tuple[int, ...]:
        return protocol.believed_successors(nid) if nid in protocol.nodes else ()

    path, delivered = _walk(
        target,
        owner,
        start_id,
        overlay.key_of(start_id),
        peers=peers,
        successors=successors,
        key_of=protocol.key_of,
        alive=overlay.is_alive,
        max_hops=max_hops,
    )
    return BeliefRouteResult(path, delivered)
