"""Experiment harness: one module per figure of the paper's evaluation.

Run with ``python -m repro.experiments <fig5|fig6|fig7|fig8|ablations|all>``.
"""

from . import ablations, common, fig5, fig6, fig7, fig8, report, substrates

__all__ = [
    "ablations",
    "common",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "report",
    "substrates",
]
