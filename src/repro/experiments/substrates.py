"""Substrate head-to-head — CAN vs Chord on identical experiment shapes.

Every simulation in the repo is substrate-parametric (see
``repro.overlay``); this harness runs the paper's evaluation shapes once
per registered substrate and reports the rivalry side by side:

* **churn leg** (fig7 shape, high churn, all three heartbeat schemes):
  steady-state broken links, maintenance messages and KB per node-minute,
  failure-detection latency (mean/p95 over every detected crash),
  ground-truth routing hop counts, and the believed-state delivery rate;
* **cost leg** (fig8 shape, sparse churn, adaptive scheme): the steady
  maintenance message/volume cost;
* **matchmaking leg** (fig5 shape, can-het): wait-time quality and push
  hop counts, showing matchmakers run unchanged over either substrate.

Writes ``results/substrates_head_to_head.csv`` in long format
(``leg,substrate,scheme,metric,value``) and prints one table per leg.
``--substrate`` restricts the run to a single substrate; by default every
registered substrate competes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis import format_table, write_csv
from ..can.heartbeat import HeartbeatScheme
from ..gridsim import ChurnSimulation, GridSimulation, MatchmakingConfig
from ..obs import RunRecorder
from ..overlay import SubstrateError, available_substrates, get_substrate
from ..workload import SMALL_LOAD, TINY_LOAD
from .common import (
    config_dict,
    experiment_argparser,
    recorder_for,
    results_path,
    timed,
)
from .fig7 import fig7_config
from .fig8 import fig8_config

__all__ = ["run", "main", "ROUTE_PROBES"]

#: ground-truth route samples per churn run (hop-count estimate)
ROUTE_PROBES = 200

Row = Dict[str, float]


def _probe_routes(sim: ChurnSimulation, samples: int, seed: int) -> Row:
    """Ground-truth hop counts + believed-state delivery over the final
    overlay (dead-but-unclaimed owners are skipped, as undeliverable)."""
    route = sim.substrate.route
    rng = np.random.default_rng(seed)
    alive = sorted(sim.overlay.alive_ids())
    hops: List[int] = []
    for _ in range(samples):
        start = int(alive[int(rng.integers(len(alive)))])
        point = sim.space.clamp_point(rng.random(sim.space.dims))
        try:
            hops.append(len(route(sim.overlay, start, point)) - 1)
        except SubstrateError:
            continue  # owner is a ghost: no ground-truth path exists
    return {
        "route_hops_mean": float(np.mean(hops)) if hops else float("nan"),
        "route_hops_p95": (
            float(np.percentile(hops, 95)) if hops else float("nan")
        ),
        "belief_delivery_rate": sim.routing_success_rate(samples),
    }


def _churn_leg(
    substrate: str,
    scheme: HeartbeatScheme,
    fast: bool,
    seed: int | None,
    recorder: RunRecorder | None,
) -> Row:
    cfg = fig7_config(scheme, fast=fast, seed=seed, substrate=substrate)
    tracer = recorder.tracer if recorder is not None else None
    label = f"churn:{substrate}:{scheme.value}"
    if recorder is not None:
        recorder.run_start(label, substrate=substrate, scheme=scheme.value)
    sim = ChurnSimulation(cfg, tracer=tracer)
    latencies: List[float] = []
    protocol = sim.protocol

    def on_detected(node_id: int, now: float) -> None:
        fail_time = protocol._fail_times.get(node_id)
        if fail_time is not None:
            latencies.append(now - fail_time)

    protocol.on_failure_detected = on_detected
    result = timed(label, sim.run)
    row: Row = {
        "steady_broken_links": result.steady_state_broken_links(),
        "msgs_per_node_min": result.rates.messages_per_node_minute,
        "kbytes_per_node_min": result.rates.kbytes_per_node_minute,
        "failures": float(result.events["failures"]),
        "detect_latency_mean_s": (
            float(np.mean(latencies)) if latencies else float("nan")
        ),
        "detect_latency_p95_s": (
            float(np.percentile(latencies, 95)) if latencies else float("nan")
        ),
    }
    row.update(_probe_routes(sim, ROUTE_PROBES, seed=cfg.seed + 1))
    if recorder is not None:
        recorder.run_end(label, t=sim.env.now)
        recorder.manifest.config.setdefault(label, config_dict(cfg))
    return row


def _cost_leg(
    substrate: str,
    fast: bool,
    seed: int | None,
    recorder: RunRecorder | None,
) -> Row:
    cfg = fig8_config(
        HeartbeatScheme.ADAPTIVE,
        nodes=120 if fast else 500,
        gpu_slots=2,
        fast=fast,
        seed=seed,
        substrate=substrate,
    )
    tracer = recorder.tracer if recorder is not None else None
    label = f"cost:{substrate}:adaptive"
    if recorder is not None:
        recorder.run_start(label, substrate=substrate)
    sim = ChurnSimulation(cfg, tracer=tracer)
    result = timed(label, sim.run)
    if recorder is not None:
        recorder.run_end(label, t=sim.env.now)
        recorder.manifest.config.setdefault(label, config_dict(cfg))
    return {
        "msgs_per_node_min": result.rates.messages_per_node_minute,
        "kbytes_per_node_min": result.rates.kbytes_per_node_minute,
        "final_population": float(result.final_population),
    }


def _matchmaking_leg(
    substrate: str,
    fast: bool,
    recorder: RunRecorder | None,
) -> Row:
    preset = TINY_LOAD if fast else SMALL_LOAD
    cfg = MatchmakingConfig(preset, scheme="can-het", substrate=substrate)
    tracer = recorder.tracer if recorder is not None else None
    label = f"matchmaking:{substrate}:can-het"
    if recorder is not None:
        recorder.run_start(label, substrate=substrate)
    sim = GridSimulation(cfg, tracer=tracer)
    result = timed(label, sim.run)
    if recorder is not None:
        recorder.run_end(label, t=sim.env.now)
        recorder.manifest.config.setdefault(label, config_dict(cfg))
    summary = result.summary()
    return {
        "jobs": summary["jobs"],
        "mean_wait_s": summary["mean_wait"],
        "p95_wait_s": summary["p95_wait"],
        "zero_wait_fraction": summary["zero_wait_fraction"],
        "mean_push_hops": summary["mean_push_hops"],
        "unplaced_jobs": float(result.unplaced_jobs),
    }


def run(
    fast: bool = False,
    seed: int | None = None,
    recorder: RunRecorder | None = None,
    substrates: Sequence[str] | None = None,
) -> Dict[str, Dict[Tuple[str, str], Row]]:
    """Results per leg, keyed by (substrate, scheme)."""
    names = list(substrates) if substrates else available_substrates()
    for name in names:
        get_substrate(name)  # fail fast on unknown names
    out: Dict[str, Dict[Tuple[str, str], Row]] = {
        "churn": {},
        "cost": {},
        "matchmaking": {},
    }
    for substrate in names:
        for scheme in HeartbeatScheme:
            out["churn"][(substrate, scheme.value)] = _churn_leg(
                substrate, scheme, fast, seed, recorder
            )
        out["cost"][(substrate, "adaptive")] = _cost_leg(
            substrate, fast, seed, recorder
        )
        out["matchmaking"][(substrate, "can-het")] = _matchmaking_leg(
            substrate, fast, recorder
        )
    return out


def report(results: Dict[str, Dict[Tuple[str, str], Row]], out_dir: str) -> str:
    csv_rows: List[Tuple[object, ...]] = []
    tables: List[str] = []
    titles = {
        "churn": "Churn leg (fig7 shape): resilience, cost, detection, routing",
        "cost": "Cost leg (fig8 shape): steady maintenance cost",
        "matchmaking": "Matchmaking leg (fig5 shape): can-het quality",
    }
    for leg, rows in results.items():
        if not rows:
            continue
        metrics = list(next(iter(rows.values())))
        header = ["substrate", "scheme", *metrics]
        body = []
        for (substrate, scheme), row in sorted(rows.items()):
            body.append(
                [substrate, scheme]
                + [f"{row[m]:.2f}" for m in metrics]
            )
            for metric in metrics:
                csv_rows.append(
                    (leg, substrate, scheme, metric, round(row[metric], 4))
                )
        tables.append(format_table(header, body, title=titles[leg]))
    write_csv(
        results_path(out_dir, "substrates_head_to_head.csv"),
        ["leg", "substrate", "scheme", "metric", "value"],
        csv_rows,
    )
    return "\n\n".join(tables)


def main(argv: Sequence[str] | None = None) -> int:
    parser = experiment_argparser(__doc__.splitlines()[0])
    # None = every registered substrate competes (the point of the harness)
    parser.set_defaults(substrate=None)
    args = parser.parse_args(argv)
    substrates = [args.substrate] if args.substrate else None
    with recorder_for(args, "substrates") as rec:
        results = run(
            fast=args.fast, seed=args.seed, recorder=rec, substrates=substrates
        )
        print(report(results, args.out))
        rec.close(
            config={
                "fast": args.fast,
                "substrates": substrates or available_substrates(),
            },
            artifacts=["substrates_head_to_head.csv"],
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
