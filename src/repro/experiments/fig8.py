"""Figure 8 — maintenance cost vs CAN dimensionality and system size.

Paper setup: 5 / 8 / 11 / 14-dimensional CANs (0-3 GPU slots) with 500,
1000 and 2000 nodes; two-stage churn; measure (a) messages per node per
minute and (b) message volume (KB) per node per minute.

Expected shape: message *count* grows roughly linearly with the dimension
count, nearly identically for all three schemes and insensitively to the
node count; message *volume* grows superlinearly (≈ d²) for vanilla but
stays near-linear for compact and adaptive heartbeats.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


from ..analysis import ascii_plot, format_table, write_csv
from ..can.heartbeat import HeartbeatScheme
from ..gridsim import ChurnConfig, ChurnSimulation
from ..gridsim.results import ChurnResult
from ..obs import RunRecorder
from .common import (
    config_dict,
    experiment_argparser,
    recorder_for,
    results_path,
    timed,
)

__all__ = ["run", "main", "GPU_SLOT_SWEEP", "NODE_SWEEP"]

#: 0-3 GPU slots -> 5, 8, 11, 14 CAN dimensions
GPU_SLOT_SWEEP: Tuple[int, ...] = (0, 1, 2, 3)
#: the paper swept 500/1000/2000 nodes; we default to half that per size so
#: the 36-run sweep regenerates in minutes — the claim under test is that
#: costs are *insensitive* to the node count, which a 4x spread shows
NODE_SWEEP: Tuple[int, ...] = (250, 500, 1000)
FAST_NODE_SWEEP: Tuple[int, ...] = (60, 120)


def fig8_config(
    scheme: HeartbeatScheme,
    nodes: int,
    gpu_slots: int,
    fast: bool = False,
    seed: int | None = None,
    engine: str = "object",
    substrate: str = "can",
) -> ChurnConfig:
    """Slow-churn configuration used for the cost measurements.

    Events are slower than the heartbeat period (the regime with no
    simultaneous events), so costs reflect steady maintenance rather than
    repair storms.
    """
    kwargs = dict(
        initial_nodes=nodes,
        gpu_slots=gpu_slots,
        scheme=scheme,
        heartbeat_period=60.0,
        event_gap_mean=120.0,
        leave_mode="fail",
        duration=1_200.0 if fast else 1_800.0,
        engine=engine,
        substrate=substrate,
    )
    if seed is not None:
        kwargs["seed"] = seed
    return ChurnConfig(**kwargs)


def run(
    fast: bool = False,
    seed: int | None = None,
    node_sweep: Sequence[int] | None = None,
    gpu_slot_sweep: Sequence[int] = GPU_SLOT_SWEEP,
    recorder: RunRecorder | None = None,
    schemes: Sequence[HeartbeatScheme] = tuple(HeartbeatScheme),
    engine: str = "object",
    substrate: str = "can",
) -> Dict[Tuple[str, int, int], ChurnResult]:
    """Results keyed by (scheme, nodes, dims)."""
    if node_sweep is None:
        node_sweep = FAST_NODE_SWEEP if fast else NODE_SWEEP
    tracer = recorder.tracer if recorder is not None else None
    out: Dict[Tuple[str, int, int], ChurnResult] = {}
    for scheme in schemes:
        for nodes in node_sweep:
            for gpu_slots in gpu_slot_sweep:
                cfg = fig8_config(
                    scheme, nodes, gpu_slots, fast=fast, seed=seed,
                    engine=engine, substrate=substrate,
                )
                label = f"fig8 {scheme.value} n={nodes} d={cfg.dims}"
                if recorder is not None:
                    recorder.run_start(
                        label,
                        scheme=scheme.value,
                        nodes=nodes,
                        dims=cfg.dims,
                    )
                sim = ChurnSimulation(cfg, tracer=tracer)
                out[(scheme.value, nodes, cfg.dims)] = timed(label, sim.run)
                if recorder is not None:
                    recorder.run_end(label, t=sim.env.now)
                    recorder.manifest.metrics[label] = sim.metrics.snapshot(
                        now=sim.env.now
                    )
                    recorder.manifest.config.setdefault(
                        label, config_dict(cfg)
                    )
    return out


def report(results: Dict[Tuple[str, int, int], ChurnResult], out_dir: str) -> str:
    rows = []
    csv_rows: List[Tuple[object, ...]] = []
    count_series: Dict[str, Tuple[List[float], List[float]]] = {}
    volume_series: Dict[str, Tuple[List[float], List[float]]] = {}
    for (scheme, nodes, dims), res in sorted(results.items()):
        r = res.rates
        rows.append(
            [
                scheme,
                nodes,
                dims,
                f"{r.messages_per_node_minute:.2f}",
                f"{r.kbytes_per_node_minute:.2f}",
            ]
        )
        csv_rows.append(
            (
                scheme,
                nodes,
                dims,
                r.messages_per_node_minute,
                r.kbytes_per_node_minute,
            )
        )
        key = f"{scheme}-{nodes}"
        count_series.setdefault(key, ([], []))
        count_series[key][0].append(float(dims))
        count_series[key][1].append(r.messages_per_node_minute)
        volume_series.setdefault(key, ([], []))
        volume_series[key][0].append(float(dims))
        volume_series[key][1].append(r.kbytes_per_node_minute)

    table = format_table(
        ["scheme", "nodes", "dims", "msgs/node/min", "KB/node/min"],
        rows,
        title="Figure 8 — maintenance cost per node per minute",
    )
    plot_a = ascii_plot(
        count_series,
        title="Figure 8(a): number of messages vs dimensions",
        xlabel="CAN dimensions",
        ylabel="messages/node/min",
        height=14,
    )
    plot_b = ascii_plot(
        volume_series,
        title="Figure 8(b): volume of messages vs dimensions",
        xlabel="CAN dimensions",
        ylabel="KB/node/min",
        height=14,
    )
    write_csv(
        results_path(out_dir, "fig8_scalability.csv"),
        ["scheme", "nodes", "dims", "msgs_per_node_min", "kb_per_node_min"],
        csv_rows,
    )
    return "\n\n".join([table, plot_a, plot_b])


def main(argv: Sequence[str] | None = None) -> int:
    parser = experiment_argparser(__doc__.splitlines()[0])
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="run a single cell with this population instead of the sweep",
    )
    parser.add_argument(
        "--gpu-slots",
        type=int,
        default=None,
        choices=GPU_SLOT_SWEEP,
        help="single-cell GPU slots (0-3 -> 5/8/11/14 dims; default 2)",
    )
    parser.add_argument(
        "--scheme",
        choices=[s.value for s in HeartbeatScheme],
        default=None,
        help="single-cell heartbeat scheme (default: all three)",
    )
    parser.add_argument(
        "--engine",
        choices=["object", "array"],
        default="object",
        help="heartbeat engine (identical results; array scales to 10k+)",
    )
    args = parser.parse_args(argv)
    single_cell = args.nodes is not None or args.gpu_slots is not None
    node_sweep = [args.nodes] if args.nodes is not None else None
    gpu_slot_sweep = (
        (args.gpu_slots if args.gpu_slots is not None else 2,)
        if single_cell
        else GPU_SLOT_SWEEP
    )
    schemes = (
        (HeartbeatScheme(args.scheme),)
        if args.scheme is not None
        else tuple(HeartbeatScheme)
    )
    with recorder_for(args, "fig8") as rec:
        results = run(
            fast=args.fast,
            seed=args.seed,
            node_sweep=node_sweep,
            gpu_slot_sweep=gpu_slot_sweep,
            recorder=rec,
            schemes=schemes,
            engine=args.engine,
            substrate=args.substrate,
        )
        print(report(results, args.out))
        rec.close(
            config={
                "fast": args.fast,
                "engine": args.engine,
                "substrate": args.substrate,
            },
            artifacts=["fig8_scalability.csv"],
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
