"""CLI entry point: ``python -m repro.experiments <figure> [--fast]``.

Regenerates any of the paper's evaluation figures (see EXPERIMENTS.md for
the recorded paper-vs-measured comparison):

    python -m repro.experiments fig5          # wait-time CDF vs load
    python -m repro.experiments fig6          # wait-time CDF vs constraint ratio
    python -m repro.experiments fig7          # broken links under churn
    python -m repro.experiments fig8          # maintenance cost scaling
    python -m repro.experiments ablations     # design-choice ablations
    python -m repro.experiments recovery      # detection/resubmission latency
    python -m repro.experiments substrates    # CAN vs Chord head-to-head
    python -m repro.experiments report        # refresh EXPERIMENTS.md tables
    python -m repro.experiments all --fast    # everything, scaled down
"""

from __future__ import annotations

import sys
from typing import List, Sequence

from . import (
    ablations,
    fig5,
    fig6,
    fig7,
    fig8,
    recovery,
    report,
    scenarios,
    substrates,
)

_TARGETS = {
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "ablations": ablations.main,
    "recovery": recovery.main,
    "substrates": substrates.main,
    "scenarios": scenarios.main,
    "report": report.main,
}


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    target, rest = argv[0], argv[1:]
    if target == "all":
        status = 0
        for name, entry in _TARGETS.items():
            if name == "report":
                continue
            print(f"\n{'=' * 72}\n# {name}\n{'=' * 72}")
            status |= entry(rest)
        return status
    if target not in _TARGETS:
        print(f"unknown experiment {target!r}; choose from "
              f"{', '.join([*_TARGETS, 'all'])}", file=sys.stderr)
        return 2
    return _TARGETS[target](rest)


if __name__ == "__main__":
    raise SystemExit(main())
