"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation removes one mechanism from can-het and measures the wait-time
damage, isolating that mechanism's contribution:

* ``acceptable-node`` — fall back to free-node-only search (Section III-B's
  first change for heterogeneity);
* ``dominant-ce`` — score nodes by whole-node utilisation instead of the
  dominant CE (Section III-B "Dominant CE");
* ``stopping-factor`` — sweep Equation 4's SF parameter;
* ``virtual-dimension`` — squeeze the virtual dimension so it no longer
  spreads identical nodes (Section II-B).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from ..analysis import format_table, write_csv
from ..gridsim import GridSimulation, MatchmakingConfig
from ..gridsim.results import MatchmakingResult
from ..workload import PAPER_LOAD, SMALL_LOAD
from .common import experiment_argparser, results_path, timed

__all__ = ["run", "main", "ABLATIONS"]

ABLATIONS = (
    "baseline",
    "acceptable-node",
    "dominant-ce",
    "virtual-dimension",
    "stopping-factor",
)


def _config_for(ablation: str, base: MatchmakingConfig) -> List[MatchmakingConfig]:
    if ablation == "baseline":
        return [base]
    if ablation == "acceptable-node":
        return [replace(base, use_acceptable_nodes=False)]
    if ablation == "dominant-ce":
        return [replace(base, use_dominant_ce=False)]
    if ablation == "virtual-dimension":
        return [replace(base, use_virtual_dimension=False)]
    if ablation == "stopping-factor":
        return [replace(base, stopping_factor=sf) for sf in (1.0, 2.0, 4.0, 8.0)]
    raise ValueError(f"unknown ablation {ablation!r}")


def run(
    fast: bool = False,
    seed: int | None = None,
    preset=None,
    ablations: Sequence[str] = ABLATIONS,
) -> Dict[str, List[MatchmakingResult]]:
    if preset is None:
        preset = SMALL_LOAD if fast else PAPER_LOAD
    if seed is not None:
        preset = preset.with_seed(seed)
    base = MatchmakingConfig(preset, scheme="can-het")
    out: Dict[str, List[MatchmakingResult]] = {}
    for ablation in ablations:
        out[ablation] = []
        for cfg in _config_for(ablation, base):
            label = f"ablation {ablation} sf={cfg.stopping_factor:g}"
            out[ablation].append(
                timed(label, lambda c=cfg: GridSimulation(c).run())
            )
    return out


def report(results: Dict[str, List[MatchmakingResult]], out_dir: str) -> str:
    rows = []
    csv_rows = []
    for ablation, runs in results.items():
        for res in runs:
            s = res.summary()
            tag = ablation
            if ablation == "stopping-factor":
                tag = f"{ablation} (SF from run order 1/2/4/8)"
            rows.append(
                [
                    tag,
                    f"{s['mean_wait']:.0f}",
                    f"{s['p90_wait']:.0f}",
                    f"{s['p95_wait']:.0f}",
                    f"{s['zero_wait_fraction'] * 100:.1f}",
                    f"{s['mean_push_hops']:.2f}",
                ]
            )
            csv_rows.append(
                (
                    ablation,
                    s["mean_wait"],
                    s["p90_wait"],
                    s["p95_wait"],
                    s["zero_wait_fraction"],
                    s["mean_push_hops"],
                )
            )
    table = format_table(
        ["ablation", "mean wait", "p90", "p95", "zero-wait %", "push hops"],
        rows,
        title="Ablations — can-het with one mechanism removed",
    )
    write_csv(
        results_path(out_dir, "ablations.csv"),
        ["ablation", "mean_wait", "p90_wait", "p95_wait", "zero_wait_frac", "push_hops"],
        csv_rows,
    )
    return table


def main(argv: Sequence[str] | None = None) -> int:
    parser = experiment_argparser(__doc__.splitlines()[0])
    parser.add_argument(
        "--ablation",
        choices=ABLATIONS,
        action="append",
        help="run only selected ablations (repeatable)",
    )
    args = parser.parse_args(argv)
    chosen = tuple(args.ablation) if args.ablation else ABLATIONS
    results = run(fast=args.fast, seed=args.seed, ablations=chosen)
    print(report(results, args.out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
