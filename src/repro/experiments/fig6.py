"""Figure 6 — CDF of job wait time while varying the job constraint ratio.

Paper setup: as Figure 5 with the inter-arrival fixed (3 s) and the job
constraint ratio swept over 80 % / 60 % / 40 %.  Expected shape: at 40 %
all three matchmakers nearly coincide; higher ratios make matchmaking
harder and can-hom "misdirects jobs to heavily-loaded nodes", while can-het
stays competitive with central throughout.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis import ascii_plot, format_table, write_csv
from ..gridsim import GridSimulation, MatchmakingConfig
from ..gridsim.results import MatchmakingResult
from ..obs import RunRecorder
from ..workload import PAPER_LOAD, SMALL_LOAD
from .common import (
    SCHEMES,
    WAIT_GRID,
    config_dict,
    experiment_argparser,
    recorder_for,
    results_path,
    timed,
)

__all__ = ["run", "main", "CONSTRAINT_RATIOS"]

#: the paper's sweep, heaviest first (Figure 6 a-c)
CONSTRAINT_RATIOS: Tuple[float, ...] = (0.8, 0.6, 0.4)


def run(
    fast: bool = False,
    seed: int | None = None,
    preset=None,
    ratios: Sequence[float] = CONSTRAINT_RATIOS,
    schemes: Sequence[str] = SCHEMES,
    recorder: RunRecorder | None = None,
    substrate: str = "can",
) -> Dict[float, Dict[str, MatchmakingResult]]:
    """All (constraint ratio, scheme) runs."""
    if preset is None:
        preset = SMALL_LOAD if fast else PAPER_LOAD
    if seed is not None:
        preset = preset.with_seed(seed)
    tracer = recorder.tracer if recorder is not None else None
    out: Dict[float, Dict[str, MatchmakingResult]] = {}
    for ratio in ratios:
        out[ratio] = {}
        for scheme in schemes:
            cfg = MatchmakingConfig(
                preset.with_constraint_ratio(ratio),
                scheme=scheme,
                substrate=substrate,
            )
            label = f"fig6 ratio={int(ratio * 100)}% {scheme}"
            if recorder is not None:
                recorder.run_start(label, scheme=scheme, constraint_ratio=ratio)
            sim = GridSimulation(cfg, tracer=tracer)
            out[ratio][scheme] = timed(label, sim.run)
            if recorder is not None:
                recorder.run_end(label, t=sim.env.now)
                recorder.manifest.metrics[label] = sim.metrics.snapshot(
                    now=sim.env.now
                )
                recorder.manifest.config.setdefault(scheme, config_dict(cfg))
    return out


def report(
    results: Dict[float, Dict[str, MatchmakingResult]], out_dir: str
) -> str:
    chunks: List[str] = []
    csv_rows: List[Tuple[object, ...]] = []
    for ratio, by_scheme in sorted(results.items(), reverse=True):
        rows = []
        series = {}
        for scheme, res in by_scheme.items():
            fractions = res.wait_cdf_at(WAIT_GRID) * 100.0
            rows.append([scheme] + [f"{f:.2f}" for f in fractions])
            series[scheme] = (np.asarray(WAIT_GRID), fractions)
            for threshold, frac in zip(WAIT_GRID, fractions):
                csv_rows.append((ratio, scheme, threshold, frac))
        headers = ["scheme"] + [f"<= {int(t):,}s" for t in WAIT_GRID]
        chunks.append(
            format_table(
                headers,
                rows,
                title=(
                    "Figure 6 — CDF of job wait time (%), "
                    f"constraint ratio {int(ratio * 100)}%"
                ),
            )
        )
        chunks.append(
            ascii_plot(
                series,
                title=f"Figure 6 ({int(ratio*100)}%): % jobs with wait <= x",
                xlabel="job wait time (s)",
                ylabel="% of jobs",
                y_min=80.0,
                y_max=100.0,
                height=14,
            )
        )
    write_csv(
        results_path(out_dir, "fig6_wait_time_cdf.csv"),
        ["constraint_ratio", "scheme", "wait_threshold_s", "cdf_percent"],
        csv_rows,
    )
    return "\n\n".join(chunks)


def main(argv: Sequence[str] | None = None) -> int:
    args = experiment_argparser(__doc__.splitlines()[0]).parse_args(argv)
    with recorder_for(args, "fig6") as rec:
        results = run(
            fast=args.fast,
            seed=args.seed,
            recorder=rec,
            substrate=args.substrate,
        )
        print(report(results, args.out))
        rec.close(
            config={"fast": args.fast, "substrate": args.substrate},
            artifacts=["fig6_wait_time_cdf.csv"],
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
