"""Adversarial scenario pack — the heartbeat schemes under hostile networks.

Runs every scenario in :func:`repro.gridsim.faults.scenario_pack`
(baseline, diurnal churn, flash crowd, correlated rack failures, link
flap storm) for vanilla/compact/adaptive on every registered substrate,
with the mid-flight invariant checker armed throughout.  Per run it
reports:

* steady-state broken links and the believed-state delivery rate (the
  operational consequence of stale tables);
* maintenance messages and KB per node-minute;
* failure-detection latency (mean/p95 over genuinely-crashed nodes);
* network-channel accounting (attempted/delivered/dropped sends).

The paper's trade-off sharpens under adversity: a flap storm whose down
phases outlast the failure timeout makes believers forget live
neighbors faster than compact heartbeats can restore them, so compact's
belief delivery collapses while adaptive's on-demand repair holds the
structure together for a fraction of vanilla's byte cost.

Writes ``results/scenarios.csv`` in long format
(``scenario,substrate,scheme,metric,value``) and prints one table per
scenario.  ``--scenario`` restricts to one scenario, ``--substrate`` to
one substrate (CI smoke runs one reduced scenario per substrate).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import format_table, write_csv
from ..can.heartbeat import HeartbeatScheme
from ..gridsim import ChurnConfig, ChurnSimulation, Scenario, scenario_pack
from ..obs import RunRecorder
from ..overlay import available_substrates, get_substrate
from .common import (
    config_dict,
    experiment_argparser,
    recorder_for,
    results_path,
    timed,
)

__all__ = ["run", "main", "scenario_config"]

Row = Dict[str, float]

#: believed-route probes per finished run (belief delivery rate)
ROUTE_PROBES = 200
DEFAULT_SEED = 20110926


def scenario_config(
    scenario: Scenario,
    scheme: HeartbeatScheme,
    substrate: str,
    fast: bool,
    seed: Optional[int],
) -> ChurnConfig:
    """One scenario run: a fig7-ish high-churn shape plus the plan.

    ``gpu_slots=1`` (8 CAN dimensions) keeps the full 30-run matrix
    affordable; the churn rate stays denser than the heartbeat period,
    the regime where the schemes differ.
    """
    return ChurnConfig(
        initial_nodes=40 if fast else 100,
        gpu_slots=1,
        scheme=scheme,
        event_gap_mean=30.0 if fast else 20.0,
        duration=3_600.0 if fast else 9_000.0,
        seed=DEFAULT_SEED if seed is None else seed,
        substrate=substrate,
        plan=scenario.plan,
        invariant_check_every=20,
    )


def _one_run(
    scenario: Scenario,
    substrate: str,
    scheme: HeartbeatScheme,
    fast: bool,
    seed: Optional[int],
    recorder: Optional[RunRecorder],
) -> Row:
    cfg = scenario_config(scenario, scheme, substrate, fast, seed)
    tracer = recorder.tracer if recorder is not None else None
    label = f"{scenario.name}:{substrate}:{scheme.value}"
    if recorder is not None:
        recorder.run_start(
            label, scenario=scenario.name, substrate=substrate,
            scheme=scheme.value,
        )
    sim = ChurnSimulation(cfg, tracer=tracer)
    protocol = sim.protocol
    latencies: List[float] = []

    def on_detected(node_id: int, now: float) -> None:
        fail_time = protocol._fail_times.get(node_id)
        if fail_time is not None:
            latencies.append(now - fail_time)

    protocol.on_failure_detected = on_detected
    result = timed(label, sim.run)
    sim.check_invariants()  # the scenario must leave a consistent grid
    net = protocol.net
    row: Row = {
        "steady_broken_links": result.steady_state_broken_links(),
        "belief_delivery_rate": sim.routing_success_rate(ROUTE_PROBES),
        "msgs_per_node_min": result.rates.messages_per_node_minute,
        "kbytes_per_node_min": result.rates.kbytes_per_node_minute,
        "failures": float(result.events["failures"]),
        "detect_latency_mean_s": (
            float(np.mean(latencies)) if latencies else float("nan")
        ),
        "detect_latency_p95_s": (
            float(np.percentile(latencies, 95)) if latencies else float("nan")
        ),
        "final_population": float(result.final_population),
        "net_attempts": float(net.attempts),
        "net_dropped": float(net.dropped),
    }
    if recorder is not None:
        recorder.run_end(label, t=sim.env.now)
        recorder.manifest.config.setdefault(label, config_dict(cfg))
    return row


def run(
    fast: bool = False,
    seed: Optional[int] = None,
    recorder: Optional[RunRecorder] = None,
    substrates: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[Tuple[str, str], Row]]:
    """Results per scenario, keyed by (substrate, scheme)."""
    names = list(substrates) if substrates else available_substrates()
    for name in names:
        get_substrate(name)  # fail fast on unknown names
    shape = scenario_config(
        scenario_pack(1.0, 2)[0], HeartbeatScheme.VANILLA, names[0], fast,
        seed,
    )
    pack = scenario_pack(
        shape.duration, shape.initial_nodes, period=shape.heartbeat_period
    )
    if scenarios:
        known = {s.name for s in pack}
        unknown = set(scenarios) - known
        if unknown:
            raise ValueError(
                f"unknown scenarios {sorted(unknown)}; "
                f"choose from {sorted(known)}"
            )
        pack = tuple(s for s in pack if s.name in scenarios)
    out: Dict[str, Dict[Tuple[str, str], Row]] = {}
    for scenario in pack:
        rows: Dict[Tuple[str, str], Row] = {}
        for substrate in names:
            for scheme in HeartbeatScheme:
                rows[(substrate, scheme.value)] = _one_run(
                    scenario, substrate, scheme, fast, seed, recorder
                )
        out[scenario.name] = rows
    return out


def report(
    results: Dict[str, Dict[Tuple[str, str], Row]], out_dir: str
) -> str:
    csv_rows: List[Tuple[object, ...]] = []
    tables: List[str] = []
    for scenario, rows in results.items():
        if not rows:
            continue
        metrics = list(next(iter(rows.values())))
        header = ["substrate", "scheme", *metrics]
        body = []
        for (substrate, scheme), row in sorted(rows.items()):
            body.append(
                [substrate, scheme] + [f"{row[m]:.2f}" for m in metrics]
            )
            for metric in metrics:
                csv_rows.append(
                    (scenario, substrate, scheme, metric,
                     round(row[metric], 4))
                )
        tables.append(
            format_table(header, body, title=f"Scenario: {scenario}")
        )
    write_csv(
        results_path(out_dir, "scenarios.csv"),
        ["scenario", "substrate", "scheme", "metric", "value"],
        csv_rows,
    )
    return "\n\n".join(tables)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = experiment_argparser(__doc__.splitlines()[0])
    # None = every registered substrate runs the pack
    parser.set_defaults(substrate=None)
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="restrict to one scenario (repeatable); default: the full pack",
    )
    args = parser.parse_args(argv)
    substrates = [args.substrate] if args.substrate else None
    with recorder_for(args, "scenarios") as rec:
        results = run(
            fast=args.fast,
            seed=args.seed,
            recorder=rec,
            substrates=substrates,
            scenarios=args.scenario,
        )
        print(report(results, args.out))
        rec.close(
            config={
                "fast": args.fast,
                "substrates": substrates or available_substrates(),
                "scenarios": args.scenario or "all",
            },
            artifacts=["scenarios.csv"],
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
