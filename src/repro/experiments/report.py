"""Assemble the EXPERIMENTS.md measurement tables from results CSVs.

``python -m repro.experiments report`` reads the CSV files produced by the
figure harnesses under ``results/`` and rewrites the ``<!-- XXX_TABLE -->``
placeholders in EXPERIMENTS.md with current measurements — so the recorded
paper-vs-measured comparison always reflects the latest regeneration.
"""

from __future__ import annotations

import csv
import os
import re
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import format_table

__all__ = ["build_tables", "render_into", "main"]


def _read_csv(path: str) -> List[Dict[str, str]]:
    with open(path) as fh:
        return list(csv.DictReader(fh))


def _fig5_like_table(rows: List[Dict[str, str]], key: str, label: str) -> str:
    """Pivot (group, scheme, threshold, cdf%) rows into markdown tables."""
    grouped: Dict[str, Dict[str, Dict[float, float]]] = defaultdict(
        lambda: defaultdict(dict)
    )
    thresholds: List[float] = []
    for row in rows:
        g = row[key]
        t = float(row["wait_threshold_s"])
        grouped[g][row["scheme"]][t] = float(row["cdf_percent"])
        if t not in thresholds:
            thresholds.append(t)
    thresholds.sort()
    shown = [t for t in thresholds if t in (0.0, 1000.0, 5000.0, 20000.0, 50000.0)]
    chunks = []
    for g in sorted(grouped, key=float, reverse=(key == "constraint_ratio")):
        headers = [label.format(g=g)] + [f"≤{int(t):,} s" for t in shown]
        body = []
        for scheme in ("can-het", "can-hom", "central"):
            if scheme not in grouped[g]:
                continue
            body.append(
                [scheme] + [f"{grouped[g][scheme].get(t, float('nan')):.2f}"
                            for t in shown]
            )
        chunks.append(_markdown_table(headers, body))
    return "\n\n".join(chunks)


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _fig7_table(rows: List[Dict[str, str]]) -> str:
    import numpy as np

    by_scheme: Dict[str, List[float]] = defaultdict(list)
    for row in rows:
        by_scheme[row["scheme"]].append(float(row["broken_links"]))
    steady = {}
    for scheme, values in by_scheme.items():
        v = np.asarray(values)
        k = max(1, v.size // 4)
        steady[scheme] = float(v[-k:].mean())
    vanilla = steady.get("vanilla", float("nan"))
    body = []
    for scheme in ("vanilla", "compact", "adaptive"):
        if scheme not in steady:
            continue
        rel = steady[scheme] / vanilla if vanilla else float("nan")
        body.append([scheme, f"{steady[scheme]:.1f}", f"{rel:.2f}×"])
    return _markdown_table(
        ["scheme", "steady-state broken links", "vs vanilla"], body
    )


def _fig8_tables(rows: List[Dict[str, str]]) -> Tuple[str, str]:
    import numpy as np

    counts: Dict[Tuple[str, int], Dict[int, float]] = defaultdict(dict)
    volumes: Dict[Tuple[str, int], Dict[int, float]] = defaultdict(dict)
    dims_seen = set()
    for row in rows:
        key = (row["scheme"], int(row["nodes"]))
        d = int(row["dims"])
        dims_seen.add(d)
        counts[key][d] = float(row["msgs_per_node_min"])
        volumes[key][d] = float(row["kb_per_node_min"])
    dims = sorted(dims_seen)

    def render(data, unit):
        headers = ["scheme / nodes"] + [f"d={d}" for d in dims] + ["log–log slope"]
        body = []
        for (scheme, nodes) in sorted(data):
            series = data[(scheme, nodes)]
            vals = [series.get(d) for d in dims]
            xs = [d for d, v in zip(dims, vals) if v]
            ys = [v for v in vals if v]
            slope = (
                np.polyfit(np.log(xs), np.log(ys), 1)[0]
                if len(xs) >= 2
                else float("nan")
            )
            body.append(
                [f"{scheme}-{nodes}"]
                + [f"{v:.1f}" if v is not None else "—" for v in vals]
                + [f"{slope:.2f}"]
            )
        return _markdown_table(headers, body)

    return render(counts, "msgs"), render(volumes, "KB")


def _ablations_table(rows: List[Dict[str, str]]) -> str:
    body = [
        [
            row["ablation"],
            f"{float(row['mean_wait']):.0f}",
            f"{float(row['p95_wait']):.0f}",
            f"{float(row['zero_wait_frac']) * 100:.1f} %",
            f"{float(row['push_hops']):.2f}",
        ]
        for row in rows
    ]
    return _markdown_table(
        ["ablation", "mean wait (s)", "p95 (s)", "instant start", "push hops"],
        body,
    )


def build_tables(results_dir: str = "results") -> Dict[str, str]:
    """Markdown tables keyed by placeholder name, from available CSVs."""
    out: Dict[str, str] = {}
    fig5 = os.path.join(results_dir, "fig5_wait_time_cdf.csv")
    if os.path.exists(fig5):
        out["FIG5_TABLE"] = _fig5_like_table(
            _read_csv(fig5), "interarrival_s", "**{g} s** (CDF %)"
        )
    fig6 = os.path.join(results_dir, "fig6_wait_time_cdf.csv")
    if os.path.exists(fig6):
        out["FIG6_TABLE"] = _fig5_like_table(
            _read_csv(fig6), "constraint_ratio", "**ratio {g}** (CDF %)"
        )
    fig7 = os.path.join(results_dir, "fig7_broken_links.csv")
    if os.path.exists(fig7):
        out["FIG7_TABLE"] = _fig7_table(_read_csv(fig7))
    fig8 = os.path.join(results_dir, "fig8_scalability.csv")
    if os.path.exists(fig8):
        a, b = _fig8_tables(_read_csv(fig8))
        out["FIG8A_TABLE"] = a
        out["FIG8B_TABLE"] = b
    ablations = os.path.join(results_dir, "ablations.csv")
    if os.path.exists(ablations):
        out["ABLATIONS_TABLE"] = _ablations_table(_read_csv(ablations))
    return out


_PLACEHOLDER = re.compile(r"<!-- ([A-Z0-9_]+) -->(?:\n(?:\|.*\n)*)?")


def render_into(markdown: str, tables: Dict[str, str]) -> str:
    """Replace each ``<!-- NAME -->`` marker (and any table that already
    follows it) with the marker plus the freshly built table."""

    def replace(match: re.Match) -> str:
        name = match.group(1)
        if name not in tables:
            return match.group(0)
        return f"<!-- {name} -->\n{tables[name]}\n"

    return _PLACEHOLDER.sub(replace, markdown)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default="results")
    parser.add_argument("--file", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    tables = build_tables(args.results)
    if not tables:
        print("no results CSVs found; run the experiments first")
        return 1
    with open(args.file) as fh:
        text = fh.read()
    updated = render_into(text, tables)
    with open(args.file, "w") as fh:
        fh.write(updated)
    print(f"updated {args.file} with {len(tables)} table(s): "
          + ", ".join(sorted(tables)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
