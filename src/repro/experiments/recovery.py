"""Recovery — failure detection and resubmission latency per heartbeat scheme.

Extension experiment (not a paper figure): the faulty grid runs the *real*
maintenance protocol, so a crash is only acted on once some believer's
freshness evidence times out.  Under heartbeat message loss the three
schemes degrade differently, and that difference shows up directly in the
detection-latency distribution — and downstream in how long lost jobs wait
before they run again.

Expected shape: with loss-free heartbeats all schemes detect within
``timeout + one period`` of the crash.  Under loss, compact and adaptive
stay close to that bound while vanilla drifts *upward*: its full-table
gossip forwards third-party freshness evidence, so surviving believers
keep refreshing a dead node's record from stale hearsay and time it out
later.  Resubmission latency adds the retry backoff on top.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis import ascii_plot, format_table, write_csv
from ..can.heartbeat import HeartbeatScheme
from ..gridsim import (
    FaultPlan,
    FaultyGridConfig,
    FaultyGridResult,
    FaultyGridSimulation,
    MatchmakingConfig,
    empirical_cdf,
)
from ..obs import RunRecorder
from ..workload import TINY_LOAD
from .common import (
    config_dict,
    experiment_argparser,
    recorder_for,
    results_path,
    timed,
)

__all__ = ["run", "main", "recovery_config"]

#: heartbeat delivery loss probability — the knob that separates the schemes
MESSAGE_LOSS = 0.2


def recovery_config(
    scheme: HeartbeatScheme,
    fast: bool = False,
    seed: int | None = None,
    substrate: str = "can",
) -> FaultyGridConfig:
    """A churny grid with protocol-driven detection and lossy heartbeats."""
    if fast:
        preset = replace(TINY_LOAD, jobs=120)
    else:
        preset = replace(
            TINY_LOAD, nodes=60, jobs=400, mean_interarrival=40.0
        )
    if seed is not None:
        preset = preset.with_seed(seed)
    return FaultyGridConfig(
        MatchmakingConfig(preset, substrate=substrate),
        mean_time_between_failures=300.0,
        mean_time_between_joins=300.0,
        detection_mode="protocol",
        heartbeat_scheme=scheme,
        faults=FaultPlan(message_loss=MESSAGE_LOSS),
        invariant_check_every=5,
    )


def run(
    fast: bool = False,
    seed: int | None = None,
    recorder: RunRecorder | None = None,
    substrate: str = "can",
) -> Dict[str, FaultyGridResult]:
    tracer = recorder.tracer if recorder is not None else None
    out: Dict[str, FaultyGridResult] = {}
    for scheme in HeartbeatScheme:
        cfg = recovery_config(scheme, fast=fast, seed=seed, substrate=substrate)
        label = f"recovery:{scheme.value}"
        if recorder is not None:
            recorder.run_start(label, scheme=scheme.value)
        sim = FaultyGridSimulation(cfg, tracer=tracer)
        out[scheme.value] = timed(f"recovery {scheme.value}", sim.run)
        if recorder is not None:
            recorder.run_end(label, t=sim.env.now)
            recorder.manifest.metrics[label] = sim.metrics.snapshot(
                now=sim.env.now
            )
            recorder.manifest.config.setdefault(
                scheme.value, config_dict(cfg)
            )
    return out


def _dist_row(samples: np.ndarray) -> List[str]:
    if samples.size == 0:
        return ["-"] * 4
    return [
        f"{samples.mean():.0f}",
        f"{np.percentile(samples, 50):.0f}",
        f"{np.percentile(samples, 95):.0f}",
        f"{samples.max():.0f}",
    ]


def report(results: Dict[str, FaultyGridResult], out_dir: str) -> str:
    rows = []
    csv_rows: List[Tuple[object, ...]] = []
    for name, res in results.items():
        rows.append(
            [
                name,
                res.failures,
                *_dist_row(res.detection_latencies),
                *_dist_row(res.resubmission_latencies),
                res.jobs_lost,
                res.jobs_resubmitted,
                res.jobs_abandoned,
            ]
        )
        for kind, samples in (
            ("detection", res.detection_latencies),
            ("resubmission", res.resubmission_latencies),
        ):
            for value in samples:
                csv_rows.append((name, kind, float(value)))
    table = format_table(
        [
            "scheme",
            "crashes",
            "detect mean",
            "p50",
            "p95",
            "max",
            "resubmit mean",
            "p50",
            "p95",
            "max",
            "lost",
            "resubmitted",
            "abandoned",
        ],
        rows,
        title=(
            "Recovery — detection/resubmission latency (s) under "
            f"{MESSAGE_LOSS:.0%} heartbeat loss"
        ),
    )
    series = {
        name: empirical_cdf(res.detection_latencies)
        for name, res in results.items()
        if res.detection_latencies.size
    }
    plot = ascii_plot(
        series,
        title="Recovery: crash-detection latency CDF",
        xlabel="detection latency (s)",
        ylabel="fraction detected",
        height=14,
    )
    write_csv(
        results_path(out_dir, "recovery_latencies.csv"),
        ["scheme", "kind", "latency_s"],
        csv_rows,
    )
    return table + "\n\n" + plot


def main(argv: Sequence[str] | None = None) -> int:
    args = experiment_argparser(__doc__.splitlines()[0]).parse_args(argv)
    with recorder_for(args, "recovery") as rec:
        results = run(
            fast=args.fast,
            seed=args.seed,
            recorder=rec,
            substrate=args.substrate,
        )
        print(report(results, args.out))
        rec.close(
            config={
                "fast": args.fast,
                "message_loss": MESSAGE_LOSS,
                "substrate": args.substrate,
            },
            artifacts=["recovery_latencies.csv"],
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
