"""Shared plumbing for the figure-regeneration harness.

Every experiment module exposes ``run(fast=...)`` returning structured
results and ``main(argv)`` that prints the paper-comparable tables/plots and
writes CSVs under ``results/``.  ``--fast`` runs a scaled-down configuration
with the same structure (used by CI, benchmarks and quick sanity checks);
the full configuration matches the paper's Section V setup.

Observability: ``main`` wires a :class:`repro.obs.RunRecorder` so each
invocation writes a JSONL trace (``results/<name>_trace.jsonl``) and a run
manifest (``results/<name>_run.manifest.json``) alongside its CSVs; pass
``--no-trace`` to skip both.  Progress lines go through a
:class:`repro.obs.ProgressReporter`, which the ``REPRO_QUIET`` environment
variable silences (the benchmark suite relies on this).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs import ProgressReporter, RunRecorder

__all__ = [
    "experiment_argparser",
    "timed",
    "results_path",
    "reporter",
    "recorder_for",
    "config_dict",
    "WAIT_GRID",
    "SCHEMES",
]

#: wait-time thresholds (seconds) matching Figure 5/6's x-axis
WAIT_GRID: Tuple[float, ...] = (
    0.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    20_000.0,
    30_000.0,
    40_000.0,
    50_000.0,
)

#: matchmaker line-up of Figures 5 and 6
SCHEMES: Tuple[str, ...] = ("can-het", "can-hom", "central")

#: process-wide default reporter; quietness re-read from REPRO_QUIET per call
_REPORTER = ProgressReporter()


def reporter() -> ProgressReporter:
    """The harness's shared progress reporter."""
    return _REPORTER


def experiment_argparser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down configuration (minutes -> seconds)",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="directory for CSV outputs (default: results/)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="skip writing the JSONL trace and run manifest",
    )
    parser.add_argument(
        "--substrate",
        default="can",
        choices=_substrate_choices(),
        help="overlay substrate backing the run (default: can)",
    )
    return parser


def _substrate_choices() -> Tuple[str, ...]:
    from ..overlay import available_substrates

    return tuple(available_substrates())


def recorder_for(args: argparse.Namespace, name: str) -> RunRecorder:
    """A RunRecorder honouring the parsed --out/--seed/--no-trace flags."""
    return RunRecorder(
        args.out,
        name,
        seed=getattr(args, "seed", None),
        enabled=not getattr(args, "no_trace", False),
    )


def config_dict(cfg: Any) -> Dict[str, Any]:
    """A JSON-able view of an experiment config (dataclasses flattened)."""
    if dataclasses.is_dataclass(cfg) and not isinstance(cfg, type):
        return dataclasses.asdict(cfg)
    return {"repr": repr(cfg)}


def results_path(out_dir: str, name: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    return os.path.join(out_dir, name)


def timed(
    label: str,
    fn: Callable,
    *args: Any,
    progress: Optional[ProgressReporter] = None,
    **kwargs: Any,
):
    """Run ``fn`` with a wall-clock progress line (stderr + trace)."""
    rep = progress if progress is not None else _REPORTER
    start = time.time()
    rep.start(label)
    result = fn(*args, **kwargs)
    rep.done(label, time.time() - start)
    return result
