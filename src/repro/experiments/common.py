"""Shared plumbing for the figure-regeneration harness.

Every experiment module exposes ``run(fast=...)`` returning structured
results and ``main(argv)`` that prints the paper-comparable tables/plots and
writes CSVs under ``results/``.  ``--fast`` runs a scaled-down configuration
with the same structure (used by CI, benchmarks and quick sanity checks);
the full configuration matches the paper's Section V setup.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "experiment_argparser",
    "timed",
    "results_path",
    "WAIT_GRID",
    "SCHEMES",
]

#: wait-time thresholds (seconds) matching Figure 5/6's x-axis
WAIT_GRID: Tuple[float, ...] = (
    0.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    20_000.0,
    30_000.0,
    40_000.0,
    50_000.0,
)

#: matchmaker line-up of Figures 5 and 6
SCHEMES: Tuple[str, ...] = ("can-het", "can-hom", "central")


def experiment_argparser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down configuration (minutes -> seconds)",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="directory for CSV outputs (default: results/)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    return parser


def results_path(out_dir: str, name: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    return os.path.join(out_dir, name)


def timed(label: str, fn: Callable, *args, **kwargs):
    """Run ``fn`` with a wall-clock progress line on stderr."""
    start = time.time()
    print(f"[{label}] running ...", file=sys.stderr, flush=True)
    result = fn(*args, **kwargs)
    print(
        f"[{label}] done in {time.time() - start:.1f}s", file=sys.stderr, flush=True
    )
    return result
