"""Figure 5 — CDF of job wait time while varying the mean inter-arrival time.

Paper setup: 1000 heterogeneous nodes, 20,000 jobs, 11-dimensional CAN,
constraint ratio 60 %, inter-arrival 2 s / 3 s / 4 s, three matchmakers.
Expected shape: can-het tracks central at every load; can-hom falls behind,
and the gap widens as the system gets more loaded (2 s is the heaviest).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis import ascii_plot, format_table, write_csv
from ..gridsim import GridSimulation, MatchmakingConfig
from ..gridsim.results import MatchmakingResult
from ..obs import RunRecorder
from ..workload import PAPER_LOAD, SMALL_LOAD
from .common import (
    SCHEMES,
    WAIT_GRID,
    config_dict,
    experiment_argparser,
    recorder_for,
    results_path,
    timed,
)

__all__ = ["run", "main", "INTERARRIVALS"]

#: the paper's three load levels (seconds between jobs)
INTERARRIVALS: Tuple[float, ...] = (2.0, 3.0, 4.0)

#: fast-mode inter-arrivals preserving the jobs/nodes load ratio
FAST_INTERARRIVALS: Tuple[float, ...] = (10.0, 15.0, 20.0)


def run(
    fast: bool = False,
    seed: int | None = None,
    preset=None,
    interarrivals: Sequence[float] | None = None,
    schemes: Sequence[str] = SCHEMES,
    recorder: RunRecorder | None = None,
    substrate: str = "can",
) -> Dict[float, Dict[str, MatchmakingResult]]:
    """All (inter-arrival, scheme) runs, keyed by inter-arrival then scheme."""
    if preset is None:
        preset = SMALL_LOAD if fast else PAPER_LOAD
    if seed is not None:
        preset = preset.with_seed(seed)
    if interarrivals is None:
        interarrivals = FAST_INTERARRIVALS if fast else INTERARRIVALS
    tracer = recorder.tracer if recorder is not None else None
    out: Dict[float, Dict[str, MatchmakingResult]] = {}
    for gap in interarrivals:
        out[gap] = {}
        for scheme in schemes:
            cfg = MatchmakingConfig(
                preset.with_interarrival(gap),
                scheme=scheme,
                substrate=substrate,
            )
            label = f"fig5 arrival={gap:g}s {scheme}"
            if recorder is not None:
                recorder.run_start(label, scheme=scheme, interarrival=gap)
            sim = GridSimulation(cfg, tracer=tracer)
            out[gap][scheme] = timed(label, sim.run)
            if recorder is not None:
                recorder.run_end(label, t=sim.env.now)
                recorder.manifest.metrics[label] = sim.metrics.snapshot(
                    now=sim.env.now
                )
                recorder.manifest.config.setdefault(scheme, config_dict(cfg))
    return out


def report(
    results: Dict[float, Dict[str, MatchmakingResult]], out_dir: str
) -> str:
    """Render the paper-comparable tables/plots; write the CSV."""
    chunks: List[str] = []
    csv_rows: List[Tuple[object, ...]] = []
    for gap, by_scheme in sorted(results.items()):
        rows = []
        series = {}
        for scheme, res in by_scheme.items():
            fractions = res.wait_cdf_at(WAIT_GRID) * 100.0
            rows.append([scheme] + [f"{f:.2f}" for f in fractions])
            series[scheme] = (np.asarray(WAIT_GRID), fractions)
            for threshold, frac in zip(WAIT_GRID, fractions):
                csv_rows.append((gap, scheme, threshold, frac))
        headers = ["scheme"] + [f"<= {int(t):,}s" for t in WAIT_GRID]
        chunks.append(
            format_table(
                headers,
                rows,
                title=f"Figure 5 — CDF of job wait time (%), inter-arrival {gap:g}s",
            )
        )
        chunks.append(
            ascii_plot(
                series,
                title=f"Figure 5 ({gap:g}s): % jobs with wait <= x",
                xlabel="job wait time (s)",
                ylabel="% of jobs",
                y_min=80.0,
                y_max=100.0,
                height=14,
            )
        )
    write_csv(
        results_path(out_dir, "fig5_wait_time_cdf.csv"),
        ["interarrival_s", "scheme", "wait_threshold_s", "cdf_percent"],
        csv_rows,
    )
    return "\n\n".join(chunks)


def main(argv: Sequence[str] | None = None) -> int:
    args = experiment_argparser(__doc__.splitlines()[0]).parse_args(argv)
    with recorder_for(args, "fig5") as rec:
        results = run(
            fast=args.fast,
            seed=args.seed,
            recorder=rec,
            substrate=args.substrate,
        )
        print(report(results, args.out))
        rec.close(
            config={"fast": args.fast, "substrate": args.substrate},
            artifacts=["fig5_wait_time_cdf.csv"],
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
