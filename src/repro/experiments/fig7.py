"""Figure 7 — broken links over time under high churn (11-d CAN).

Paper setup: 1000 nodes join, then join/leave events with equal probability
at gaps *shorter* than the heartbeat period (high churn, leaves are silent
failures); the number of broken links is tracked over ≥30,000 s.

Expected shape: links accumulate and then mostly level out; vanilla CAN is
the most resilient, compact heartbeat the least (the paper measured ≈70 %
more link failures), and adaptive heartbeat stays very close to vanilla.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis import ascii_plot, format_table, write_csv
from ..can.heartbeat import HeartbeatScheme
from ..gridsim import ChurnConfig, ChurnSimulation
from ..gridsim.results import ChurnResult
from ..obs import RunRecorder
from .common import (
    config_dict,
    experiment_argparser,
    recorder_for,
    results_path,
    timed,
)

__all__ = ["run", "main", "fig7_config"]


def fig7_config(
    scheme: HeartbeatScheme,
    fast: bool = False,
    seed: int | None = None,
    substrate: str = "can",
) -> ChurnConfig:
    """The paper's high-churn setup (or its scaled-down variant)."""
    kwargs = dict(
        gpu_slots=2,  # 11 dimensions
        scheme=scheme,
        heartbeat_period=60.0,
        leave_mode="fail",
        substrate=substrate,
    )
    if seed is not None:
        kwargs["seed"] = seed
    if fast:
        return ChurnConfig(
            initial_nodes=120,
            event_gap_mean=15.0,  # 4 events per heartbeat period
            duration=6_000.0,
            **kwargs,
        )
    # The paper ran 1000 nodes for 30,000 s.  We run 250 nodes for
    # 18,000 s: the broken-link dynamics are per-neighborhood (churn
    # events per node and per heartbeat period are what matter), so the
    # curves' shape is preserved while a single-core regeneration stays
    # in the minutes.  Scale up via ChurnConfig if you have the time.
    return ChurnConfig(
        initial_nodes=250,
        event_gap_mean=15.0,
        duration=18_000.0,
        **kwargs,
    )


def run(
    fast: bool = False,
    seed: int | None = None,
    recorder: RunRecorder | None = None,
    substrate: str = "can",
) -> Dict[str, ChurnResult]:
    tracer = recorder.tracer if recorder is not None else None
    out: Dict[str, ChurnResult] = {}
    for scheme in HeartbeatScheme:
        cfg = fig7_config(scheme, fast=fast, seed=seed, substrate=substrate)
        label = f"fig7:{scheme.value}"
        if recorder is not None:
            recorder.run_start(label, scheme=scheme.value)
        sim = ChurnSimulation(cfg, tracer=tracer)
        out[scheme.value] = timed(f"fig7 {scheme.value}", sim.run)
        if recorder is not None:
            recorder.run_end(label, t=sim.env.now)
            recorder.manifest.metrics[label] = sim.metrics.snapshot(
                now=sim.env.now
            )
            recorder.manifest.config.setdefault(
                scheme.value, config_dict(cfg)
            )
    return out


def report(results: Dict[str, ChurnResult], out_dir: str) -> str:
    series = {
        name: (res.broken_links_times, res.broken_links_values)
        for name, res in results.items()
    }
    rows = []
    csv_rows: List[Tuple[object, ...]] = []
    vanilla_steady = results["vanilla"].steady_state_broken_links()
    for name, res in results.items():
        steady = res.steady_state_broken_links()
        rel = steady / vanilla_steady if vanilla_steady > 0 else float("nan")
        rows.append(
            [
                name,
                f"{steady:.1f}",
                f"{res.final_broken_links:.0f}",
                f"{rel:.2f}x",
                res.events["failures"],
                res.events["joins"],
                res.final_population,
            ]
        )
        for t, v in zip(res.broken_links_times, res.broken_links_values):
            csv_rows.append((name, t, v))
    table = format_table(
        [
            "scheme",
            "steady broken links",
            "final",
            "vs vanilla",
            "failures",
            "joins",
            "population",
        ],
        rows,
        title="Figure 7 — broken links under high churn",
    )
    plot = ascii_plot(
        series,
        title="Figure 7: broken links over time",
        xlabel="elapsed time (s)",
        ylabel="# broken links",
        height=16,
    )
    write_csv(
        results_path(out_dir, "fig7_broken_links.csv"),
        ["scheme", "time_s", "broken_links"],
        csv_rows,
    )
    return table + "\n\n" + plot


def main(argv: Sequence[str] | None = None) -> int:
    args = experiment_argparser(__doc__.splitlines()[0]).parse_args(argv)
    with recorder_for(args, "fig7") as rec:
        results = run(
            fast=args.fast,
            seed=args.seed,
            recorder=rec,
            substrate=args.substrate,
        )
        print(report(results, args.out))
        rec.close(
            config={"fast": args.fast, "substrate": args.substrate},
            artifacts=["fig7_broken_links.csv"],
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
