"""The paper's contribution: heterogeneity-aware decentralized matchmaking.

This is Algorithm 1 verbatim:

1. route the job to the node owning its coordinate;
2. loop: look for *acceptable* nodes among the current node and its
   neighbors — prefer a free node with the fastest dominant-CE clock, then
   any acceptable node with the fastest dominant-CE clock;
3. otherwise pick the outward (target node, dimension) minimising the
   Equation 3 objective, stop probabilistically per Equation 4; on stop,
   place on the minimum Equation 1/2 score candidate; otherwise push.

All decisions use information a real node would have: its own state, its
neighbors' states (exchanged in heartbeats), and the per-dimension
aggregates propagated hop-by-hop by the aggregation engine.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..can.aggregation import AggregationEngine
from ..can.overlay import CanOverlay
from ..model.job import Job
from ..model.node import GridNode
from ..obs.profiling import NULL_PROFILER, profiled
from .base import Matchmaker, fastest_dominant_clock, outward_capable_search
from .score import (
    ai_field,
    min_pooled_score_node,
    min_score_node,
    node_score,
    pooled_node_score,
    push_objective,
    stop_probability,
)

__all__ = ["CanHetMatchmaker"]


class CanHetMatchmaker(Matchmaker):
    """Algorithm 1 — matchmaking and job pushing for heterogeneous jobs."""

    name = "can-het"

    def __init__(
        self,
        overlay: CanOverlay,
        grid_nodes: Dict[int, GridNode],
        aggregation: AggregationEngine,
        rng: np.random.Generator,
        stopping_factor: float = 1.0,
        max_hops: int = 64,
        use_acceptable_nodes: bool = True,
        use_dominant_ce: bool = True,
    ):
        super().__init__()
        self.overlay = overlay
        self.grid_nodes = grid_nodes
        self.aggregation = aggregation
        self.rng = rng
        self.stopping_factor = stopping_factor
        self.max_hops = max_hops
        #: ablation switches (DESIGN.md): fall back to free-node-only search
        #: and/or to node-level scoring to isolate each mechanism's value
        self.use_acceptable_nodes = use_acceptable_nodes
        self.use_dominant_ce = use_dominant_ce

    # ------------------------------------------------------------------ placement --
    def place(self, job: Job) -> Optional[GridNode]:
        """One placement, timed end-to-end under ``mm.place.can-het``.

        The push-walk phases (Eq 3/4 target choice, Eq 1/2 scoring, the
        fallback sweep) carry their own child scopes via ``@profiled``.
        """
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        with prof.scope(f"mm.place.{self.name}"):
            return self._place(job)

    def _place(self, job: Job) -> Optional[GridNode]:
        coord = self.overlay.space.job_coordinate(
            job, float(self.rng.random())
        )
        origin = self.overlay.locate_owner(coord)
        current = origin
        visited = {current}
        hops = 0
        for _ in range(self.max_hops):
            candidates = self._local_candidates(current)
            capable = [n for n in candidates if n.capable(job)]
            chosen = self._select_startable(capable, job)
            if chosen is not None:
                return self._record_placement(chosen, job, hops)

            target = self._choose_push_target(current, job, visited)
            if target is None:
                # Nowhere outward left to go: place on the least-loaded
                # capable candidate, falling back to an expanding-ring
                # search of the satisfying region when none was met.
                chosen = self._select_min_score(capable, job)
                if chosen is None:
                    chosen = self._fallback(origin, job)
                return self._record_placement(
                    chosen, job, hops, score=self._score_of(chosen, job)
                )
            target_id, dim = target
            ai = self.aggregation.advertised(target_id, dim)
            p_stop = stop_probability(
                ai_field(ai, "num_nodes"), self.stopping_factor
            )
            if capable and self.rng.random() < p_stop:
                self.stats.stopped_probabilistically += 1
                chosen = self._select_min_score(capable, job)
                return self._record_placement(
                    chosen, job, hops, score=self._score_of(chosen, job)
                )
            if self.tracer is not None:
                self._trace_push(job, current, target_id, dim, hop=hops)
            current = target_id
            visited.add(current)
            hops += 1
        # Hop budget exhausted under continuous pushing: last resort.
        candidates = self._local_candidates(current)
        capable = [n for n in candidates if n.capable(job)]
        chosen = self._select_min_score(capable, job)
        if chosen is None:
            chosen = self._fallback(origin, job)
        return self._record_placement(
            chosen, job, hops, score=self._score_of(chosen, job)
        )

    def _score_of(self, node: Optional[GridNode], job: Job) -> Optional[float]:
        """Equation 1/2 score for the trace; only computed when tracing."""
        if self.tracer is None or node is None:
            return None
        if self.use_dominant_ce:
            return node_score(node, job)
        return pooled_node_score(node)

    @profiled("mm.fallback")
    def _fallback(self, origin: int, job: Job) -> Optional[GridNode]:
        """Expanding-ring search when the push walk met no capable node."""
        self.stats.fallback_searches += 1
        capable = outward_capable_search(
            self.overlay, self.grid_nodes, origin, job
        )
        if not capable:
            return None
        startable = self._select_startable(capable, job)
        if startable is not None:
            return startable
        return self._select_min_score(capable, job)

    # ------------------------------------------------------------------ steps --
    def _local_candidates(self, node_id: int) -> List[GridNode]:
        ids = [node_id] + sorted(
            nid
            for nid in self.overlay.neighbors(node_id)
            if self.overlay.is_alive(nid)
        )
        return [self.grid_nodes[nid] for nid in ids if nid in self.grid_nodes]

    def _select_startable(
        self, capable: List[GridNode], job: Job
    ) -> Optional[GridNode]:
        """Algorithm 1 lines 3-9: acceptable nodes, free nodes first."""
        if self.use_acceptable_nodes:
            acceptable = [n for n in capable if n.is_acceptable(job)]
        else:
            acceptable = [n for n in capable if n.is_free()]
        if not acceptable:
            return None
        free = [n for n in acceptable if n.is_free()]
        pool = free if free else acceptable
        return fastest_dominant_clock(pool, job)

    @profiled("mm.push_target.eq3")
    def _choose_push_target(
        self, node_id: int, job: Job, visited: set
    ) -> Optional[Tuple[int, int]]:
        """Algorithm 1 line 11: minimise Equation 3 over (neighbor, dim).

        Dimensions owned by the job's dominant CE slot expose the per-slot
        aggregate fields; other dimensions only carry pooled fields (that is
        all their heartbeat aggregates contain).
        """
        dominant = job.dominant_slot if self.use_dominant_ce else None
        best: Optional[Tuple[int, int]] = None
        best_key: Tuple[int, float] = (2, math.inf)
        for dim_obj in self.overlay.space.dimensions:
            dim = dim_obj.index
            slot_dim = dominant is not None and dim_obj.slot == dominant
            for nid in sorted(
                self.overlay.neighbors_along(node_id, dim, +1)
            ):
                if nid in visited or not self.overlay.is_alive(nid):
                    continue
                if nid not in self.grid_nodes:
                    continue
                ai = self.aggregation.advertised(nid, dim)
                obj = push_objective(ai, use_slot_fields=slot_dim)
                if math.isinf(obj):
                    continue
                # Prefer dominant-slot dimensions: their aggregates speak
                # directly about the CE the job's runtime depends on.
                key = (0 if slot_dim else 1, obj)
                if key < best_key:
                    best_key = key
                    best = (nid, dim)
        return best

    @profiled("mm.score.eq12")
    def _select_min_score(
        self, capable: List[GridNode], job: Job
    ) -> Optional[GridNode]:
        """Algorithm 1 line 14: minimum Equation 1/2 score candidate."""
        if self.use_dominant_ce:
            return min_score_node(capable, job)
        return min_pooled_score_node(capable)
