"""Matchmaker interface and shared selection helpers."""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..can.overlay import CanOverlay
from ..model.job import Job
from ..model.node import GridNode

__all__ = [
    "Matchmaker",
    "MatchmakingStats",
    "fastest_dominant_clock",
    "outward_capable_search",
    "expanding_ring_search",
]


@dataclass
class MatchmakingStats:
    """Aggregate counters a matchmaker maintains across placements."""

    placed: int = 0
    unplaced: int = 0
    total_push_hops: int = 0
    stopped_probabilistically: int = 0
    placed_on_free: int = 0
    placed_on_acceptable: int = 0
    fallback_searches: int = 0

    @property
    def mean_push_hops(self) -> float:
        return self.total_push_hops / self.placed if self.placed else 0.0


class Matchmaker(abc.ABC):
    """Chooses a run node for each submitted job.

    ``tracer``/``clock`` are optional observability wiring (see
    :meth:`attach_tracer`): when set, placement decisions and push hops
    are emitted as ``mm.*`` trace events stamped with the simulation time.
    """

    name: str = "matchmaker"

    def __init__(self) -> None:
        self.stats = MatchmakingStats()
        self.tracer = None
        self.clock = None
        #: optional repro.obs.Profiler; see attach_profiler
        self.profiler = None

    @abc.abstractmethod
    def place(self, job: Job) -> Optional[GridNode]:
        """Return the run node for ``job``, or ``None`` when unplaceable."""

    def attach_tracer(self, tracer, clock=None) -> None:
        """Wire a :class:`repro.obs.Tracer` plus a ``() -> now`` clock."""
        self.tracer = tracer
        self.clock = clock

    def attach_profiler(self, profiler) -> None:
        """Wire a :class:`repro.obs.Profiler` (or ``None`` to detach).

        Profiled matchmakers time each placement and its scoring/push
        phases; with ``None`` every instrumented site is one attribute
        test, exactly like the tracer guard.
        """
        self.profiler = profiler

    def _t(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _trace_push(
        self, job: Job, frm: int, to: int, dim: int, hop: Optional[int] = None
    ) -> None:
        if hop is not None:
            self.tracer.emit(
                self._t(), "mm.push",
                job=job.job_id, frm=frm, to=to, dim=dim, hop=hop,
            )
        else:
            self.tracer.emit(
                self._t(), "mm.push", job=job.job_id, frm=frm, to=to, dim=dim
            )

    def _record_placement(
        self,
        node: Optional[GridNode],
        job: Job,
        hops: int,
        score: Optional[float] = None,
    ) -> Optional[GridNode]:
        if node is None:
            self.stats.unplaced += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self._t(), "mm.unplaced", job=job.job_id, hops=hops
                )
            return None
        self.stats.placed += 1
        self.stats.total_push_hops += hops
        job.push_hops = hops
        free = node.is_free()
        acceptable = False
        if free:
            self.stats.placed_on_free += 1
        elif node.is_acceptable(job):
            acceptable = True
            self.stats.placed_on_acceptable += 1
        if self.tracer is not None:
            fields = dict(
                job=job.job_id,
                node=node.node_id,
                hops=hops,
                free=free,
                acceptable=acceptable,
                scheme=self.name,
            )
            if score is not None:
                fields["score"] = score
            self.tracer.emit(self._t(), "mm.placed", **fields)
        return node


def outward_capable_search(
    overlay: CanOverlay,
    grid_nodes: Dict[int, GridNode],
    origin_id: int,
    job: Job,
    budget: int = 256,
) -> List[GridNode]:
    """Breadth-first sweep of the job's satisfying region.

    Every node satisfying a job is reachable from the owner of the job's
    coordinate by hops that only ever cross zone faces toward *higher*
    coordinates (the straight line from the coordinate to the node's
    coordinate passes through a monotone staircase of zones).  When the
    probabilistic push walk strands without meeting a capable node — rare,
    but real for scarce multi-CE machines — this expanding-ring search from
    the routing origin is the CAN's fallback, bounded by ``budget`` visited
    nodes.
    """
    dims = overlay.space.dims
    seen = {origin_id}
    queue = deque([origin_id])
    capable: List[GridNode] = []
    while queue and len(seen) <= budget:
        current = queue.popleft()
        node = grid_nodes.get(current)
        if node is not None and node.alive and node.capable(job):
            capable.append(node)
        for dim in range(dims):
            for nid in sorted(overlay.neighbors_along(current, dim, +1)):
                if nid not in seen and overlay.is_alive(nid):
                    seen.add(nid)
                    queue.append(nid)
    return capable


def expanding_ring_search(
    overlay: CanOverlay,
    grid_nodes: Dict[int, GridNode],
    origin_id: int,
    job: Job,
    budget: int = 128,
) -> List[GridNode]:
    """Ring-by-ring flood over *all* zone adjacencies from ``origin_id``.

    The recovery path's degraded-mode search: right after a crash the
    directional aggregates are stale (the matchmaker may see only emptied
    corridors) and zones may sit unclaimed, so the monotone
    :func:`outward_capable_search` can be cut off.  This search expands
    through every adjacency — dead/ghost zones are crossed but never
    selected, modelling neighbor-of-neighbor knowledge from stored tables —
    and collects live capable nodes until ``budget`` zones were visited.
    The origin may itself be dead (it usually is: it owned the crashed
    job's coordinate).
    """
    seen = {origin_id}
    queue = deque([origin_id])
    capable: List[GridNode] = []
    while queue and len(seen) <= budget:
        current = queue.popleft()
        node = grid_nodes.get(current)
        if node is not None and node.alive and node.capable(job):
            capable.append(node)
        for nid in sorted(overlay.neighbors(current)):
            if nid not in seen:
                seen.add(nid)
                queue.append(nid)
    return capable


def fastest_dominant_clock(nodes: Iterable[GridNode], job: Job) -> GridNode:
    """Pick the node with the fastest clock for the job's dominant CE.

    Ties break on node id for determinism.
    """
    candidates = list(nodes)
    if not candidates:
        raise ValueError("empty candidate set")
    return min(candidates, key=lambda n: (-n.dominant_clock(job), n.node_id))
