"""The greedy online centralized matchmaker ("central" in the figures).

Section V-A: "a greedy online centralized scheduler, which assigns jobs
based on complete load information across all nodes.  Such a scheme would
be very expensive in a real system, but can give some indication of the best
possible performance ... it greedily assigns a job to the most capable node,
possibly assigning jobs to nodes that are over-provisioned."

So: with perfect instantaneous knowledge of every node, prefer a free node
with the fastest dominant-CE clock, then any acceptable node with the
fastest clock, then the minimum Equation 1/2 score — but no lookahead and
no global optimisation.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..model.job import Job
from ..model.node import GridNode
from .base import Matchmaker, fastest_dominant_clock
from .score import node_score

__all__ = ["CentralMatchmaker"]


class CentralMatchmaker(Matchmaker):
    """Greedy online scheduler with complete global information."""

    name = "central"

    def __init__(self, grid_nodes: Dict[int, GridNode]):
        super().__init__()
        self.grid_nodes = grid_nodes

    def place(self, job: Job) -> Optional[GridNode]:
        capable = [
            n
            for n in self.grid_nodes.values()
            if n.alive and n.capable(job)
        ]
        if not capable:
            return self._record_placement(None, job, 0)
        free = [n for n in capable if n.is_free()]
        if free:
            return self._record_placement(
                fastest_dominant_clock(free, job), job, 0
            )
        acceptable = [n for n in capable if n.is_acceptable(job)]
        if acceptable:
            return self._record_placement(
                fastest_dominant_clock(acceptable, job), job, 0
            )
        chosen = min(capable, key=lambda n: (node_score(n, job), n.node_id))
        return self._record_placement(chosen, job, 0)
