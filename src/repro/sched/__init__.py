"""Matchmaking: the paper's heterogeneous scheme plus both baselines."""

from .base import Matchmaker, MatchmakingStats, fastest_dominant_clock
from .can_het import CanHetMatchmaker
from .can_hom import CanHomMatchmaker
from .central import CentralMatchmaker
from .score import (
    ai_field,
    ce_score,
    node_score,
    pooled_node_score,
    pooled_push_objective,
    push_objective,
    stop_probability,
)

__all__ = [
    "Matchmaker",
    "MatchmakingStats",
    "fastest_dominant_clock",
    "CanHetMatchmaker",
    "CanHomMatchmaker",
    "CentralMatchmaker",
    "ai_field",
    "ce_score",
    "node_score",
    "pooled_node_score",
    "pooled_push_objective",
    "push_objective",
    "stop_probability",
]
